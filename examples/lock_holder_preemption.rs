//! Anatomy of lock-holder preemption (§2.2 of the paper).
//!
//! Builds a minimal two-VM scenario in which a guest kernel spinlock's
//! holder is preempted mid-critical-section, and prints the waiting-time
//! distribution that results — the motivation experiment behind the
//! paper's Figures 1(b) and 2, reduced to its essentials.
//!
//! ```text
//! cargo run --release --example lock_holder_preemption
//! ```

use asman::prelude::*;

/// A lock-heavy kernel workload: short critical sections on one shared
/// lock, interleaved with compute.
fn locky(threads: usize, seed: u64) -> ScriptProgram {
    let _ = seed;
    let clk = Clock::default();
    ScriptProgram::homogeneous(
        "locky",
        threads,
        vec![
            Op::CriticalSection {
                lock: 0,
                hold: clk.us(3),
            },
            Op::Compute(clk.us(150)),
        ],
    )
    .looping()
}

fn main() {
    let clk = Clock::default();
    println!("A lock-heavy 4-VCPU guest capped at a 22.2% online rate: the cap");
    println!("enforcement parks VCPUs for tens of milliseconds, and every so");
    println!("often a parked VCPU is holding a kernel spinlock — its waiters");
    println!("then spin for the whole gap (lock-holder preemption, paper §2.2).\n");

    let mut machine = SimulationBuilder::new()
        .seed(7)
        .vm(VmSpec::new(
            "dom0",
            8,
            Box::new(BackgroundService::new(BackgroundConfig::default(), 8, 3)),
        ))
        .vm(VmSpec::new("vm-a", 4, Box::new(locky(4, 1)))
            .weight(32)
            .cap(CapMode::NonWorkConserving))
        .build();
    machine.run_until(clk.secs(10));

    for vm in [1] {
        let stats = machine.vm_kernel(vm).stats();
        println!("{}:", machine.vm_name(vm));
        println!("  lock acquisitions      {:>10}", stats.lock_acquisitions);
        println!("  holder preemptions     {:>10}", stats.holder_preemptions);
        for exp in [10u32, 15, 20, 25] {
            println!(
                "  waits >= 2^{exp:<2}          {:>10}",
                stats.wait_hist.count_at_least_pow2(exp)
            );
        }
        println!(
            "  longest wait           {:>10} cycles (~{:.2} ms)",
            stats.wait_hist.max().as_u64(),
            clk.to_ms(stats.wait_hist.max()),
        );
        println!(
            "  cycles burned spinning {:>10.2} ms",
            clk.to_ms(stats.spin_kernel_cycles)
        );
        println!();
    }

    println!("Compare: the same guest at a 100% online rate (no parking):\n");
    let mut baseline = SimulationBuilder::new()
        .seed(7)
        .vm(VmSpec::new(
            "dom0",
            8,
            Box::new(BackgroundService::new(BackgroundConfig::default(), 8, 3)),
        ))
        .vm(VmSpec::new("vm-a", 4, Box::new(locky(4, 1))).weight(2560))
        .build();
    baseline.run_until(clk.secs(10));
    let stats = baseline.vm_kernel(1).stats();
    println!(
        "vm-a: {} acquisitions, {} holder preemptions, {} waits >= 2^20, longest ~{:.2} ms",
        stats.lock_acquisitions,
        stats.holder_preemptions,
        stats.wait_hist.count_at_least_pow2(20),
        clk.to_ms(stats.wait_hist.max()),
    );
}
