//! Quickstart: the paper's headline result in ~40 lines.
//!
//! Runs the LU benchmark on a 4-VCPU VM whose online rate is capped at
//! 22.2% (the paper's lowest setting), under the plain Credit scheduler
//! and under ASMan, and prints run time, spinlock wait statistics and
//! VCRD activity.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use asman::prelude::*;

fn main() {
    let clk = Clock::default();
    println!("LU (class S) on V1: 4 VCPUs, weight 32 vs dom0's 256 => 22.2% online rate");
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "policy", "run(s)", ">2^10", ">2^20", "raises", "high%"
    );
    for policy in [Policy::Credit, Policy::Asman] {
        let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(7);
        let dom0 = BackgroundService::new(BackgroundConfig::default(), 8, 0xD0);
        let mut machine = SimulationBuilder::new()
            .seed(42)
            .policy(policy)
            .vm(VmSpec::new("dom0", 8, Box::new(dom0)))
            .vm(VmSpec::new("guest", 4, Box::new(lu))
                .weight(32)
                .cap(CapMode::NonWorkConserving)
                .concurrent())
            .build();
        let done = machine.run_to_completion(clk.secs(600));
        assert!(done, "LU must finish within the horizon");
        let stats = machine.vm_kernel(1).stats();
        let acct = machine.vm_accounting(1);
        let end = stats.finished_at.expect("finished");
        println!(
            "{:<8} {:>9.1} {:>9} {:>9} {:>8} {:>8.1}",
            format!("{policy:?}"),
            clk.to_secs(end),
            stats.wait_hist.count_at_least_pow2(10),
            stats.wait_hist.count_at_least_pow2(20),
            acct.vcrd_raises,
            100.0 * acct.vcrd_high_cycles.as_u64() as f64 / end.as_u64() as f64,
        );
    }
    println!();
    println!("ASMan detects the over-threshold spinlock waits that lock-holder");
    println!("preemption causes, raises the VM's VCRD and coschedules its VCPUs —");
    println!("recovering most of the Credit scheduler's excess run time.");
}
