//! Cloud-consolidation scenario: mixed tenants on one host.
//!
//! The paper motivates ASMan with consolidated hosting (its §5.2 cites
//! Amazon EC2's fractional compute units). This example consolidates six
//! tenant VMs of three kinds — a parallel solver (LU), a web-ish
//! contended-throughput JVM (SPECjbb-like) and batch compression jobs
//! (bzip2-like) — on one 8-PCPU host, and compares the three schedulers.
//!
//! ```text
//! cargo run --release --example cloud_consolidation
//! ```

use asman::prelude::*;

fn tenant_specs(seed: u64) -> Vec<VmSpec> {
    let mk_lu = |s| {
        Box::new(
            NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4)
                .repeating()
                .build(s),
        )
    };
    vec![
        VmSpec::new(
            "dom0",
            8,
            Box::new(BackgroundService::new(
                BackgroundConfig::default(),
                8,
                seed ^ 0xD0,
            )),
        ),
        VmSpec::new("solver-1", 4, mk_lu(seed + 1)).concurrent(),
        VmSpec::new("solver-2", 4, mk_lu(seed + 2)).concurrent(),
        VmSpec::new(
            "webapp",
            4,
            Box::new(SpecJbb::new(
                SpecJbbConfig {
                    warehouses: 4,
                    ..SpecJbbConfig::default()
                },
                seed + 3,
            )),
        ),
        VmSpec::new(
            "batch-1",
            4,
            Box::new(SpecCpuRate::new(SpecCpuKind::Bzip2, 4, seed + 4)),
        ),
        VmSpec::new(
            "batch-2",
            4,
            Box::new(SpecCpuRate::new(SpecCpuKind::Gcc, 4, seed + 5)),
        ),
    ]
}

fn main() {
    let clk = Clock::default();
    let horizon = clk.secs(60);
    println!("Six tenants on one 8-PCPU host, 60 simulated seconds each run.\n");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "policy", "solver rounds", "webapp tx/s", "batch rounds", "solver >2^20"
    );
    for policy in [Policy::Credit, Policy::Con, Policy::Asman] {
        let mut m = SimulationBuilder::new()
            .seed(99)
            .policy(policy)
            .machine_config(MachineConfig::default());
        for spec in tenant_specs(99) {
            m = m.vm(spec);
        }
        let mut machine = m.build();
        machine.run_until(horizon);
        let solver_rounds: usize = (1..=2)
            .map(|vm| machine.vm_kernel(vm).stats().vm_rounds_completed())
            .sum();
        let webapp_tx = machine.vm_kernel(3).stats().transactions as f64 / clk.to_secs(horizon);
        let batch_rounds: usize = (4..=5)
            .map(|vm| machine.vm_kernel(vm).stats().vm_rounds_completed())
            .sum();
        let over: u64 = (1..=2)
            .map(|vm| {
                machine
                    .vm_kernel(vm)
                    .stats()
                    .wait_hist
                    .count_at_least_pow2(20)
            })
            .sum();
        println!(
            "{:<8} {:>14} {:>14.0} {:>14} {:>14}",
            format!("{policy:?}"),
            solver_rounds,
            webapp_tx,
            batch_rounds,
            over,
        );
    }
    println!();
    println!("Shape: coscheduling (CON, ASMan) roughly doubles the solvers'");
    println!("round throughput relative to Credit. ASMan needs no administrator");
    println!("hints — note that CON only helps the solver VMs because somebody");
    println!("flagged them as concurrent, while ASMan also adapts to the JVM's");
    println!("own synchronization (GC safepoints), trading a slice of webapp");
    println!("throughput for it.");
}
