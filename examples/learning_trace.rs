//! Watch the Roth–Erev estimator learn (Algorithms 1–2).
//!
//! Feeds the lasting-time estimator three synthetic locality regimes —
//! short bursts, long episodes, then short bursts again — and prints the
//! propensity vector after each phase, showing the under-/over-
//! coscheduling feedback steering the estimate.
//!
//! ```text
//! cargo run --release --example learning_trace
//! ```

use asman::core::{LastingTimeEstimator, LearningConfig, SyntheticLocalityProcess};
use asman::prelude::*;
use asman::sim::SimRng;

fn feed(
    est: &mut LastingTimeEstimator,
    rng: &mut SimRng,
    proc: &SyntheticLocalityProcess,
    secs: u64,
    label: &str,
) {
    let clk = Clock::default();
    let events = proc.generate(rng, clk.secs(secs));
    let mut last: Option<Cycles> = None;
    let mut chosen = Cycles::ZERO;
    for &t in &events {
        let z = last.map(|p| t.saturating_sub(p));
        last = Some(t);
        chosen = est.adjust(z, rng);
    }
    println!("after {label} ({} adjusting events):", events.len());
    println!("  estimate x = {:.1} ms", clk.to_ms(chosen));
    print!("  propensities:");
    for (v, q) in est.values().to_vec().iter().zip(est.propensities()) {
        print!(" {:.0}ms:{:.2}", clk.to_ms(*v), q);
    }
    println!("\n");
}

fn main() {
    let clk = Clock::default();
    let mut est = LastingTimeEstimator::new(LearningConfig::default());
    let mut rng = SimRng::new(2026);

    println!("Roth–Erev lasting-time estimator, candidates 5..640 ms\n");

    // Phase 1: tight bursts — over-threshold events cluster within a few
    // milliseconds (deep misalignment): the under-coscheduling branch
    // should push the estimate up.
    let bursts = SyntheticLocalityProcess {
        mean_lasting: clk.ms(60),
        mean_gap: clk.ms(400),
        intra_spacing: clk.ms(4),
        jitter: 0.3,
    };
    feed(
        &mut est,
        &mut rng,
        &bursts,
        20,
        "phase 1: dense 60 ms localities",
    );

    // Phase 2: sparse singleton events far apart — the over-coscheduling
    // feedback (slack comparison + downward exploration trials) slowly
    // shifts propensity toward shorter durations.
    let sparse = SyntheticLocalityProcess {
        mean_lasting: clk.ms(1),
        mean_gap: clk.secs(1),
        intra_spacing: clk.ms(1),
        jitter: 0.3,
    };
    feed(
        &mut est,
        &mut rng,
        &sparse,
        180,
        "phase 2: sparse singleton events",
    );

    // Phase 3: dense localities again — it must climb back.
    feed(
        &mut est,
        &mut rng,
        &bursts,
        20,
        "phase 3: dense localities return",
    );

    println!("Observation: the paper's updating rule ratchets the estimate UP");
    println!("within a handful of dense-locality events, but the downward path");
    println!("is slow — Algorithm 2 only reinforces larger candidates (under-");
    println!("coscheduling) or the incumbent (slack growth); shorter durations");
    println!("recover propensity only through this library's exploration trials");
    println!("(LearningConfig::downward_share). In closed-loop operation this");
    println!("asymmetry is benign: a long estimate costs at most one coscheduling");
    println!("window per locality, and windows end early when the VCRD timer");
    println!("finds no further over-threshold waits.");
}
