//! Property-based end-to-end tests: random workloads and configurations
//! must never wedge, crash or violate conservation laws.

use asman::prelude::*;
use proptest::prelude::*;

/// A random but well-formed op script.
fn arb_op(_threads: usize) -> impl Strategy<Value = Op> {
    let clk = Clock::default();
    prop_oneof![
        (1u64..3_000_000).prop_map(|c| Op::Compute(Cycles(c))),
        (0u32..3, 100u64..60_000).prop_map(|(l, h)| Op::CriticalSection {
            lock: l,
            hold: Cycles(h),
        }),
        Just(Op::Barrier { id: 0 }),
        (1u64..2_000_000).prop_map(|c| Op::Sleep(Cycles(c))),
        Just(Op::Mark(Mark::Transaction)),
        Just(Op::Mark(Mark::RoundEnd)),
        // Bounded-slack pipeline dependencies are exercised by the NAS
        // strategy below; raw WaitPeer with arbitrary targets could
        // deadlock by construction, so scripts use only the safe subset.
        (0u64..clk.ms(2).as_u64()).prop_map(|c| Op::Compute(Cycles(c + 1))),
    ]
}

fn arb_script(threads: usize) -> impl Strategy<Value = Vec<Vec<Op>>> {
    proptest::collection::vec(
        proptest::collection::vec(arb_op(threads), 1..24),
        threads..=threads,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any homogeneous-thread script completes (or the horizon passes)
    /// without panics, and the accounting stays conserved:
    /// spin + useful + warmup <= total online time.
    #[test]
    fn random_scripts_never_wedge(
        script in arb_script(3),
        seed in 0u64..1_000,
        pcpus in 2usize..6,
    ) {
        // Barriers require every thread to reach them the same number of
        // times; replicate thread 0's script to keep them aligned.
        let script0 = script[0].clone();
        let program = ScriptProgram::homogeneous("fuzz", 3, script0);
        let clk = Clock::default();
        let mut m = SimulationBuilder::new()
            .pcpus(pcpus)
            .seed(seed)
            .vm(VmSpec::new("fuzz", pcpus.min(3), Box::new(program)))
            .build();
        let done = m.run_to_completion(clk.secs(30));
        prop_assert!(done, "script must finish inside a generous horizon");
        let s = m.vm_kernel(0).stats();
        let acct = m.vm_accounting(0);
        let burned = s.useful_cycles
            + s.spin_kernel_cycles
            + s.spin_barrier_cycles
            + s.spin_pipeline_cycles;
        prop_assert!(
            burned <= acct.total_online() + Cycles(1_000_000),
            "accounting must not exceed online time: burned {burned:?} vs online {:?}",
            acct.total_online()
        );
    }

    /// Determinism holds across random configurations.
    #[test]
    fn random_configs_are_deterministic(
        seed in 0u64..500,
        pcpus in 2usize..8,
        weight in 32u32..512,
    ) {
        let run = || {
            let cg = NasSpec::new(NasBenchmark::CG, ProblemClass::S, 2).build(seed);
            let mut m = SimulationBuilder::new()
                .pcpus(pcpus)
                .seed(seed)
                .policy(Policy::Asman)
                .vm(VmSpec::new("g", 2, Box::new(cg)).weight(weight))
                .build();
            m.run_to_completion(Clock::default().secs(120));
            (
                m.events_processed(),
                m.vm_kernel(0).stats().finished_at,
                m.vm_kernel(0).stats().lock_acquisitions,
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// The measured online rate of a capped VM never exceeds its
    /// configured rate by more than the enforcement slack.
    #[test]
    fn caps_hold_for_random_weights(weight in 32u32..256, seed in 0u64..200) {
        let clk = Clock::default();
        let busy = ScriptProgram::homogeneous(
            "busy",
            4,
            vec![Op::Compute(clk.ms(1))],
        )
        .looping();
        let mut m = SimulationBuilder::new()
            .seed(seed)
            .vm(VmSpec::new("idle", 8, Box::new(ScriptProgram::homogeneous("i", 8, vec![]))))
            .vm(
                VmSpec::new("busy", 4, Box::new(busy))
                    .weight(weight)
                    .cap(CapMode::NonWorkConserving),
            )
            .build();
        m.run_until(clk.secs(2));
        let configured = m.configured_online_rate(1);
        let measured = m.vm_accounting(1).online_rate(m.now());
        prop_assert!(
            measured < configured + 0.08,
            "cap leak: measured {measured:.3} vs configured {configured:.3}"
        );
    }
}
