//! End-to-end behaviour of the VCRD/coscheduling pipeline.

use asman::prelude::*;

fn capped_lu(policy: Policy, seed: u64) -> Machine {
    let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(seed ^ 7);
    let dom0 = BackgroundService::new(BackgroundConfig::default(), 8, seed ^ 0xD0);
    SimulationBuilder::new()
        .seed(seed)
        .policy(policy)
        .vm(VmSpec::new("dom0", 8, Box::new(dom0)))
        .vm(VmSpec::new("guest", 4, Box::new(lu))
            .weight(32) // 22.2% online rate
            .cap(CapMode::NonWorkConserving))
        .build()
}

#[test]
fn vcrd_lifecycle_raises_and_expires() {
    let clk = Clock::default();
    let mut m = capped_lu(Policy::Asman, 42);
    m.run_to_completion(clk.secs(600));
    // Let the last estimation window expire: with the workload finished
    // there are no further over-threshold waits, so the timer must bring
    // the VCRD back to LOW.
    let settle = m.now() + clk.secs(2);
    m.run_until(settle);
    let acct = m.vm_accounting(1);
    assert!(acct.vcrd_raises > 0, "LU at 22.2% must raise the VCRD");
    assert!(
        acct.vcrd_high_cycles > Cycles::ZERO,
        "some time must be spent HIGH"
    );
    assert_eq!(
        m.vm_vcrd(1),
        Vcrd::Low,
        "VCRD returns LOW once the run ends"
    );
    assert!(
        acct.cosched_bursts > 0,
        "IPI bursts must have been launched"
    );
}

#[test]
fn coscheduling_improves_simultaneity_and_runtime() {
    let clk = Clock::default();
    let mut credit = capped_lu(Policy::Credit, 42);
    credit.run_to_completion(clk.secs(600));
    let mut asman = capped_lu(Policy::Asman, 42);
    asman.run_to_completion(clk.secs(600));

    let t_credit = credit.vm_kernel(1).stats().finished_at.unwrap();
    let t_asman = asman.vm_kernel(1).stats().finished_at.unwrap();
    assert!(
        t_asman < t_credit,
        "ASMan must beat Credit on capped LU: {} vs {}",
        clk.to_secs(t_asman),
        clk.to_secs(t_credit)
    );

    let co_credit = credit.vm_accounting(1).all_online_frac(t_credit);
    let co_asman = asman.vm_accounting(1).all_online_frac(t_asman);
    assert!(
        co_asman > co_credit,
        "ASMan must raise the all-VCPUs-online fraction: {co_asman:.3} vs {co_credit:.3}"
    );
}

#[test]
fn coscheduling_reduces_over_threshold_waits() {
    let clk = Clock::default();
    let mut credit = capped_lu(Policy::Credit, 42);
    credit.run_to_completion(clk.secs(600));
    let mut asman = capped_lu(Policy::Asman, 42);
    asman.run_to_completion(clk.secs(600));
    // Normalise by run length: rate of extreme waits per simulated second.
    let rate = |m: &Machine| {
        let s = m.vm_kernel(1).stats();
        let t = clk.to_secs(s.finished_at.unwrap());
        s.wait_hist.count_at_least_pow2(25) as f64 / t
    };
    assert!(
        rate(&asman) <= rate(&credit),
        "ASMan must not increase the extreme-wait rate"
    );
}

#[test]
fn baselines_never_raise_vcrd() {
    let clk = Clock::default();
    for policy in [Policy::Credit, Policy::Con] {
        let mut m = capped_lu(policy, 42);
        m.run_to_completion(clk.secs(600));
        assert_eq!(m.vm_accounting(1).vcrd_raises, 0, "{policy:?}");
        assert_eq!(m.vm_vcrd(1), Vcrd::Low);
    }
}

#[test]
fn con_coschedules_only_flagged_vms() {
    let clk = Clock::default();
    let mk = |seed| {
        Box::new(
            NasSpec::new(NasBenchmark::CG, ProblemClass::S, 4)
                .repeating()
                .build(seed),
        )
    };
    let mut m = SimulationBuilder::new()
        .seed(5)
        .policy(Policy::Con)
        .vm(VmSpec::new("flagged", 4, mk(1)).concurrent())
        .vm(VmSpec::new("unflagged", 4, mk(2)))
        .build();
    m.run_until(clk.secs(3));
    assert!(m.vm_accounting(0).cosched_bursts > 0);
    assert_eq!(m.vm_accounting(1).cosched_bursts, 0);
}

#[test]
fn asman_matches_credit_at_full_rate() {
    // §5.2: at a 100% online rate the two schedulers behave alike.
    let clk = Clock::default();
    let run = |policy| {
        let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(3);
        let mut m = SimulationBuilder::new()
            .seed(3)
            .policy(policy)
            .vm(VmSpec::new("guest", 4, Box::new(lu)))
            .build();
        m.run_to_completion(clk.secs(120));
        clk.to_secs(m.vm_kernel(0).stats().finished_at.unwrap())
    };
    let credit = run(Policy::Credit);
    let asman = run(Policy::Asman);
    assert!(
        (asman / credit - 1.0).abs() < 0.05,
        "at 100%: Credit {credit:.2}s vs ASMan {asman:.2}s"
    );
}
