//! The paper's qualitative claims, asserted end-to-end at the smallest
//! problem class (the full-size claims are asserted by the `repro`
//! binary's shape checks and recorded in EXPERIMENTS.md).

use asman::prelude::*;
use asman::report::figures::{fig01, fig02, fig07, FigureParams};

fn params() -> FigureParams {
    FigureParams {
        class: ProblemClass::S,
        seed: 42,
        rounds: 2,
        jobs: 1,
    }
}

#[test]
fn figure1_degradation_shape() {
    let fig = fig01::run(&params());
    for check in fig.shape_checks() {
        assert!(check.holds, "{} — {}", check.claim, check.evidence);
    }
}

#[test]
fn figure2_wait_scatter_shape() {
    let fig = fig02::run(&params());
    for check in fig.shape_checks() {
        assert!(check.holds, "{} — {}", check.claim, check.evidence);
    }
}

#[test]
fn figure7_asman_recovery_shape() {
    let fig = fig07::run(&params());
    for check in fig.shape_checks() {
        assert!(check.holds, "{} — {}", check.claim, check.evidence);
    }
}

#[test]
fn lock_holder_preemption_exists_and_coscheduling_removes_it() {
    // The minimal statement of the whole paper, as one test.
    let clk = Clock::default();
    let run = |policy| {
        let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(7);
        let dom0 = BackgroundService::new(BackgroundConfig::default(), 8, 0xD0);
        let mut m = SimulationBuilder::new()
            .seed(42)
            .policy(policy)
            .vm(VmSpec::new("dom0", 8, Box::new(dom0)))
            .vm(VmSpec::new("guest", 4, Box::new(lu))
                .weight(32)
                .cap(CapMode::NonWorkConserving))
            .build();
        m.run_to_completion(clk.secs(600));
        let s = m.vm_kernel(1).stats();
        (
            clk.to_secs(s.finished_at.unwrap()),
            s.holder_preemptions,
            s.wait_hist.count_at_least_pow2(20),
        )
    };
    let (t_credit, lhp_credit, over_credit) = run(Policy::Credit);
    let (t_asman, _, _) = run(Policy::Asman);
    assert!(lhp_credit > 0, "lock-holder preemption must occur at 22.2%");
    assert!(over_credit > 0, "over-threshold waits must occur at 22.2%");
    assert!(
        t_asman < t_credit,
        "coscheduling must recover run time: {t_asman:.1} vs {t_credit:.1}"
    );
}

#[test]
fn semaphore_style_waits_are_unaffected() {
    // §2.2: blocking waits (semaphores/futexes) are not hurt by
    // virtualization the way spinning is. A sleep-heavy workload at a low
    // online rate finishes near its nominal duration.
    let clk = Clock::default();
    let sleepy = ScriptProgram::homogeneous(
        "sleepy",
        4,
        vec![Op::Sleep(clk.ms(50)), Op::Compute(clk.us(200))],
    );
    let mut m = SimulationBuilder::new()
        .seed(6)
        .vm(VmSpec::new(
            "dom0",
            8,
            Box::new(BackgroundService::new(BackgroundConfig::default(), 8, 1)),
        ))
        .vm(VmSpec::new("guest", 4, Box::new(sleepy))
            .weight(32)
            .cap(CapMode::NonWorkConserving))
        .build();
    assert!(m.run_to_completion(clk.secs(10)));
    let t = clk.to_ms(m.vm_kernel(1).stats().finished_at.unwrap());
    // Nominal: one 50 ms sleep + a dash of compute. Even at a 22.2% cap
    // the blocking path must not blow this up by an order of magnitude.
    assert!(t < 250.0, "sleep-dominated workload took {t:.0} ms");
}

#[test]
fn ep_is_insensitive_to_the_scheduler() {
    // EP has no synchronization: Credit and ASMan must agree within noise
    // even at the lowest rate, and both must sit near the ideal slowdown.
    let clk = Clock::default();
    let run = |policy| {
        let ep = NasSpec::new(NasBenchmark::EP, ProblemClass::S, 4).build(3);
        let dom0 = BackgroundService::new(BackgroundConfig::default(), 8, 1);
        let mut m = SimulationBuilder::new()
            .seed(9)
            .policy(policy)
            .vm(VmSpec::new("dom0", 8, Box::new(dom0)))
            .vm(VmSpec::new("guest", 4, Box::new(ep))
                .weight(32)
                .cap(CapMode::NonWorkConserving))
            .build();
        m.run_to_completion(clk.secs(600));
        clk.to_secs(m.vm_kernel(1).stats().finished_at.unwrap())
    };
    let credit = run(Policy::Credit);
    let asman = run(Policy::Asman);
    assert!(
        (asman / credit - 1.0).abs() < 0.10,
        "EP: Credit {credit:.1}s vs ASMan {asman:.1}s"
    );
}
