//! Stress and failure-injection scenarios: malformed or adversarial
//! workloads must degrade gracefully (horizon return), never panic or
//! violate accounting.

use asman::prelude::*;

/// Structural invariant sweep (runqueue-position index, idle/queued
/// masks, state/queue agreement). The checks are debug-build-only here:
/// they are O(VCPUs) per call and the stress scenarios call them often.
fn check(m: &Machine) {
    if cfg!(debug_assertions) {
        m.check_invariants();
    }
}

#[test]
fn orphaned_barrier_hits_the_horizon_gracefully() {
    // Thread 1 finishes immediately while thread 0 waits at a barrier
    // that can never complete — a malformed program. The machine must
    // simply run to the horizon (like a hung guest on real hardware).
    let clk = Clock::default();
    let p = ScriptProgram::new("broken", vec![vec![Op::Barrier { id: 0 }], vec![]]);
    let mut m = SimulationBuilder::new()
        .pcpus(2)
        .seed(1)
        .vm(VmSpec::new("broken", 2, Box::new(p)))
        .build();
    let done = m.run_to_completion(clk.ms(500));
    check(&m);
    assert!(!done, "a deadlocked guest cannot complete");
    assert_eq!(m.now(), clk.ms(500), "simulation reaches the horizon");
    // The stuck VM burned almost nothing (spin budget then futex block).
    let online = m.vm_accounting(0).total_online();
    assert!(clk.to_ms(online) < 50.0);
}

#[test]
fn zero_weight_is_rejected_or_starved_safely() {
    // Weight 1 (minimum meaningful): the VM still progresses, just slowly.
    let clk = Clock::default();
    let p = ScriptProgram::homogeneous("w", 1, vec![Op::Compute(clk.ms(1))]);
    let mut m = SimulationBuilder::new()
        .pcpus(2)
        .seed(2)
        .vm(VmSpec::new(
            "heavy",
            1,
            Box::new(ScriptProgram::homogeneous("h", 1, vec![Op::Compute(clk.ms(1))]).looping()),
        )
        .weight(2560))
        .vm(VmSpec::new("tiny", 1, Box::new(p)).weight(1))
        .build();
    assert!(m.run_to_completion(clk.secs(10)), "weight-1 VM must finish");
    check(&m);
}

#[test]
fn many_threads_per_vcpu_round_robin() {
    // 8 threads on 2 VCPUs: the guest quantum must interleave them all.
    let clk = Clock::default();
    let p = ScriptProgram::homogeneous(
        "crowd",
        8,
        vec![Op::Compute(clk.ms(3)), Op::Mark(Mark::RoundEnd)],
    );
    let mut m = SimulationBuilder::new()
        .pcpus(2)
        .seed(3)
        .vm(VmSpec::new("crowd", 2, Box::new(p)))
        .build();
    assert!(m.run_to_completion(clk.secs(5)));
    check(&m);
    let stats = m.vm_kernel(0).stats();
    assert_eq!(stats.vm_rounds_completed(), 1);
    // All eight threads recorded their round.
    assert!(stats.vm_round_time(0).is_some());
}

#[test]
fn sixteen_vms_on_eight_pcpus_stay_consistent() {
    // Heavy consolidation: 16 single-VCPU VMs with mixed workloads.
    let clk = Clock::default();
    let mut b = SimulationBuilder::new().seed(4);
    for i in 0..16 {
        let spec = if i % 3 == 0 {
            let script = vec![
                Op::CriticalSection {
                    lock: 0,
                    hold: Cycles(2_000),
                },
                Op::Compute(clk.us(300)),
            ];
            VmSpec::new(
                format!("locky{i}"),
                1,
                Box::new(ScriptProgram::homogeneous("l", 1, script).looping()),
            )
        } else if i % 3 == 1 {
            VmSpec::new(
                format!("sleepy{i}"),
                1,
                Box::new(
                    ScriptProgram::homogeneous(
                        "s",
                        1,
                        vec![Op::Sleep(clk.ms(3)), Op::Compute(clk.us(500))],
                    )
                    .looping(),
                ),
            )
        } else {
            VmSpec::new(
                format!("busy{i}"),
                1,
                Box::new(
                    ScriptProgram::homogeneous("b", 1, vec![Op::Compute(clk.ms(1))]).looping(),
                ),
            )
        };
        b = b.vm(spec);
    }
    let mut m = b.build();
    // Step the consolidated run and re-verify the scheduler's structural
    // invariants at every boundary, not just at the end — index
    // corruption shows up transiently, mid-churn.
    for step in 1..=20 {
        m.run_until(clk.ms(step * 100));
        check(&m);
    }
    // Conservation: the sum of all VMs' online time cannot exceed
    // pcpus × elapsed.
    let total: u64 = (0..16)
        .map(|vm| m.vm_accounting(vm).total_online().as_u64())
        .sum();
    let capacity = 8 * m.now().as_u64();
    assert!(
        total <= capacity,
        "online time {total} exceeds machine capacity {capacity}"
    );
    // Busy VMs all made progress.
    for vm in 0..16 {
        assert!(m.vm_accounting(vm).total_online() > Cycles::ZERO, "vm {vm}");
    }
}

#[test]
fn horizon_zero_and_tiny_runs_are_safe() {
    let clk = Clock::default();
    let p = ScriptProgram::homogeneous("t", 1, vec![Op::Compute(Cycles(100))]);
    let mut m = SimulationBuilder::new()
        .pcpus(1)
        .seed(5)
        .vm(VmSpec::new("v", 1, Box::new(p)))
        .build();
    m.run_until(Cycles::ZERO);
    assert_eq!(m.now(), Cycles::ZERO);
    m.run_until(Cycles(1));
    m.run_until(clk.ms(1));
    assert!(m.run_to_completion(clk.secs(1)));
}
