//! Xen's BOOST mechanism: waking VCPUs preempt running ones, keeping
//! I/O-ish latency low on a loaded machine. Compares wake-to-dispatch
//! latency distributions with BOOST on and off.

use asman::hypervisor::{Machine, MachineConfig, VmSpec};
use asman::prelude::*;
use asman::report::Timeline;
use asman::sim::P2Quantile;

fn io_latency_p95(boost: bool) -> f64 {
    let clk = Clock::default();
    let cfg = MachineConfig {
        pcpus: 4,
        boost_enabled: boost,
        seed: 9,
        ..MachineConfig::default()
    };
    // Four busy VCPUs saturate the machine; an I/O-ish VM wakes every
    // ~4 ms for a short burst.
    let busy = ScriptProgram::homogeneous("busy", 4, vec![Op::Compute(clk.ms(1))]).looping();
    let io = ScriptProgram::homogeneous(
        "io",
        2,
        vec![Op::Sleep(clk.ms(4)), Op::Compute(clk.us(100))],
    )
    .looping();
    // The I/O VM is credit-poor (low weight): without BOOST its wakes
    // queue behind the busy VM's higher-credit VCPUs until a tick; with
    // BOOST they preempt immediately. (With ample credit the credit
    // comparison alone already preempts, masking BOOST.)
    let mut m = Machine::new(
        cfg,
        vec![
            VmSpec::new("busy", 4, Box::new(busy)).weight(512),
            VmSpec::new("io", 2, Box::new(io)).weight(16),
        ],
    );
    m.enable_schedule_trace(500_000);
    m.run_until(clk.secs(8));
    // Wake latencies of the I/O VM's VCPUs (global ids 4 and 5).
    let mut q = P2Quantile::new(0.95);
    for (vcpu, lat) in Timeline::wake_latencies(&m) {
        if vcpu >= 4 {
            q.observe(lat.as_u64() as f64);
        }
    }
    assert!(q.count() > 150, "need wake samples, got {}", q.count());
    q.estimate().unwrap()
}

#[test]
fn boost_keeps_wake_latency_low_under_load() {
    let clk = Clock::default();
    let with_boost = io_latency_p95(true);
    let without = io_latency_p95(false);
    // With BOOST, p95 wake latency stays in the sub-millisecond range
    // (wake jitter + dispatch); without it, woken VCPUs wait out other
    // VCPUs' slices.
    assert!(
        with_boost < clk.ms(1).as_u64() as f64,
        "boosted p95 {:.0} cycles too high",
        with_boost
    );
    assert!(
        without > with_boost * 3.0,
        "BOOST must visibly cut latency: {without:.0} vs {with_boost:.0}"
    );
}
