//! Proportional-share fairness invariants of the Credit scheduler model,
//! across cap modes and coscheduling policies — coscheduling must not
//! break the fairness guarantees the paper's §3.2 demands.

use asman::prelude::*;

fn busy(threads: usize) -> Box<ScriptProgram> {
    Box::new(
        ScriptProgram::homogeneous("busy", threads, vec![Op::Compute(Clock::default().ms(1))])
            .looping(),
    )
}

fn sync_heavy(threads: usize, seed: u64) -> Box<asman::workloads::PhasedProgram> {
    Box::new(
        NasSpec::new(NasBenchmark::LU, ProblemClass::S, threads)
            .repeating()
            .build(seed),
    )
}

/// Run two busy VMs with the given weights and return their online-rate
/// ratio.
fn share_ratio(policy: Policy, w0: u32, w1: u32) -> f64 {
    let clk = Clock::default();
    let mut m = SimulationBuilder::new()
        .pcpus(4)
        .seed(9)
        .policy(policy)
        .vm(VmSpec::new("a", 4, busy(4)).weight(w0))
        .vm(VmSpec::new("b", 4, busy(4)).weight(w1))
        .build();
    m.run_until(clk.secs(3));
    let ra = m.vm_accounting(0).online_rate(m.now());
    let rb = m.vm_accounting(1).online_rate(m.now());
    ra / rb
}

#[test]
fn equal_weights_share_equally_under_all_policies() {
    for policy in [Policy::Credit, Policy::Con, Policy::Asman] {
        let r = share_ratio(policy, 256, 256);
        assert!((r - 1.0).abs() < 0.1, "{policy:?}: ratio {r}");
    }
}

#[test]
fn double_weight_doubles_share() {
    for policy in [Policy::Credit, Policy::Asman] {
        let r = share_ratio(policy, 512, 256);
        assert!((r - 2.0).abs() < 0.35, "{policy:?}: ratio {r}");
    }
}

#[test]
fn nwc_cap_holds_under_asman_coscheduling() {
    // The paper's §3.2: coscheduling must keep proportional-share
    // fairness. A capped sync-heavy VM must not exceed its share even
    // when ASMan aggressively coschedules it.
    let clk = Clock::default();
    for policy in [Policy::Credit, Policy::Asman] {
        let mut m = SimulationBuilder::new()
            .seed(4)
            .policy(policy)
            .vm(VmSpec::new(
                "dom0",
                8,
                Box::new(BackgroundService::new(BackgroundConfig::default(), 8, 1)),
            ))
            .vm(VmSpec::new("guest", 4, sync_heavy(4, 2))
                .weight(64) // 40% online rate
                .cap(CapMode::NonWorkConserving))
            .build();
        m.run_until(clk.secs(5));
        let rate = m.vm_accounting(1).online_rate(m.now());
        assert!(
            rate < 0.45,
            "{policy:?}: capped VM exceeded its share: {rate:.3}"
        );
        assert!(rate > 0.30, "{policy:?}: capped VM starved: {rate:.3}");
    }
}

#[test]
fn work_conserving_uses_idle_capacity() {
    let clk = Clock::default();
    let mut m = SimulationBuilder::new()
        .seed(4)
        .vm(VmSpec::new(
            "idle",
            8,
            Box::new(ScriptProgram::homogeneous("i", 8, vec![])),
        ))
        .vm(VmSpec::new("busy", 4, busy(4)).weight(64))
        .build();
    m.run_until(clk.secs(2));
    let rate = m.vm_accounting(1).online_rate(m.now());
    assert!(rate > 0.9, "WC busy VM should use idle capacity: {rate:.3}");
}

#[test]
fn coscheduling_does_not_starve_third_parties() {
    // One ASMan-coscheduled sync-heavy VM next to two busy VMs: everyone
    // keeps a sane share of the fully loaded machine.
    let clk = Clock::default();
    let mut m = SimulationBuilder::new()
        .seed(8)
        .policy(Policy::Asman)
        .vm(VmSpec::new("sync", 4, sync_heavy(4, 3)).concurrent())
        .vm(VmSpec::new("b1", 4, busy(4)))
        .vm(VmSpec::new("b2", 4, busy(4)))
        .build();
    m.run_until(clk.secs(4));
    for vm in 0..3 {
        let rate = m.vm_accounting(vm).online_rate(m.now());
        assert!(
            (0.30..0.95).contains(&rate),
            "vm {vm} share out of band: {rate:.3}"
        );
    }
}
