//! End-to-end determinism: a simulation is a pure function of its
//! configuration and seed.

use asman::prelude::*;

fn fingerprint(seed: u64, policy: Policy) -> (u64, u64, u64, u64) {
    let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(seed ^ 7);
    let dom0 = BackgroundService::new(BackgroundConfig::default(), 8, seed ^ 0xD0);
    let mut m = SimulationBuilder::new()
        .seed(seed)
        .policy(policy)
        .vm(VmSpec::new("dom0", 8, Box::new(dom0)))
        .vm(VmSpec::new("guest", 4, Box::new(lu))
            .weight(64)
            .cap(CapMode::NonWorkConserving))
        .build();
    m.run_to_completion(Clock::default().secs(600));
    let s = m.vm_kernel(1).stats();
    (
        s.finished_at.expect("finished").as_u64(),
        s.lock_acquisitions,
        s.wait_hist.count_at_least_pow2(10),
        m.events_processed(),
    )
}

#[test]
fn same_seed_same_everything_credit() {
    assert_eq!(
        fingerprint(11, Policy::Credit),
        fingerprint(11, Policy::Credit)
    );
}

#[test]
fn same_seed_same_everything_asman() {
    assert_eq!(
        fingerprint(11, Policy::Asman),
        fingerprint(11, Policy::Asman)
    );
}

#[test]
fn different_seeds_diverge() {
    // Wake jitter and workload jitter differ, so at least the event count
    // or the finish time must differ.
    let a = fingerprint(1, Policy::Credit);
    let b = fingerprint(2, Policy::Credit);
    assert_ne!(a, b, "distinct seeds should not produce identical runs");
}

#[test]
fn policies_share_workload_but_not_schedule() {
    let credit = fingerprint(5, Policy::Credit);
    let asman = fingerprint(5, Policy::Asman);
    // Different schedulers, same workload: event streams diverge.
    assert_ne!(credit.3, asman.3);
}

#[test]
fn repeated_construction_is_stable_across_policies() {
    for policy in [Policy::Credit, Policy::Con, Policy::Asman] {
        assert_eq!(
            fingerprint(33, policy),
            fingerprint(33, policy),
            "{policy:?} must be reproducible"
        );
    }
}
