//! Extension policies: VMware-style relaxed coscheduling and the paper's
//! future-work out-of-VM VCRD inference.

use asman::hypervisor::{CoschedPolicy, Machine, MachineConfig};
use asman::prelude::*;

fn capped_lu(policy: CoschedPolicy, seed: u64) -> Machine {
    let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(seed ^ 7);
    let dom0 = BackgroundService::new(BackgroundConfig::default(), 8, seed ^ 0xD0);
    let cfg = MachineConfig {
        policy,
        seed,
        ..MachineConfig::default()
    };
    Machine::new(
        cfg,
        vec![
            VmSpec::new("dom0", 8, Box::new(dom0)),
            VmSpec::new("guest", 4, Box::new(lu))
                .weight(32)
                .cap(CapMode::NonWorkConserving)
                .concurrent(),
        ],
    )
}

#[test]
fn out_of_vm_inference_raises_vcrd_without_guest_help() {
    let clk = Clock::default();
    let mut m = capped_lu(CoschedPolicy::OutOfVm, 42);
    m.run_to_completion(clk.secs(600));
    // The guest runs a NullObserver (no Monitoring Module, no
    // hypercalls), yet the VMM inferred synchronization trouble from
    // sustained spinning.
    assert!(
        m.vm_accounting(1).vcrd_raises > 0,
        "PLE-style detection must raise the VCRD"
    );
    assert!(m.vm_accounting(1).cosched_bursts > 0);
}

#[test]
fn out_of_vm_recovers_part_of_the_excess() {
    let clk = Clock::default();
    let mut credit = capped_lu(CoschedPolicy::None, 42);
    credit.run_to_completion(clk.secs(600));
    let mut oov = capped_lu(CoschedPolicy::OutOfVm, 42);
    oov.run_to_completion(clk.secs(600));
    let t_credit = clk.to_secs(credit.vm_kernel(1).stats().finished_at.unwrap());
    let t_oov = clk.to_secs(oov.vm_kernel(1).stats().finished_at.unwrap());
    assert!(
        t_oov < t_credit * 1.02,
        "out-of-VM inference must not lose to Credit: {t_oov:.1} vs {t_credit:.1}"
    );
}

#[test]
fn relaxed_boosts_laggards_only() {
    let clk = Clock::default();
    let mut m = capped_lu(CoschedPolicy::Relaxed, 42);
    m.run_until(clk.secs(10));
    // Relaxed coscheduling fires skew-triggered boosts but never raises
    // the VCRD (it has no notion of it).
    assert!(
        m.vm_accounting(1).cosched_bursts > 0,
        "skew boosts expected"
    );
    assert_eq!(m.vm_accounting(1).vcrd_raises, 0);
    assert_eq!(m.vm_vcrd(1), Vcrd::Low);
}

#[test]
fn relaxed_does_not_regress_credit_badly() {
    let clk = Clock::default();
    let mut credit = capped_lu(CoschedPolicy::None, 42);
    credit.run_to_completion(clk.secs(600));
    let mut relaxed = capped_lu(CoschedPolicy::Relaxed, 42);
    relaxed.run_to_completion(clk.secs(600));
    let t_credit = clk.to_secs(credit.vm_kernel(1).stats().finished_at.unwrap());
    let t_relaxed = clk.to_secs(relaxed.vm_kernel(1).stats().finished_at.unwrap());
    assert!(
        t_relaxed < t_credit * 1.10,
        "relaxed must stay within 10% of Credit: {t_relaxed:.1} vs {t_credit:.1}"
    );
}
