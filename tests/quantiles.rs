//! Wait-time quantiles via the P² estimator, cross-checked against the
//! full trace — demonstrating the streaming statistics on real data.

use asman::prelude::*;
use asman::report::{Sched, SingleVmScenario};
use asman::sim::P2Quantile;

#[test]
fn p2_median_matches_trace_median_on_real_waits() {
    let clk = Clock::default();
    let sc = SingleVmScenario::new(Sched::Credit, 64, 42);
    let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(7);
    let mut m = sc.build(Box::new(lu));
    m.run_until(clk.secs(3));
    let waits: Vec<u64> = m
        .vm_kernel(1)
        .stats()
        .wait_trace
        .samples()
        .iter()
        .map(|(_, s)| s.wait.as_u64())
        .collect();
    assert!(waits.len() > 200, "need wait data, got {}", waits.len());
    let mut est = P2Quantile::new(0.5);
    for &w in &waits {
        est.observe(w as f64);
    }
    let mut sorted = waits.clone();
    sorted.sort_unstable();
    let exact = sorted[sorted.len() / 2] as f64;
    let approx = est.estimate().unwrap();
    // P² is approximate; on heavy-tailed data allow a factor-two band.
    assert!(
        approx > exact * 0.5 && approx < exact * 2.0,
        "P² median {approx:.0} vs exact {exact:.0}"
    );
}

#[test]
fn tail_quantile_reflects_over_threshold_population() {
    // At a low online rate the p999 of the traced waits reaches the
    // over-threshold region; at 100% it does not.
    let clk = Clock::default();
    let run = |weight: u32| {
        let sc = SingleVmScenario::new(Sched::Credit, weight, 42);
        let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(7);
        let mut m = sc.build(Box::new(lu));
        m.run_until(clk.secs(3));
        let mut est = P2Quantile::new(0.999);
        for (_, s) in m.vm_kernel(1).stats().wait_trace.samples() {
            est.observe(s.wait.as_u64() as f64);
        }
        est.estimate().unwrap_or(0.0)
    };
    let full = run(256);
    let capped = run(32);
    assert!(
        capped > full * 4.0,
        "p999 must inflate at low rates: {capped:.0} vs {full:.0}"
    );
}
