//! Validation of the §4.2 locality-of-synchronization model against
//! actual simulation traces: over-threshold spinlock waits do arrive in
//! bursts (localities) separated by longer gaps, which is the premise of
//! the paper's learning algorithm.

use asman::core::LocalitySegmenter;
use asman::prelude::*;
use asman::report::{Sched, SingleVmScenario, WaitWindow};

#[test]
fn over_threshold_events_cluster_into_localities() {
    let clk = Clock::default();
    let sc = SingleVmScenario::new(Sched::Credit, 32, 42); // 22.2%
    let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::W, 4).build(7);
    let mut m = sc.build(Box::new(lu));
    // Collect timestamps of over-threshold waits in a 10 s window.
    m.vm_kernel_mut(1).stats_mut().trace_floor = Cycles::pow2(20);
    let w = WaitWindow::collect(&mut m, 1, clk.ms(500), clk.secs(10));
    assert!(
        w.over_2_20 >= 10,
        "need a meaningful over-threshold population, got {}",
        w.over_2_20
    );
    // Reconstruct localities with a merge gap of two scheduling slots.
    let trace = m.vm_kernel(1).stats().wait_trace.samples().to_vec();
    let mut seg = LocalitySegmenter::new(clk.ms(20));
    for (t, _) in &trace {
        seg.push(*t);
    }
    let locs = seg.finish();
    assert!(!locs.is_empty());
    // Property (i): localities contain multiple events (bursts), i.e.
    // the mean burst size exceeds one — waits are NOT uniformly spread.
    let events: u32 = locs.iter().map(|l| l.events).sum();
    let mean_burst = events as f64 / locs.len() as f64;
    assert!(
        mean_burst > 1.3,
        "over-threshold waits must cluster: mean burst {mean_burst:.2} over {} localities",
        locs.len()
    );
    // Gaps between localities dominate their lasting times (bursty, not
    // continuous).
    let mean_lasting =
        locs.iter().map(|l| l.lasting.as_u64()).sum::<u64>() as f64 / locs.len() as f64;
    let z = LocalitySegmenter::intervals(&locs);
    if !z.is_empty() {
        let mean_gap = z.iter().map(|c| c.as_u64()).sum::<u64>() as f64 / z.len() as f64;
        assert!(
            mean_gap > mean_lasting,
            "gaps ({mean_gap:.0}) should exceed lasting times ({mean_lasting:.0})"
        );
    }
}

#[test]
fn asman_estimates_track_locality_scale() {
    // Closed loop: run ASMan and verify the VCRD HIGH windows cover a
    // substantial share of the time that over-threshold waits appear in
    // under Credit — i.e. the estimator picks durations on the locality
    // scale rather than the minimum or nothing.
    let _clk = Clock::default();
    let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(7);
    let sc = SingleVmScenario::new(Sched::Asman, 32, 42);
    let out = sc.run(Box::new(lu));
    assert!(out.vcrd_raises > 0);
    assert!(
        out.vcrd_high_frac > 0.10,
        "HIGH coverage too small: {:.3}",
        out.vcrd_high_frac
    );
    // And the coscheduling those windows drive visibly aligns the VM.
    assert!(out.all_online_frac > 0.05);
}
