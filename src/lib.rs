//! # asman — adaptive dynamic coscheduling for virtual machines
//!
//! A full reproduction of *Weng, Liu, Yu, Li — "Dynamic Adaptive
//! Scheduling for Virtual Machines" (HPDC 2011)* as a deterministic
//! discrete-event simulation in Rust: the Xen-like Credit scheduler
//! substrate, a guest kernel model exhibiting lock-holder preemption, the
//! NAS/SPECjbb/SPEC-rate workload models, and the paper's contribution —
//! the VCRD-driven **ASMan** adaptive coscheduler with its Roth–Erev
//! lasting-time estimator.
//!
//! This facade crate re-exports the workspace's public API and provides
//! [`SimulationBuilder`], a one-stop entry point for assembling
//! experiments.
//!
//! ## Quick start
//!
//! ```
//! use asman::prelude::*;
//!
//! // LU (tiny class) on a 4-VCPU VM capped at a 40% online rate,
//! // under the Credit scheduler and under ASMan.
//! let mut results = Vec::new();
//! for policy in [Policy::Credit, Policy::Asman] {
//!     let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(7);
//!     let mut machine = SimulationBuilder::new()
//!         .seed(42)
//!         .policy(policy)
//!         .vm(VmSpec::new("dom0", 8, Box::new(ScriptProgram::homogeneous("idle", 8, vec![]))))
//!         .vm(VmSpec::new("guest", 4, Box::new(lu))
//!             .weight(64)
//!             .cap(CapMode::NonWorkConserving))
//!         .build();
//!     machine.run_to_completion(Clock::default().secs(600));
//!     results.push(machine.vm_kernel(1).stats().finished_at.expect("finished"));
//! }
//! // ASMan never loses to Credit on a synchronization-heavy workload.
//! assert!(results[1] <= results[0] + Clock::default().secs(2));
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | event queue, cycle clock, RNG, statistics |
//! | [`workloads`] | NAS-like, SPECjbb-like, SPEC-rate-like programs |
//! | [`guest`] | guest kernel: spinlocks, futexes, barriers, Monitoring Module hooks |
//! | [`hypervisor`] | PCPUs/VCPUs/VMs, Credit scheduler, coscheduling mechanics |
//! | [`core`] | ASMan: VCRD, locality model, Roth–Erev estimator |
//! | [`cluster`] | multi-host lock-step driver, global balancer, live migration |
//! | [`report`] | per-figure experiment harness |

#![warn(missing_docs)]

pub use asman_cluster as cluster;
pub use asman_core as core;
pub use asman_guest as guest;
pub use asman_hypervisor as hypervisor;
pub use asman_report as report;
pub use asman_sim as sim;
pub use asman_workloads as workloads;

use asman_core::{asman_machine, AsmanConfig};
use asman_hypervisor::{CoschedPolicy, Machine, MachineConfig, VmSpec};

/// Scheduling policy selector for [`SimulationBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Unmodified Credit scheduler.
    Credit,
    /// Static coscheduling of `concurrent()`-flagged VMs (CON).
    Con,
    /// ASMan adaptive coscheduling with per-VM Monitoring Modules.
    Asman,
}

/// Fluent builder for a simulated machine.
///
/// ```
/// use asman::prelude::*;
///
/// let job = ScriptProgram::homogeneous("job", 2, vec![Op::Compute(Clock::default().ms(5))]);
/// let mut m = SimulationBuilder::new()
///     .pcpus(4)
///     .vm(VmSpec::new("v", 2, Box::new(job)))
///     .build();
/// assert!(m.run_to_completion(Clock::default().secs(1)));
/// ```
pub struct SimulationBuilder {
    cfg: MachineConfig,
    policy: Policy,
    asman: AsmanConfig,
    vms: Vec<VmSpec>,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulationBuilder {
    /// Start from the paper's testbed defaults (8 PCPUs at 2.33 GHz,
    /// 10 ms slots, 30 ms accounting, Credit policy).
    pub fn new() -> Self {
        SimulationBuilder {
            cfg: MachineConfig::default(),
            policy: Policy::Credit,
            asman: AsmanConfig::default(),
            vms: Vec::new(),
        }
    }

    /// Number of physical CPUs.
    pub fn pcpus(mut self, n: usize) -> Self {
        self.cfg.pcpus = n;
        self
    }

    /// Simulation seed (bit-exact reproducibility).
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }

    /// Scheduling policy.
    pub fn policy(mut self, p: Policy) -> Self {
        self.policy = p;
        self
    }

    /// Override the raw machine configuration.
    pub fn machine_config(mut self, cfg: MachineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Override ASMan's monitor/learning parameters (used with
    /// [`Policy::Asman`]).
    pub fn asman_config(mut self, cfg: AsmanConfig) -> Self {
        self.asman = cfg;
        self
    }

    /// Add a VM.
    pub fn vm(mut self, spec: VmSpec) -> Self {
        self.vms.push(spec);
        self
    }

    /// Assemble the machine.
    pub fn build(self) -> Machine {
        match self.policy {
            Policy::Credit => Machine::new(
                MachineConfig {
                    policy: CoschedPolicy::None,
                    ..self.cfg
                },
                self.vms,
            ),
            Policy::Con => Machine::new(
                MachineConfig {
                    policy: CoschedPolicy::Static,
                    ..self.cfg
                },
                self.vms,
            ),
            Policy::Asman => asman_machine(
                AsmanConfig {
                    machine: self.cfg,
                    ..self.asman
                },
                self.vms,
            ),
        }
    }
}

/// Everything a typical experiment needs, in one import.
pub mod prelude {
    pub use crate::{Policy, SimulationBuilder};
    pub use asman_core::{asman_machine, AsmanConfig, AsmanMonitor, LearningConfig};
    pub use asman_guest::{GuestCosts, MonitorConfig, Vcrd};
    pub use asman_hypervisor::{CapMode, CoschedPolicy, Machine, MachineConfig, VmSpec};
    pub use asman_sim::{Clock, Cycles};
    pub use asman_workloads::{
        BackgroundConfig, BackgroundService, Mark, NasBenchmark, NasSpec, Op, ProblemClass,
        Program, ScriptProgram, SpecCpuKind, SpecCpuRate, SpecJbb, SpecJbbConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn builder_selects_policy() {
        let mk = |p| {
            let job = ScriptProgram::homogeneous("j", 1, vec![]);
            crate::SimulationBuilder::new()
                .pcpus(2)
                .policy(p)
                .vm(VmSpec::new("v", 1, Box::new(job)))
                .build()
        };
        assert_eq!(
            mk(crate::Policy::Credit).config().policy,
            CoschedPolicy::None
        );
        assert_eq!(
            mk(crate::Policy::Con).config().policy,
            CoschedPolicy::Static
        );
        assert_eq!(
            mk(crate::Policy::Asman).config().policy,
            CoschedPolicy::Adaptive
        );
    }
}
