//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical engine it
//! runs a short warmup plus a fixed sample count and prints mean
//! wall-clock time (and derived throughput) per benchmark.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (constructed by [`criterion_group!`]).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Report derived throughput alongside wall-clock time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    /// Run one benchmark closure with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Finish the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let iters = b.iters.max(1);
        let mean = b.elapsed / iters as u32;
        let mut line = format!(
            "{}/{}: {:>12} per iter ({} iters)",
            self.name,
            id,
            format_duration(mean),
            iters
        );
        if let Some(tp) = self.throughput {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                match tp {
                    Throughput::Elements(n) => {
                        line.push_str(&format!(", {:.3e} elem/s", n as f64 / secs));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(", {:.3e} B/s", n as f64 / secs));
                    }
                }
            }
        }
        println!("{line}");
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times a closure over a fixed number of iterations.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly (one warmup + a small fixed sample count)
    /// and record total elapsed time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warmup, untimed
        // The stub keeps sample counts tiny so `cargo bench` stays fast
        // even for whole-simulation benchmarks.
        let samples = 3u64;
        let start = Instant::now();
        for _ in 0..samples {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += samples;
    }
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(5).throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(runs >= 4); // 1 warmup + 3 samples
    }
}
