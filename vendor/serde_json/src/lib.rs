//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Value`] tree as JSON text. Only the entry points the workspace uses
//! are provided (`to_vec_pretty`, `to_string_pretty`, `to_string`).

#![warn(missing_docs)]

pub use serde::Value;

/// Serialization error (the stub serializer is infallible; this type only
/// keeps call sites' `Result` handling compiling).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialization error")
    }
}
impl std::error::Error for Error {}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&format!("{x}"));
        }
    } else {
        out.push_str("null"); // JSON has no NaN/Inf
    }
}

fn write_value(v: &Value, indent: usize, pretty: bool, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(x) => fmt_f64(*x, out),
        Value::Str(s) => escape(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                write_value(item, indent + 1, pretty, out);
            }
            pad(indent, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                escape(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, indent + 1, pretty, out);
            }
            pad(indent, out);
            out.push('}');
        }
    }
}

/// Serialize `value` to a pretty-printed JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, true, &mut out);
    Ok(out)
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, false, &mut out);
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Serialize `value` to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("s".into(), Value::Str("hi\"x".into())),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":[true,null],"s":"hi\"x"}"#);
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains("\n  \"a\": 1"));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
