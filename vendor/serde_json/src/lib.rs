//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Value`] tree as JSON text and parses JSON text back into a
//! [`Value`] tree. Only the entry points the workspace uses are
//! provided (`to_vec_pretty`, `to_string_pretty`, `to_string`,
//! `from_str`).

#![warn(missing_docs)]

pub use serde::Value;

/// Serialization or parse error. Serialization through the stub is
/// infallible; parsing reports the byte offset and cause of the first
/// malformed construct.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn at(pos: usize, msg: impl Into<String>) -> Self {
        Error {
            msg: format!("{} at byte {pos}", msg.into()),
        }
    }
}

impl Default for Error {
    fn default() -> Self {
        Error {
            msg: "json serialization error".to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}
impl std::error::Error for Error {}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&format!("{x}"));
        }
    } else {
        out.push_str("null"); // JSON has no NaN/Inf
    }
}

fn write_value(v: &Value, indent: usize, pretty: bool, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(x) => fmt_f64(*x, out),
        Value::Str(s) => escape(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                write_value(item, indent + 1, pretty, out);
            }
            pad(indent, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                escape(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, indent + 1, pretty, out);
            }
            pad(indent, out);
            out.push('}');
        }
    }
}

/// Serialize `value` to a pretty-printed JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, true, &mut out);
    Ok(out)
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, false, &mut out);
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Serialize `value` to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse JSON text into a [`Value`] tree. Objects keep their fields in
/// document order (the [`Value::Object`] representation is an ordered
/// list), so a parse → render round trip is byte-stable.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        b: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(Error::at(p.pos, "trailing data after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(self.pos, format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::at(self.pos, format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::at(self.pos, format!("unexpected byte `{}`", c as char))),
            None => Err(Error::at(self.pos, "unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at(self.pos, "expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::at(self.pos, "expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::at(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                if self.b[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::at(self.pos, "invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::at(self.pos, "unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::at(self.pos, "invalid codepoint"))?,
                            );
                        }
                        c => {
                            return Err(Error::at(
                                self.pos,
                                format!("unknown escape `\\{}`", c as char),
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // char boundaries are valid by construction).
                    let rest = &self.b[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::at(self.pos, "invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    if (c as u32) < 0x20 {
                        return Err(Error::at(self.pos, "unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::at(self.pos, "unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .b
            .get(self.pos..end)
            .ok_or_else(|| Error::at(self.pos, "truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos])
            .map_err(|_| Error::at(start, "invalid number"))?;
        if !float {
            // Integers keep their exact-width variants — checkpoint
            // state is all integers and must round-trip losslessly.
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<i64>() {
                    return Ok(Value::I64(-v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::at(start, format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("s".into(), Value::Str("hi\"x".into())),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":[true,null],"s":"hi\"x"}"#);
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains("\n  \"a\": 1"));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parses_every_value_kind() {
        let v = from_str(
            r#"{"a": 1, "b": [-2, 2.5, true, false, null], "s": "x\n\"\u0041", "o": {}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(
            v.get("b").unwrap().as_array().unwrap(),
            &[
                Value::I64(-2),
                Value::F64(2.5),
                Value::Bool(true),
                Value::Bool(false),
                Value::Null
            ]
        );
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x\n\"A"));
        assert_eq!(v.get("o"), Some(&Value::Object(vec![])));
    }

    #[test]
    fn parse_render_round_trip_is_byte_stable() {
        let v = Value::Object(vec![
            ("z".into(), Value::U64(u64::MAX)),
            ("i".into(), Value::I64(-42)),
            ("f".into(), Value::F64(1.5)),
            ("arr".into(), Value::Array(vec![Value::Str("hi\\x".into())])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(to_string_pretty(&back).unwrap(), text);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            from_str(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn malformed_input_is_rejected() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1..2", "\"unterminated",
            "{\"a\":1} trailing", "\"\\u12\"", "\"\\q\"",
        ] {
            assert!(from_str(bad).is_err(), "`{bad}` must not parse");
        }
    }
}
