//! Offline stand-in for the `serde` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the narrow slice of serde it uses: a [`Serialize`] trait that lowers a
//! value into a JSON-like [`Value`] tree (rendered by the vendored
//! `serde_json`), a derive macro for it, and a vacuous [`Deserialize`]
//! trait so `#[derive(Deserialize)]` keeps compiling (nothing in the
//! workspace reads serialized data back).

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value: the JSON data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, accepting non-negative `I64` and integral
    /// `U64` (the two variants a round-tripped unsigned number can land
    /// in).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, accepting in-range `U64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The field list, if this is an `Object` (insertion-ordered).
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Look up a field of an `Object` by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Produce the serialized representation of `self`.
    fn to_value(&self) -> Value;
}

/// Vacuous deserialization marker.
///
/// The workspace never reads serialized artifacts back in; the trait only
/// exists so `#[derive(Deserialize)]` on config/result structs compiles.
pub trait Deserialize {}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(v) => Value::U64(v),
            Err(_) => Value::F64(*self as f64),
        }
    }
}
impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::I64(v),
            Err(_) => Value::F64(*self as f64),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}
ser_tuple!(A: 0);
ser_tuple!(A: 0, B: 1);
ser_tuple!(A: 0, B: 1, C: 2);
ser_tuple!(A: 0, B: 1, C: 2, D: 3);
ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

macro_rules! de_blanket {
    ($($t:ty),*) => {$( impl Deserialize for $t {} )*};
}
de_blanket!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, String, char
);
impl<T> Deserialize for Option<T> {}
impl<T> Deserialize for Vec<T> {}
impl<T, const N: usize> Deserialize for [T; N] {}
impl<A, B> Deserialize for (A, B) {}
impl Deserialize for &str {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(7u32.to_value(), Value::U64(7));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn value_accessors_select_the_right_variants() {
        let obj = Value::Object(vec![
            ("n".to_string(), Value::U64(7)),
            ("s".to_string(), Value::Str("x".into())),
            ("a".to_string(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(obj.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(obj.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(obj.get("a").and_then(Value::as_array).map(<[Value]>::len), Some(1));
        assert_eq!(obj.get("missing"), None);
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::U64(5).as_i64(), Some(5));
        assert_eq!(Value::U64(2).as_f64(), Some(2.0));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn composites_recurse() {
        let v = vec![(1u64, 2.5f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![Value::U64(1), Value::F64(2.5)])])
        );
        let arr = [1u8, 2];
        assert_eq!(
            arr.to_value(),
            Value::Array(vec![Value::U64(1), Value::U64(2)])
        );
    }
}
