//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! offline `serde` stand-in.
//!
//! With no crates.io access there is no `syn`/`quote`, so this macro
//! parses the item's token stream by hand. It supports exactly the shapes
//! the workspace uses: structs with named fields, tuple structs, unit
//! structs, enums with unit / tuple / struct variants, and at most simple
//! type-parameter generics (`struct TraceBuffer<T> { .. }`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Body {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum variants.
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    /// Generic parameter names (type params only; lifetimes unsupported).
    generics: Vec<String>,
    body: Body,
}

/// Skip a `#[...]` attribute if the cursor is on `#`; returns true if one
/// was consumed.
fn skip_attr(tokens: &[TokenTree], i: &mut usize) -> bool {
    if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() == '#' {
            *i += 1; // '#'
            if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                *i += 1;
            }
            return true;
        }
    }
    false
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Count top-level comma-separated items in a token slice (0 for empty).
fn count_top_level(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut depth = 0i32;
    let mut saw_item = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if depth == 0 && p.as_char() == ',' => {
                n += 1;
                saw_item = false;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => saw_item = true,
        }
    }
    if !saw_item {
        n -= 1; // trailing comma
    }
    n
}

/// Parse named fields out of a brace-group body: `attrs vis name: Type, ...`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while skip_attr(&tokens, &mut i) {}
        skip_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        names.push(id.to_string());
        // Skip to the next top-level comma (the type may contain nested
        // angle brackets; commas inside them are not separators).
        let mut depth = 0i32;
        i += 1;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if depth == 0 && p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while skip_attr(&tokens, &mut i) {}
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level(&g.stream().into_iter().collect::<Vec<_>>());
                i += 1;
                VariantFields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                i += 1;
                VariantFields::Named(named)
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        // Consume the separating comma (and any discriminant, unused here).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while skip_attr(&tokens, &mut i) {}
    skip_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected item name, got {other:?}"),
    };
    i += 1;
    // Generics: collect bare type-parameter names, ignoring bounds.
    let mut generics = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 1i32;
        i += 1;
        let mut at_param = true;
        while i < tokens.len() && depth > 0 {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => at_param = true,
                TokenTree::Punct(p) if p.as_char() == ':' => at_param = false,
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    panic!("serde stub derive: lifetimes are not supported")
                }
                TokenTree::Ident(id) if at_param && depth == 1 => {
                    generics.push(id.to_string());
                    at_param = false;
                }
                _ => {}
            }
            i += 1;
        }
    }
    let body = if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stub derive: expected enum body, got {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_top_level(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            _ => Body::Unit,
        }
    };
    Item {
        name,
        generics,
        body,
    }
}

fn impl_header(item: &Item, trait_path: &str, bound: bool) -> String {
    if item.generics.is_empty() {
        format!("impl {trait_path} for {}", item.name)
    } else {
        let params = item.generics.join(", ");
        let bounds = if bound {
            item.generics
                .iter()
                .map(|g| format!("{g}: {trait_path}"))
                .collect::<Vec<_>>()
                .join(", ")
        } else {
            params.clone()
        };
        format!("impl<{bounds}> {trait_path} for {}<{params}>", item.name)
    }
}

fn object_of(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries = fields
        .iter()
        .map(|f| {
            format!(
                "(\"{f}\".to_string(), ::serde::Serialize::to_value({})),",
                access(f)
            )
        })
        .collect::<String>();
    format!("::serde::Value::Object(vec![{entries}])")
}

/// Derive `serde::Serialize` (vendored stand-in).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.body {
        Body::Struct(fields) => object_of(fields, |f| format!("&self.{f}")),
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let elems = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                .collect::<String>();
            format!("::serde::Value::Array(vec![{elems}])")
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let ty = &item.name;
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{ty}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{ty}::{vn}(f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds = (0..*n)
                                .map(|k| format!("f{k}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let elems = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(f{k}),"))
                                .collect::<String>();
                            format!(
                                "{ty}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{elems}]))]),"
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let inner = object_of(fields, |f| f.to_string());
                            format!(
                                "{ty}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),"
                            )
                        }
                    }
                })
                .collect::<String>();
            format!("match self {{ {arms} }}")
        }
    };
    let header = impl_header(&item, "::serde::Serialize", true);
    format!(
        "#[automatically_derived] {header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
    .parse()
    .expect("serde stub derive: generated impl must parse")
}

/// Derive `serde::Deserialize` (vendored stand-in; vacuous marker impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let header = impl_header(&item, "::serde::Deserialize", false);
    format!("#[automatically_derived] {header} {{}}")
        .parse()
        .expect("serde stub derive: generated impl must parse")
}
