//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! reimplements the slice of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, range / tuple /
//! [`Just`] / [`any`] strategies, [`collection::vec`], [`prop_oneof!`],
//! and `prop_assert*` macros. Generation is a deterministic splitmix64
//! stream per test case — shrinking is not implemented; a failing case
//! panics with the ordinary assert message instead.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test-runner configuration and the deterministic case RNG.

    /// Configuration accepted via `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case random source (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one numbered case of one named test.
        pub fn from_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name keeps distinct tests on distinct
            // streams even though the harness has no global seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is acceptable for a test-input generator.
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value from the RNG stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! uint_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end as u64 - self.start as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    if lo == 0 && hi == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.below(hi - lo + 1)) as $t
                }
            }
        )*};
    }
    uint_ranges!(u8, u16, u32, u64, usize);

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    int_ranges!(i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Uniform choice among same-valued strategies ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Build from the (non-empty) option list.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Box a strategy as a trait object (used by [`crate::prop_oneof!`]).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Types with a canonical "anything goes" strategy ([`crate::arbitrary::any`]).
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric; property tests want usable numbers,
            // not NaN bit patterns.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T> {
        _marker: ::std::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: ::std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::{Any, Arbitrary};

    /// Strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count bounds for collection strategies (inclusive).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with element strategy `element` and length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Assert inside a property; failure panics and fails the whole test
/// (the stub does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case when the assumption fails. The stub cannot
/// resample, so it simply skips the rest of the case body via early return
/// from the per-case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                // Per-case closure so prop_assume! can early-return.
                let __run = |__rng: &mut $crate::test_runner::TestRng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), __rng);
                    )+
                    $body
                };
                let mut __rng = $crate::test_runner::TestRng::from_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case as u64,
                );
                __run(&mut __rng);
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_case("t", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![
            (1u64..10).prop_map(|x| x * 2),
            Just(99u64),
        ];
        let mut rng = crate::test_runner::TestRng::from_case("t2", 1);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v == 99 || (2..20).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let s = crate::collection::vec(0u64..5, 2..6);
        let mut rng = crate::test_runner::TestRng::from_case("t3", 2);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..=5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
        }
    }
}
