//! Shared helpers for the Criterion benchmark suite.
//!
//! Each `benches/figNN_*.rs` target regenerates (a class-S rendition of)
//! one paper figure inside Criterion's timing loop, so `cargo bench`
//! both regenerates the numbers and tracks the simulator's wall-clock
//! performance. `benches/ablations.rs` sweeps the design parameters
//! DESIGN.md calls out, and `benches/engine.rs` microbenchmarks the
//! simulation substrate itself.

#![warn(missing_docs)]

use asman_core::{asman_machine, AsmanConfig};
use asman_hypervisor::{CapMode, CoschedPolicy, Machine, MachineConfig, VmSpec};
use asman_sim::Clock;
use asman_workloads::{BackgroundConfig, BackgroundService, NasBenchmark, NasSpec, ProblemClass};

/// The reference single-VM scenario (LU at a 22.2% online rate) used by
/// benches: the paper's most scheduler-sensitive configuration.
pub fn reference_machine(policy: CoschedPolicy, seed: u64, class: ProblemClass) -> Machine {
    reference_machine_cfg(
        MachineConfig {
            policy,
            seed,
            ..MachineConfig::default()
        },
        AsmanConfig::default(),
        class,
    )
}

/// Like [`reference_machine`] but with full control over the machine and
/// ASMan configurations (for the ablation sweeps).
pub fn reference_machine_cfg(
    cfg: MachineConfig,
    asman: AsmanConfig,
    class: ProblemClass,
) -> Machine {
    let seed = cfg.seed;
    let lu = NasSpec::new(NasBenchmark::LU, class, 4).build(seed ^ 7);
    let dom0 = BackgroundService::new(BackgroundConfig::default(), 8, seed ^ 0xD0);
    let specs = vec![
        VmSpec::new("dom0", 8, Box::new(dom0)),
        VmSpec::new("guest", 4, Box::new(lu))
            .weight(32)
            .cap(CapMode::NonWorkConserving)
            .concurrent(),
    ];
    match cfg.policy {
        CoschedPolicy::Adaptive => asman_machine(
            AsmanConfig {
                machine: cfg,
                ..asman
            },
            specs,
        ),
        _ => Machine::new(cfg, specs),
    }
}

/// Run the reference scenario to completion and return the simulated run
/// time in seconds (the figure-of-merit for the ablation benches).
pub fn reference_run_secs(policy: CoschedPolicy, seed: u64) -> f64 {
    let clk = Clock::default();
    let mut m = reference_machine(policy, seed, ProblemClass::S);
    m.run_to_completion(clk.secs(600));
    clk.to_secs(m.vm_kernel(1).stats().finished_at.expect("finished"))
}

/// Simulated run time for a custom configuration.
pub fn run_secs_cfg(cfg: MachineConfig, asman: AsmanConfig) -> f64 {
    let clk = Clock::default();
    let mut m = reference_machine_cfg(cfg, asman, ProblemClass::S);
    m.run_to_completion(clk.secs(600));
    clk.to_secs(m.vm_kernel(1).stats().finished_at.expect("finished"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_machine_runs_under_both_policies() {
        let c = reference_run_secs(CoschedPolicy::None, 1);
        let a = reference_run_secs(CoschedPolicy::Adaptive, 1);
        assert!(c > 0.0 && a > 0.0);
    }
}
