//! Figure 11 bench: the four-VM combinations under the three schedulers.

use asman_report::{multivm::MultiVmScenario, paper_combination, Sched};
use asman_workloads::ProblemClass;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn run(which: u8, sched: Sched) -> f64 {
    let mut sc = MultiVmScenario::new(sched, paper_combination(which), ProblemClass::S, 42);
    sc.rounds = 2;
    let rows = sc.run();
    rows.iter().map(|r| r.mean_round_secs).sum::<f64>() / rows.len() as f64
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_4vms");
    g.sample_size(10);
    for which in [1u8, 2] {
        for sched in Sched::ALL {
            let mean = run(which, sched);
            eprintln!(
                "fig11 combo {which} {}: mean round {mean:.1}s",
                sched.label()
            );
        }
        g.bench_with_input(BenchmarkId::new("asman", which), &which, |b, &w| {
            b.iter(|| run(w, Sched::Asman))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
