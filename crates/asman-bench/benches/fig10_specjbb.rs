//! Figure 10 bench: SPECjbb throughput sweep at a 22.2% online rate.

use asman_report::{JbbScenario, Sched};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_specjbb_22pct");
    g.sample_size(10);
    let sc = |sched| JbbScenario {
        warmup_secs: 1,
        window_secs: 4,
        ..JbbScenario::new(sched, 32, 42)
    };
    for w in [1usize, 4, 8] {
        let credit = sc(Sched::Credit).run(w);
        let asman = sc(Sched::Asman).run(w);
        eprintln!(
            "fig10 w={w}: Credit {:.0} bops vs ASMan {:.0} bops",
            credit.bops, asman.bops
        );
        g.bench_with_input(BenchmarkId::new("asman", w), &w, |b, &w| {
            b.iter(|| sc(Sched::Asman).run(w))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
