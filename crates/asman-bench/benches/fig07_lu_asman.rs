//! Figure 7 bench: LU at the lowest online rate, Credit vs ASMan.

use asman_bench::reference_run_secs;
use asman_hypervisor::CoschedPolicy;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_lu_22pct");
    g.sample_size(10);
    let credit = reference_run_secs(CoschedPolicy::None, 42);
    let asman = reference_run_secs(CoschedPolicy::Adaptive, 42);
    eprintln!(
        "fig07 @22.2%: Credit {credit:.1}s vs ASMan {asman:.1}s (saving {:.0}%)",
        (1.0 - asman / credit) * 100.0
    );
    assert!(asman < credit, "ASMan must win the reference scenario");
    g.bench_function("credit", |b| {
        b.iter(|| reference_run_secs(CoschedPolicy::None, 42))
    });
    g.bench_function("asman", |b| {
        b.iter(|| reference_run_secs(CoschedPolicy::Adaptive, 42))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
