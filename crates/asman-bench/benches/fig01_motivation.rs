//! Figure 1 bench: LU under Credit across the four online rates.
//!
//! Regenerates the motivation experiment (class S) inside the timing
//! loop; the figure-of-merit printed once per rate is the simulated run
//! time and over-threshold population.

use asman_bench::reference_machine_cfg;
use asman_core::AsmanConfig;
use asman_hypervisor::{CapMode, CoschedPolicy, MachineConfig, VmSpec};
use asman_sim::Clock;
use asman_workloads::{BackgroundConfig, BackgroundService, NasBenchmark, NasSpec, ProblemClass};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn run_rate(weight: u32, seed: u64) -> (f64, u64) {
    let clk = Clock::default();
    let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(seed ^ 7);
    let dom0 = BackgroundService::new(BackgroundConfig::default(), 8, seed ^ 0xD0);
    let mut m = asman_hypervisor::Machine::new(
        MachineConfig {
            seed,
            policy: CoschedPolicy::None,
            ..MachineConfig::default()
        },
        vec![
            VmSpec::new("dom0", 8, Box::new(dom0)),
            VmSpec::new("guest", 4, Box::new(lu))
                .weight(weight)
                .cap(CapMode::NonWorkConserving),
        ],
    );
    m.run_to_completion(clk.secs(600));
    let s = m.vm_kernel(1).stats();
    (
        clk.to_secs(s.finished_at.expect("finished")),
        s.wait_hist.count_at_least_pow2(20),
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01_lu_credit");
    g.sample_size(10);
    for (weight, pct) in [(256u32, "100"), (128, "66.7"), (64, "40"), (32, "22.2")] {
        let (secs, over) = run_rate(weight, 42);
        eprintln!("fig01 rate {pct}%: run {secs:.1}s, {over} waits >= 2^20");
        g.bench_with_input(BenchmarkId::from_parameter(pct), &weight, |b, &w| {
            b.iter(|| run_rate(w, 42))
        });
    }
    g.finish();
    // Silence an unused warning for the richer helper.
    let _ = reference_machine_cfg(
        MachineConfig::default(),
        AsmanConfig::default(),
        ProblemClass::S,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
