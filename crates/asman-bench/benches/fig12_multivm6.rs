//! Figure 12 bench: the six-VM combinations under the three schedulers.

use asman_report::{multivm::MultiVmScenario, paper_combination, Sched};
use asman_workloads::ProblemClass;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn run(which: u8, sched: Sched) -> f64 {
    let mut sc = MultiVmScenario::new(sched, paper_combination(which), ProblemClass::S, 42);
    sc.rounds = 2;
    let rows = sc.run();
    // Figure-of-merit: mean LU round time (the paper's headline saving).
    rows.iter()
        .filter(|r| r.workload == "LU")
        .map(|r| r.mean_round_secs)
        .sum::<f64>()
        / rows.iter().filter(|r| r.workload == "LU").count().max(1) as f64
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_6vms");
    g.sample_size(10);
    for which in [3u8, 4] {
        for sched in Sched::ALL {
            eprintln!(
                "fig12 combo {which} {}: LU mean round {:.1}s",
                sched.label(),
                run(which, sched)
            );
        }
        g.bench_with_input(BenchmarkId::new("asman", which), &which, |b, &w| {
            b.iter(|| run(w, Sched::Asman))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
