//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each group prints the simulated-outcome sweep once (that is the
//! scientific payload) and times one representative configuration so
//! regressions in simulator performance are tracked too. Scenario:
//! LU at a 22.2% online rate (class S), the paper's most sensitive point.

use asman_bench::{reference_run_secs, run_secs_cfg};
use asman_core::{AsmanConfig, LearningConfig};
use asman_guest::MonitorConfig;
use asman_hypervisor::{CoschedPolicy, MachineConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn asman_cfg() -> (MachineConfig, AsmanConfig) {
    (
        MachineConfig {
            policy: CoschedPolicy::Adaptive,
            seed: 42,
            ..MachineConfig::default()
        },
        AsmanConfig::default(),
    )
}

/// δ sweep: sensitivity of over-threshold detection (paper fixes δ=20).
fn ablation_delta(c: &mut Criterion) {
    eprintln!("== ablation: over-threshold exponent δ ==");
    for delta in [16u32, 18, 20, 22, 24] {
        let (m, mut a) = asman_cfg();
        a.monitor = MonitorConfig { delta };
        eprintln!("  δ={delta}: run {:.1}s", run_secs_cfg(m, a));
    }
    let mut g = c.benchmark_group("ablation_delta");
    g.sample_size(10);
    g.bench_function("delta20", |b| {
        b.iter(|| {
            let (m, a) = asman_cfg();
            run_secs_cfg(m, a)
        })
    });
    g.finish();
}

/// Learning parameters: recency/experimentation and the verbatim
/// (upward-only) Algorithm 2 vs the stabilized variant.
fn ablation_learning(c: &mut Criterion) {
    eprintln!("== ablation: learning algorithm ==");
    let cases: Vec<(&str, LearningConfig)> = vec![
        ("default", LearningConfig::default()),
        (
            "verbatim-algorithm-2",
            LearningConfig {
                downward_share: false,
                ..LearningConfig::default()
            },
        ),
        (
            "high-recency r=0.5",
            LearningConfig {
                recency: 0.5,
                ..LearningConfig::default()
            },
        ),
        (
            "no-exploration e=0.01",
            LearningConfig {
                experimentation: 0.01,
                ..LearningConfig::default()
            },
        ),
        (
            "short-candidates <=40ms",
            LearningConfig {
                values: (1..=8)
                    .map(|k| asman_sim::Clock::default().ms(5 * k))
                    .collect(),
                ..LearningConfig::default()
            },
        ),
    ];
    for (name, lc) in cases {
        let (m, mut a) = asman_cfg();
        a.learning = lc;
        eprintln!("  {name}: run {:.1}s", run_secs_cfg(m, a));
    }
    let mut g = c.benchmark_group("ablation_learning");
    g.sample_size(10);
    g.bench_function("default", |b| {
        b.iter(|| {
            let (m, a) = asman_cfg();
            run_secs_cfg(m, a)
        })
    });
    g.finish();
}

/// IPI latency: cost-model sensitivity of coscheduling.
fn ablation_ipi(c: &mut Criterion) {
    eprintln!("== ablation: IPI latency ==");
    for us in [1u64, 4, 20, 100, 500] {
        let (mut m, a) = asman_cfg();
        m.ipi_latency_us = us;
        eprintln!("  ipi={us}us: run {:.1}s", run_secs_cfg(m, a));
    }
    let mut g = c.benchmark_group("ablation_ipi");
    g.sample_size(10);
    g.bench_function("ipi4us", |b| {
        b.iter(|| {
            let (m, a) = asman_cfg();
            run_secs_cfg(m, a)
        })
    });
    g.finish();
}

/// Cache warm-up penalty: how much of the degradation is churn cost.
fn ablation_warmup(c: &mut Criterion) {
    eprintln!("== ablation: cache warm-up penalty ==");
    for us in [0u64, 30, 60, 120, 300] {
        let (mut m, a) = asman_cfg();
        m.warmup_us = us;
        let asman = run_secs_cfg(m, a);
        let credit = run_secs_cfg(
            MachineConfig {
                policy: CoschedPolicy::None,
                warmup_us: us,
                seed: 42,
                ..MachineConfig::default()
            },
            AsmanConfig::default(),
        );
        eprintln!("  warmup={us}us: Credit {credit:.1}s, ASMan {asman:.1}s");
    }
    let mut g = c.benchmark_group("ablation_warmup");
    g.sample_size(10);
    g.bench_function("warmup60", |b| {
        b.iter(|| {
            let (m, a) = asman_cfg();
            run_secs_cfg(m, a)
        })
    });
    g.finish();
}

/// Credit assignment interval K.
fn ablation_interval(c: &mut Criterion) {
    eprintln!("== ablation: credit assignment interval (K slots) ==");
    for k in [1u32, 3, 6, 12] {
        let (mut m, a) = asman_cfg();
        m.assign_interval_slots = k;
        eprintln!("  K={k}: run {:.1}s", run_secs_cfg(m, a));
    }
    let mut g = c.benchmark_group("ablation_interval");
    g.sample_size(10);
    g.bench_function("k3", |b| {
        b.iter(|| {
            let (m, a) = asman_cfg();
            run_secs_cfg(m, a)
        })
    });
    g.finish();
}

/// Policy panel: every scheduler on the reference scenario, including
/// the relaxed-coscheduling and out-of-VM extensions.
fn ablation_policies(c: &mut Criterion) {
    eprintln!("== ablation: policy panel (LU @ 22.2%) ==");
    for (name, policy) in [
        ("credit", CoschedPolicy::None),
        ("con", CoschedPolicy::Static),
        ("asman", CoschedPolicy::Adaptive),
        ("relaxed", CoschedPolicy::Relaxed),
        ("out-of-vm", CoschedPolicy::OutOfVm),
    ] {
        eprintln!("  {name}: run {:.1}s", reference_run_secs(policy, 42));
    }
    let mut g = c.benchmark_group("ablation_policies");
    g.sample_size(10);
    g.bench_function("asman", |b| {
        b.iter(|| reference_run_secs(CoschedPolicy::Adaptive, 42))
    });
    g.finish();
}

/// LLC-aware gang placement (§7 future work) under a range of
/// cross-socket penalties.
fn ablation_llc(c: &mut Criterion) {
    eprintln!("== ablation: LLC-aware gang placement ==");
    for cross_us in [60u64, 200, 400, 800] {
        let mut row = String::new();
        for llc in [false, true] {
            let (mut m, a) = asman_cfg();
            m.cross_socket_warmup_us = cross_us;
            m.llc_aware = llc;
            row.push_str(&format!(
                " {}={:.1}s",
                if llc { "aware" } else { "flat" },
                run_secs_cfg(m, a.clone())
            ));
        }
        eprintln!("  cross-socket {cross_us}us:{row}");
    }
    let mut g = c.benchmark_group("ablation_llc");
    g.sample_size(10);
    g.bench_function("llc_aware", |b| {
        b.iter(|| {
            let (mut m, a) = asman_cfg();
            m.llc_aware = true;
            run_secs_cfg(m, a)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_delta,
    ablation_learning,
    ablation_ipi,
    ablation_warmup,
    ablation_interval,
    ablation_policies,
    ablation_llc
);
criterion_main!(benches);
