//! Figure 9 bench: NAS benchmark slowdowns under Credit and ASMan.
//!
//! Times the per-benchmark simulation at a 40% online rate (class S) and
//! prints the slowdown pairs once, so `cargo bench` regenerates a
//! class-S rendition of Figure 9(b).

use asman_core::{asman_machine, AsmanConfig};
use asman_hypervisor::{CapMode, CoschedPolicy, Machine, MachineConfig, VmSpec};
use asman_sim::Clock;
use asman_workloads::{BackgroundConfig, BackgroundService, NasBenchmark, NasSpec, ProblemClass};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn run(bench: NasBenchmark, policy: CoschedPolicy, weight: u32) -> f64 {
    let clk = Clock::default();
    let seed = 42;
    let prog = NasSpec::new(bench, ProblemClass::S, 4).build(seed ^ 7);
    let dom0 = BackgroundService::new(BackgroundConfig::default(), 8, seed ^ 0xD0);
    let cfg = MachineConfig {
        policy,
        seed,
        ..MachineConfig::default()
    };
    let specs = vec![
        VmSpec::new("dom0", 8, Box::new(dom0)),
        VmSpec::new("guest", 4, Box::new(prog))
            .weight(weight)
            .cap(CapMode::NonWorkConserving),
    ];
    let mut m = match policy {
        CoschedPolicy::Adaptive => asman_machine(
            AsmanConfig {
                machine: cfg,
                ..AsmanConfig::default()
            },
            specs,
        ),
        _ => Machine::new(cfg, specs),
    };
    m.run_to_completion(clk.secs(600));
    clk.to_secs(m.vm_kernel(1).stats().finished_at.expect("finished"))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_nas_40pct");
    g.sample_size(10);
    for nas in NasBenchmark::ALL {
        let base = run(nas, CoschedPolicy::None, 256);
        let credit = run(nas, CoschedPolicy::None, 64);
        let asman = run(nas, CoschedPolicy::Adaptive, 64);
        eprintln!(
            "fig09 {} @40%: Credit slowdown {:.2}, ASMan {:.2}",
            nas.name(),
            credit / base,
            asman / base
        );
        g.bench_with_input(BenchmarkId::from_parameter(nas.name()), &nas, |b, &n| {
            b.iter(|| run(n, CoschedPolicy::Adaptive, 64))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
