//! Substrate microbenchmarks: event-queue throughput, RNG, and the
//! machine event loop's events-per-second.

use asman_hypervisor::{Machine, MachineConfig, VmSpec};
use asman_sim::{Clock, Cycles, EventQueue, SimRng};
use asman_workloads::{NasBenchmark, NasSpec, ProblemClass};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.schedule(Cycles(rng.next_u64() % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, _, p)) = q.pop() {
                acc = acc.wrapping_add(p);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("next_u64_1m", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_machine_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    // Events per wall-second on a sync-heavy configuration.
    let build = || {
        let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4)
            .repeating()
            .build(7);
        Machine::new(
            MachineConfig::default(),
            vec![VmSpec::new("guest", 4, Box::new(lu))],
        )
    };
    // Report the simulator's event rate once.
    {
        let clk = Clock::default();
        let mut m = build();
        let t0 = std::time::Instant::now();
        m.run_until(clk.secs(5));
        let wall = t0.elapsed().as_secs_f64();
        eprintln!(
            "machine event loop: {:.1}M events in {wall:.2}s wall ({:.1}M events/s, {:.0}x real time)",
            m.events_processed() as f64 / 1e6,
            m.events_processed() as f64 / 1e6 / wall,
            5.0 / wall,
        );
    }
    g.sample_size(10);
    g.bench_function("lu_1s_sim", |b| {
        b.iter(|| {
            let mut m = build();
            m.run_until(Clock::default().secs(1));
            black_box(m.events_processed())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_rng, bench_machine_loop);
criterion_main!(benches);
