//! Property tests for the event-queue pair.
//!
//! The optimized [`EventQueue`] (packed-key 4-ary heap + insertion
//! buffer) and the deliberately naive [`OracleQueue`] (unsorted vector,
//! linear scans) implement the same [`SimQueue`] surface with unique
//! `(time, seq)` keys, so *any* correct implementation must pop the
//! exact same sequence. These properties drive both through arbitrary
//! push/pop/pop-before/reschedule interleavings and demand:
//!
//! * pairwise agreement on every operation's result,
//! * nondecreasing key order on drain (time first, then seq — FIFO
//!   among equal timestamps),
//! * conservation (`scheduled == popped + pending`) via `audit_check`.

use asman_sim::{Cycles, EventQueue, OracleQueue, SimQueue};
use proptest::collection::vec;
use proptest::prelude::*;

/// One scripted queue operation.
#[derive(Clone, Copy, Debug)]
enum QueueOp {
    /// Schedule a fresh payload at this time.
    Push(u64),
    /// Pop the minimum.
    Pop,
    /// Pop the minimum if it fires at or before this deadline.
    PopBefore(u64),
    /// Reschedule: pop the minimum and push its payload back at a new
    /// time (the machine's timer-refresh pattern).
    Reschedule(u64),
}

fn op_strategy(max_t: u64) -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        (0..max_t).prop_map(QueueOp::Push),
        Just(QueueOp::Pop),
        (0..max_t).prop_map(QueueOp::PopBefore),
        (0..max_t).prop_map(QueueOp::Reschedule),
    ]
}

/// Apply one op to a queue; the result is everything observable.
fn apply<Q: SimQueue<u64>>(q: &mut Q, op: QueueOp, fresh: &mut u64) -> Vec<(Cycles, u64, u64)> {
    match op {
        QueueOp::Push(t) => {
            let payload = *fresh;
            *fresh += 1;
            q.schedule(Cycles(t), payload);
            Vec::new()
        }
        QueueOp::Pop => q.pop().into_iter().collect(),
        QueueOp::PopBefore(d) => q.pop_before(Cycles(d)).into_iter().collect(),
        QueueOp::Reschedule(t) => match q.pop() {
            Some(hit) => {
                q.schedule(Cycles(t), hit.2);
                vec![hit]
            }
            None => Vec::new(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The optimized queue and the oracle agree on every observable of
    /// every operation, under arbitrary interleavings.
    #[test]
    fn optimized_and_oracle_agree_pairwise(ops in vec(op_strategy(1_000), 1..250)) {
        let mut fast: EventQueue<u64> = SimQueue::fresh(16);
        let mut slow: OracleQueue<u64> = SimQueue::fresh(16);
        let (mut fresh_a, mut fresh_b) = (0u64, 0u64);
        for (i, &op) in ops.iter().enumerate() {
            let a = apply(&mut fast, op, &mut fresh_a);
            let b = apply(&mut slow, op, &mut fresh_b);
            prop_assert_eq!(a, b, "divergence at op {} ({:?})", i, op);
            prop_assert_eq!(SimQueue::len(&fast), SimQueue::len(&slow));
            prop_assert_eq!(
                SimQueue::peek_time(&fast),
                SimQueue::peek_time(&slow)
            );
            SimQueue::<u64>::audit_check(&fast);
            SimQueue::<u64>::audit_check(&slow);
        }
        // Full drain must agree event by event, then both are empty.
        loop {
            let a = SimQueue::pop(&mut fast);
            let b = SimQueue::pop(&mut slow);
            prop_assert_eq!(a, b, "divergence during drain");
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(
            SimQueue::<u64>::scheduled_total(&fast),
            SimQueue::<u64>::scheduled_total(&slow)
        );
        prop_assert_eq!(
            SimQueue::<u64>::popped_total(&fast),
            SimQueue::<u64>::popped_total(&slow)
        );
    }

    /// Any interleaving drains in nondecreasing `(time, seq)` order:
    /// time-ordered overall, FIFO among equal timestamps scheduled
    /// since the last pop of that timestamp.
    #[test]
    fn drain_order_is_nondecreasing_in_time_then_seq(
        times in vec(0u64..64, 1..200),
        pops in vec(any::<bool>(), 1..200),
    ) {
        let mut q: EventQueue<u64> = SimQueue::fresh(16);
        let mut pops = pops.into_iter();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycles(t), i as u64);
            if pops.next().unwrap_or(false) {
                q.pop();
            }
        }
        let mut last: Option<(Cycles, u64)> = None;
        while let Some((t, seq, _)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(
                    (t, seq) > (lt, lseq),
                    "keys must strictly increase: ({:?},{}) after ({:?},{})",
                    t, seq, lt, lseq
                );
                prop_assert!(t >= lt, "time went backwards");
            }
            last = Some((t, seq));
        }
        prop_assert!(SimQueue::<u64>::is_empty(&q));
    }

    /// `pop_before` never returns an event beyond its deadline, and
    /// never withholds one at or before it.
    #[test]
    fn pop_before_respects_the_deadline(
        times in vec(0u64..100, 1..100),
        deadline in 0u64..100,
    ) {
        let mut q: EventQueue<u64> = SimQueue::fresh(16);
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycles(t), i as u64);
        }
        let eligible = times.iter().filter(|&&t| t <= deadline).count();
        let mut got = 0usize;
        while let Some((t, _, _)) = q.pop_before(Cycles(deadline)) {
            prop_assert!(t.as_u64() <= deadline, "event beyond deadline");
            got += 1;
        }
        prop_assert_eq!(got, eligible, "wrong number of eligible events");
        // What remains must all be beyond the deadline.
        while let Some((t, _, _)) = q.pop() {
            prop_assert!(t.as_u64() > deadline);
        }
    }

    /// Lifetime counters conserve events at every step.
    #[test]
    fn conservation_holds_at_every_step(ops in vec(op_strategy(500), 1..150)) {
        let mut q: EventQueue<u64> = SimQueue::fresh(4);
        let mut fresh = 0u64;
        for &op in &ops {
            apply(&mut q, op, &mut fresh);
            prop_assert_eq!(
                SimQueue::<u64>::scheduled_total(&q),
                SimQueue::<u64>::popped_total(&q) + SimQueue::<u64>::len(&q) as u64
            );
        }
    }
}
