//! Property-based tests for the simulation substrate.

use asman_sim::{Cycles, EventQueue, Log2Histogram, OnlineStats, SimRng};
use proptest::prelude::*;

proptest! {
    /// Popping must yield events sorted by time, FIFO within equal times.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycles(t), i);
        }
        let mut prev: Option<(Cycles, u64)> = None;
        while let Some((t, seq, _)) = q.pop() {
            if let Some((pt, pseq)) = prev {
                prop_assert!(t > pt || (t == pt && seq > pseq),
                    "order violated: ({t:?},{seq}) after ({pt:?},{pseq})");
            }
            prev = Some((t, seq));
        }
        prop_assert!(q.is_empty());
    }

    /// Histogram bucket totals must equal the number of recorded samples,
    /// and the >= 2^k cumulative counts must be monotone non-increasing.
    #[test]
    fn histogram_counts_consistent(values in proptest::collection::vec(0u64..u64::MAX, 0..300)) {
        let mut h = Log2Histogram::new();
        for &v in &values {
            h.record(Cycles(v));
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let zeros = values.iter().filter(|&&v| v == 0).count() as u64;
        let bucketed: u64 = (0..64).map(|b| h.bucket(b)).sum();
        prop_assert_eq!(bucketed + zeros, h.count());
        for k in 1..64u32 {
            prop_assert!(h.count_at_least_pow2(k) <= h.count_at_least_pow2(k - 1));
        }
        // Cross-check one cumulative count against a direct scan.
        let direct = values.iter().filter(|&&v| v >= (1 << 20)).count() as u64;
        prop_assert_eq!(h.count_at_least_pow2(20), direct);
    }

    /// `below(n)` is always < n, for any seed and bound.
    #[test]
    fn rng_below_bound(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut r = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// `range(lo, hi)` stays within its half-open interval.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), lo in 0u64..1_000_000, span in 1u64..1_000_000) {
        let mut r = SimRng::new(seed);
        let hi = lo + span;
        for _ in 0..50 {
            let v = r.range(lo, hi);
            prop_assert!((lo..hi).contains(&v));
        }
    }

    /// Welford accumulation matches the naive two-pass mean/variance.
    #[test]
    fn online_stats_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
    }

    /// Identical seeds produce identical streams; forked children with the
    /// same stream id from identically-seeded parents also agree.
    #[test]
    fn rng_determinism(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        let mut ca = a.fork(stream);
        let mut cb = b.fork(stream);
        for _ in 0..20 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
            prop_assert_eq!(ca.next_u64(), cb.next_u64());
        }
    }

    /// `jitter` never underflows or overflows: for any base and any
    /// finite non-negative fraction — including frac >= 1, where the
    /// naive `base - span` would wrap — the result stays within the
    /// span-clamped window around base.
    #[test]
    fn jitter_respects_bounds(seed in any::<u64>(), base in 0u64..u64::MAX, frac in 0.0f64..8.0) {
        let mut r = SimRng::new(seed);
        let span = ((base as f64) * frac) as u64;
        let lo = base - span.min(base);
        let hi = base.saturating_add(span);
        for _ in 0..20 {
            let v = r.jitter(base, frac);
            prop_assert!(v >= lo && v <= hi, "jitter({base}, {frac}) = {v} outside [{lo}, {hi}]");
        }
    }

    /// `weighted_index` only ever lands on an index whose weight is
    /// finite and strictly positive, no matter how the weight vector is
    /// poisoned with zeros, negatives, NaNs or infinities — as long as
    /// one usable weight exists.
    #[test]
    fn weighted_index_picks_only_usable_weights(
        seed in any::<u64>(),
        mut weights in proptest::collection::vec(
            prop_oneof![
                Just(0.0f64),
                Just(-1.0),
                Just(f64::NAN),
                Just(f64::INFINITY),
                0.001f64..1e6,
            ],
            1..40,
        ),
        anchor in 0.001f64..1e3,
    ) {
        let mut r = SimRng::new(seed);
        // Guarantee at least one usable weight somewhere.
        let slot = (seed % weights.len() as u64) as usize;
        weights[slot] = anchor;
        for _ in 0..20 {
            let i = r.weighted_index(&weights);
            prop_assert!(
                weights[i].is_finite() && weights[i] > 0.0,
                "weighted_index picked unusable weight {} at {i} from {weights:?}",
                weights[i]
            );
        }
    }
}
