//! Deterministic fault-injection plans for the cluster layer.
//!
//! A [`FaultPlan`] schedules host slowdowns, host crashes and migration
//! aborts at cluster epoch boundaries. Two properties make the plans
//! safe to mix into a reproducible simulation:
//!
//! * **Determinism** — a plan is a plain sorted list of events; the
//!   cluster driver consumes it with no further randomness, so a
//!   faulted run is exactly as replayable as a clean one.
//! * **Stream isolation** — randomly generated plans draw from their
//!   own forked RNG stream ([`FaultPlan::generate`]), never from the
//!   workload stream. Arming or disarming faults therefore cannot
//!   perturb a single workload draw: the clean portions of a faulted
//!   run stay bit-identical to the unfaulted baseline.
//!
//! Plans are written in a tiny comma-separated DSL, one token per
//! event:
//!
//! ```text
//! crash@4:h2          host 2 crashes at the epoch-4 boundary
//! slow@1:h1:50        host 1 loses 50% advertised capacity at epoch 1
//! abort@2             the migration attempted at epoch 2 aborts
//! rand:1234           seed-generated plan (whole spec, no commas)
//! ```

use crate::rng::SimRng;
use serde::Serialize;

/// Stream index mixed into [`SimRng::fork`] for fault draws. Any fixed
/// constant works; it only has to differ from the workload streams.
const FAULT_STREAM: u64 = 0xFA01_7001;

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// The host's advertised capacity drops by `derate_pct` percent:
    /// admission control treats it as smaller, and the balancer stops
    /// proposing moves *onto* it. Resident VMs keep running.
    Slow {
        /// Affected host index.
        host: usize,
        /// Capacity reduction in percent, `1..=99`.
        derate_pct: u32,
    },
    /// The host fails permanently: its resident VMs are evacuated and
    /// re-placed, and it accepts no further work.
    Crash {
        /// Affected host index.
        host: usize,
    },
    /// The live migration attempted at this epoch boundary (if any)
    /// aborts mid-copy and is rolled back to the source host.
    Abort,
}

/// One scheduled fault: `kind` fires at the boundary of `epoch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct FaultEvent {
    /// Cluster epoch (0-based) at whose boundary the fault fires.
    pub epoch: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, sorted by epoch.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct FaultPlan {
    /// Events in nondecreasing epoch order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (no faults — the clean baseline).
    pub fn empty() -> FaultPlan {
        FaultPlan { events: Vec::new() }
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parse the explicit DSL: comma-separated `crash@E:hH`,
    /// `slow@E:hH:P` and `abort@E` tokens.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut events = Vec::new();
        for tok in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            events.push(parse_token(tok)?);
        }
        if events.is_empty() {
            return Err(format!("fault plan '{s}' contains no events"));
        }
        let mut plan = FaultPlan { events };
        plan.normalize();
        Ok(plan)
    }

    /// Generate a plan from a seed, drawing only from a forked fault
    /// stream so the workload draws of the surrounding simulation are
    /// untouched. The shape scales with the run: scattered migration
    /// aborts, one mid-run slowdown (two or more hosts) and one
    /// late-run crash (three or more hosts, so two survive).
    pub fn generate(seed: u64, epochs: u64, hosts: usize) -> FaultPlan {
        let mut rng = SimRng::new(seed).fork(FAULT_STREAM);
        let mut events = Vec::new();
        for epoch in 0..epochs {
            if rng.chance(0.25) {
                events.push(FaultEvent {
                    epoch,
                    kind: FaultKind::Abort,
                });
            }
        }
        // Host faults spare host 0 so a consolidation scenario's
        // contended host stays observable under the fault load.
        if hosts >= 2 && epochs >= 2 {
            let host = 1 + rng.index(hosts - 1);
            let derate_pct = rng.range(25, 76) as u32;
            events.push(FaultEvent {
                epoch: epochs / 3,
                kind: FaultKind::Slow { host, derate_pct },
            });
        }
        if hosts >= 3 && epochs >= 3 {
            let host = 1 + rng.index(hosts - 1);
            events.push(FaultEvent {
                epoch: 2 * epochs / 3,
                kind: FaultKind::Crash { host },
            });
        }
        let mut plan = FaultPlan { events };
        plan.normalize();
        plan
    }

    /// Whether a migration attempted at this epoch boundary aborts.
    pub fn aborts_at(&self, epoch: u64) -> bool {
        self.events
            .iter()
            .any(|e| e.epoch == epoch && e.kind == FaultKind::Abort)
    }

    /// Host faults (slowdowns and crashes) firing at this boundary, in
    /// plan order.
    pub fn host_faults_at(&self, epoch: u64) -> impl Iterator<Item = FaultKind> + '_ {
        self.events
            .iter()
            .filter(move |e| e.epoch == epoch && e.kind != FaultKind::Abort)
            .map(|e| e.kind)
    }

    /// Largest host index any event touches (for CLI validation).
    pub fn max_host(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Slow { host, .. } | FaultKind::Crash { host } => Some(host),
                FaultKind::Abort => None,
            })
            .max()
    }

    /// Hosts the plan ever crashes.
    pub fn crashed_hosts(&self) -> Vec<usize> {
        let mut hosts: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Crash { host } => Some(host),
                _ => None,
            })
            .collect();
        hosts.sort_unstable();
        hosts.dedup();
        hosts
    }

    fn normalize(&mut self) {
        // Stable: same-epoch events keep their written order.
        self.events.sort_by_key(|e| e.epoch);
    }
}

/// A fault specification as given on the command line: either an
/// explicit plan or a seed to generate one from. Resolution is
/// deferred so the generated plan can scale with the run's epoch and
/// host counts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum FaultSpec {
    /// A plan written out in the DSL.
    Explicit(FaultPlan),
    /// `rand:SEED` — generate with [`FaultPlan::generate`].
    Random {
        /// Seed for the (forked) fault stream.
        seed: u64,
    },
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::Explicit(FaultPlan::empty())
    }
}

impl FaultSpec {
    /// Parse a `--faults` argument.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        if let Some(seed) = s.strip_prefix("rand:") {
            let seed: u64 = seed
                .parse()
                .map_err(|_| format!("bad fault seed '{seed}' (want rand:SEED)"))?;
            return Ok(FaultSpec::Random { seed });
        }
        FaultPlan::parse(s).map(FaultSpec::Explicit)
    }

    /// Resolve to a concrete plan for a run of the given shape.
    pub fn resolve(&self, epochs: u64, hosts: usize) -> FaultPlan {
        match self {
            FaultSpec::Explicit(plan) => plan.clone(),
            FaultSpec::Random { seed } => FaultPlan::generate(*seed, epochs, hosts),
        }
    }

    /// True when no fault can ever fire.
    pub fn is_empty(&self) -> bool {
        match self {
            FaultSpec::Explicit(plan) => plan.is_empty(),
            FaultSpec::Random { .. } => false,
        }
    }
}

fn parse_token(tok: &str) -> Result<FaultEvent, String> {
    let (kind, rest) = tok
        .split_once('@')
        .ok_or_else(|| format!("bad fault token '{tok}' (want kind@epoch[:args])"))?;
    let mut parts = rest.split(':');
    let epoch: u64 = parts
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| format!("bad epoch in fault token '{tok}'"))?;
    let host_arg = |p: Option<&str>| -> Result<usize, String> {
        let p = p.ok_or_else(|| format!("fault token '{tok}' needs a :hN host argument"))?;
        p.strip_prefix('h')
            .and_then(|h| h.parse().ok())
            .ok_or_else(|| format!("bad host in fault token '{tok}' (want h0, h1, ...)"))
    };
    let ev = match kind {
        "abort" => {
            if parts.next().is_some() {
                return Err(format!("abort takes no arguments, got '{tok}'"));
            }
            FaultEvent {
                epoch,
                kind: FaultKind::Abort,
            }
        }
        "crash" => {
            let host = host_arg(parts.next())?;
            if parts.next().is_some() {
                return Err(format!("crash takes one host argument, got '{tok}'"));
            }
            FaultEvent {
                epoch,
                kind: FaultKind::Crash { host },
            }
        }
        "slow" => {
            let host = host_arg(parts.next())?;
            let pct: u32 = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| format!("bad derate percent in fault token '{tok}'"))?;
            if !(1..=99).contains(&pct) {
                return Err(format!("derate percent must be 1..=99, got {pct} in '{tok}'"));
            }
            if parts.next().is_some() {
                return Err(format!("slow takes host and percent, got '{tok}'"));
            }
            FaultEvent {
                epoch,
                kind: FaultKind::Slow {
                    host,
                    derate_pct: pct,
                },
            }
        }
        _ => {
            return Err(format!(
                "unknown fault kind '{kind}' (known: crash, slow, abort)"
            ))
        }
    };
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsl_round_trip() {
        let plan = FaultPlan::parse("crash@4:h2, slow@1:h1:50 ,abort@2").unwrap();
        assert_eq!(plan.events.len(), 3);
        // Sorted by epoch.
        assert_eq!(
            plan.events[0].kind,
            FaultKind::Slow {
                host: 1,
                derate_pct: 50
            }
        );
        assert!(plan.aborts_at(2));
        assert!(!plan.aborts_at(4));
        assert_eq!(plan.max_host(), Some(2));
        assert_eq!(plan.crashed_hosts(), vec![2]);
        assert_eq!(
            plan.host_faults_at(4).collect::<Vec<_>>(),
            vec![FaultKind::Crash { host: 2 }]
        );
    }

    #[test]
    fn dsl_rejects_malformed_tokens() {
        for bad in [
            "",
            "boom@1",
            "crash@x:h1",
            "crash@1",
            "crash@1:2",
            "crash@1:h1:9",
            "slow@1:h1",
            "slow@1:h1:0",
            "slow@1:h1:100",
            "abort@1:h2",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn spec_parses_random_and_explicit() {
        assert_eq!(
            FaultSpec::parse("rand:77").unwrap(),
            FaultSpec::Random { seed: 77 }
        );
        assert!(FaultSpec::parse("rand:x").is_err());
        let spec = FaultSpec::parse("abort@0").unwrap();
        assert!(!spec.is_empty());
        assert!(FaultSpec::default().is_empty());
    }

    #[test]
    fn generated_plans_are_deterministic_and_isolated() {
        let a = FaultPlan::generate(9, 12, 4);
        let b = FaultPlan::generate(9, 12, 4);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::generate(10, 12, 4);
        assert_ne!(a, c, "different seed must perturb the plan");
        // Host faults spare host 0 and stay in range.
        for e in &a.events {
            match e.kind {
                FaultKind::Slow { host, derate_pct } => {
                    assert!((1..4).contains(&host));
                    assert!((25..=75).contains(&derate_pct));
                }
                FaultKind::Crash { host } => assert!((1..4).contains(&host)),
                FaultKind::Abort => {}
            }
            assert!(e.epoch < 12);
        }
        // Epoch ordering is normalized.
        assert!(a.events.windows(2).all(|w| w[0].epoch <= w[1].epoch));
    }

    #[test]
    fn generated_small_shapes_have_no_host_faults() {
        let plan = FaultPlan::generate(1, 1, 1);
        assert!(plan.max_host().is_none());
    }
}
