//! Incremental FNV-1a hashing for state fingerprints.
//!
//! The checkpoint subsystem needs a cheap, dependency-free way to
//! summarize the *entire* microstate of a simulated machine — event
//! queues, RNG words, guest-kernel thread states, accounting counters —
//! into one `u64` that two runs can compare. [`Fnv`] is the same FNV-1a
//! construction the report layer already uses for artifact digests,
//! exposed as an incremental writer so deeply nested structures can fold
//! themselves field by field without first serializing to text.
//!
//! Fingerprints are *comparison handles*, not serialization: two equal
//! fingerprints mean (up to hash collision) equal state, and any dropped
//! field shows up as a fingerprint mismatch between a restored run and
//! its straight-through twin.

/// Incremental FNV-1a hasher over explicitly framed primitives.
///
/// Every write mixes a fixed-width encoding of the value, so adjacent
/// fields cannot alias (`write_u64(1); write_u64(2)` differs from
/// `write_u64(0x100000002)` framing ambiguities by construction).
#[derive(Clone, Copy, Debug)]
pub struct Fnv {
    h: u64,
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Mix raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Mix a `u64` (little-endian framing).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Mix a `u128` as two `u64` halves.
    pub fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }

    /// Mix an `i64` via its two's-complement bits.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Mix a `usize` widened to `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Mix a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    /// Mix a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    /// Mix an optional `u64`, distinguishing `None` from `Some(0)`.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.write_bool(true);
                self.write_u64(x);
            }
            None => self.write_bool(false),
        }
    }

    /// Mix a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_report_layer_digest_for_the_same_bytes() {
        // The report crate digests serialized JSON with the same
        // constants; byte-for-byte inputs must agree.
        let mut h = Fnv::new();
        h.write_bytes(b"hello");
        let mut reference = 0xcbf2_9ce4_8422_2325u64;
        for b in b"hello" {
            reference ^= *b as u64;
            reference = reference.wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(h.finish(), reference);
    }

    #[test]
    fn framing_distinguishes_adjacent_fields() {
        let mut a = Fnv::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.write_opt_u64(None);
        let mut d = Fnv::new();
        d.write_opt_u64(Some(0));
        assert_ne!(c.finish(), d.finish());
    }
}
