//! Deterministic calendar queue.
//!
//! Simulation correctness (and test reproducibility) requires a total order
//! on events: two events with the same timestamp are popped in the order
//! they were scheduled. The queue therefore keys on `(time, seq)` where
//! `seq` is a monotonically increasing insertion counter.
//!
//! The heap is a hand-rolled 4-ary min-heap over a single packed
//! `u128` key (`time << 64 | seq`). The packed key makes every ordering
//! probe one integer compare, and the wider fan-out halves the tree depth
//! versus a binary heap — the queue sits on the hot path of the event
//! loop, where pop/push cost is a double-digit share of total run time.
//! Because keys are unique, *any* correct min-queue pops in the same
//! order, so the layout is free to change without affecting simulation
//! results.

use crate::time::Cycles;

/// Receipt for a scheduled event: the time it will fire and its unique
/// sequence number. The sequence number can be stored by callers that need
/// to recognise (and logically cancel) a stale event via epoch checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledAt {
    /// Absolute simulation time at which the event fires.
    pub time: Cycles,
    /// Unique, monotonically increasing insertion number.
    pub seq: u64,
}

#[inline(always)]
pub(crate) fn pack(time: Cycles, seq: u64) -> u128 {
    ((time.as_u64() as u128) << 64) | seq as u128
}

/// A deterministic min-priority event queue over an arbitrary payload type.
///
/// ```
/// use asman_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles(10), "b");
/// q.schedule(Cycles(5), "a");
/// q.schedule(Cycles(10), "c");
/// assert_eq!(q.pop().unwrap().2, "a");
/// assert_eq!(q.pop().unwrap().2, "b"); // FIFO among equal timestamps
/// assert_eq!(q.pop().unwrap().2, "c");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<T> {
    /// 4-ary min-heap keys: children of node `i` are `4i + 1 ..= 4i + 4`.
    /// Kept separate from the payloads so ordering probes scan a dense
    /// array of 16-byte keys (four children per cache-line pair) without
    /// dragging payload bytes through the cache.
    keys: Vec<u128>,
    /// Payloads, parallel to `keys`.
    vals: Vec<T>,
    /// One-slot insertion buffer holding the most recently scheduled
    /// event. Handlers usually re-arm the event that just fired (a VCPU
    /// completing a work segment schedules its next one), and that event
    /// is often the global minimum — keeping it out of the heap turns the
    /// push-then-pop round trip into two key compares.
    pending: Option<(u128, T)>,
    next_seq: u64,
    popped: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

const ARITY: usize = 4;

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            keys: Vec::new(),
            vals: Vec::new(),
            pending: None,
            next_seq: 0,
            popped: 0,
        }
    }

    /// An empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            keys: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
            pending: None,
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedule `payload` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: Cycles, payload: T) -> ScheduledAt {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = pack(time, seq);
        // The newest event takes the insertion buffer; whatever held it
        // goes into the heap proper.
        if let Some((k, v)) = self.pending.replace((key, payload)) {
            self.heap_push(k, v);
        }
        ScheduledAt { time, seq }
    }

    fn heap_push(&mut self, key: u128, val: T) {
        self.keys.push(key);
        self.vals.push(val);
        // Sift up: swap with the parent until the new key fits.
        let mut i = self.keys.len() - 1;
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.keys[parent] <= key {
                break;
            }
            self.keys.swap(i, parent);
            self.vals.swap(i, parent);
            i = parent;
        }
    }

    /// Remove and return the earliest event as `(time, seq, payload)`.
    pub fn pop(&mut self) -> Option<(Cycles, u64, T)> {
        let n = self.keys.len();
        // The buffered event pops directly when it beats the heap root
        // (keys are unique, so `<` is a total tie-free order).
        if let Some(&(k, _)) = self.pending.as_ref() {
            if n == 0 || k < self.keys[0] {
                let (key, payload) = self.pending.take().expect("checked");
                self.popped += 1;
                return Some((Cycles((key >> 64) as u64), key as u64, payload));
            }
        }
        if n == 0 {
            return None;
        }
        let key = self.keys.swap_remove(0);
        let payload = self.vals.swap_remove(0);
        // Sift the displaced tail element down: probe on the key array
        // alone, descending into the smallest of up to four children.
        let n = n - 1;
        if n > 1 {
            let tail = self.keys[0];
            let mut i = 0;
            loop {
                let first = i * ARITY + 1;
                if first >= n {
                    break;
                }
                let last = (first + ARITY).min(n);
                let mut min = first;
                let mut min_key = self.keys[first];
                for c in first + 1..last {
                    let k = self.keys[c];
                    if k < min_key {
                        min = c;
                        min_key = k;
                    }
                }
                if tail <= min_key {
                    break;
                }
                self.keys.swap(i, min);
                self.vals.swap(i, min);
                i = min;
            }
        }
        self.popped += 1;
        Some((Cycles((key >> 64) as u64), key as u64, payload))
    }

    /// Remove and return the earliest event, but only if it fires at or
    /// before `deadline`. One fused min-probe instead of a separate
    /// peek-then-pop — the event loop calls this once per event.
    #[inline]
    pub fn pop_before(&mut self, deadline: Cycles) -> Option<(Cycles, u64, T)> {
        let heap = self.keys.first().copied();
        let buf = self.pending.as_ref().map(|&(k, _)| k);
        let min = match (heap, buf) {
            (Some(h), Some(b)) => h.min(b),
            (Some(k), None) | (None, Some(k)) => k,
            (None, None) => return None,
        };
        // All events at `deadline` itself still qualify, so compare the
        // packed key against the largest key with that timestamp.
        if min > pack(deadline, u64::MAX) {
            return None;
        }
        self.pop()
    }

    /// Timestamp of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<Cycles> {
        let heap = self.keys.first().copied();
        let buf = self.pending.as_ref().map(|&(k, _)| k);
        match (heap, buf) {
            (Some(h), Some(b)) => Some(h.min(b)),
            (k, None) | (None, k) => k,
        }
        .map(|k| Cycles((k >> 64) as u64))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.keys.len() + usize::from(self.pending.is_some())
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty() && self.pending.is_none()
    }

    /// Total number of events scheduled over the queue's lifetime.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events popped over the queue's lifetime.
    pub fn popped_total(&self) -> u64 {
        self.popped
    }

    /// Fold the queue's full logical state into a fingerprint: lifetime
    /// counters plus every pending event (including the one in the
    /// insertion buffer) in key order, each payload encoded by `enc`.
    /// Key order — not heap-array order — so the fingerprint depends
    /// only on *what* is pending, never on the layout history that got
    /// it there.
    pub fn fold_state(&self, h: &mut crate::fnv::Fnv, enc: &mut dyn FnMut(&T, &mut crate::fnv::Fnv)) {
        h.write_u64(self.next_seq);
        h.write_u64(self.popped);
        h.write_usize(self.len());
        let mut order: Vec<usize> = (0..self.keys.len()).collect();
        order.sort_unstable_by_key(|&i| self.keys[i]);
        let mut emit = |key: u128, val: &T, h: &mut crate::fnv::Fnv| {
            h.write_u128(key);
            enc(val, h);
        };
        // Merge the insertion buffer into its key-ordered position.
        let buf = self.pending.as_ref();
        let mut buf_done = buf.is_none();
        for i in order {
            if let Some((bk, bv)) = buf {
                if !buf_done && *bk < self.keys[i] {
                    emit(*bk, bv, h);
                    buf_done = true;
                }
            }
            emit(self.keys[i], &self.vals[i], h);
        }
        if !buf_done {
            let (bk, bv) = buf.expect("pending present when not yet emitted");
            emit(*bk, bv, h);
        }
    }

    /// Panic unless the internal heap invariants hold: every parent key
    /// is strictly below its children (keys are unique), the key and
    /// payload arrays stay parallel, and the lifetime counters conserve
    /// events (`scheduled == popped + pending`).
    pub fn audit_check(&self) {
        assert_eq!(
            self.keys.len(),
            self.vals.len(),
            "event queue: key/payload arrays diverged"
        );
        for i in 1..self.keys.len() {
            let parent = (i - 1) / ARITY;
            assert!(
                self.keys[parent] < self.keys[i],
                "event queue: heap property violated at node {i} (parent {parent})"
            );
        }
        assert_eq!(
            self.next_seq,
            self.popped + self.len() as u64,
            "event queue: scheduled != popped + pending"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 5, 25] {
            q.schedule(Cycles(t), t);
        }
        let mut out = Vec::new();
        while let Some((t, _, p)) = q.pop() {
            assert_eq!(t.as_u64(), p);
            out.push(p);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().2, i);
        }
    }

    #[test]
    fn interleaved_schedule_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), 'a');
        q.schedule(Cycles(20), 'b');
        assert_eq!(q.pop().unwrap().2, 'a');
        // An event scheduled "in the past" relative to others still pops
        // strictly by time.
        q.schedule(Cycles(15), 'c');
        assert_eq!(q.pop().unwrap().2, 'c');
        assert_eq!(q.pop().unwrap().2, 'b');
    }

    #[test]
    fn counters_track_lifetime() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(1), ());
        q.schedule(Cycles(2), ());
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.popped_total(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn receipt_reports_seq_and_time() {
        let mut q = EventQueue::new();
        let r0 = q.schedule(Cycles(7), ());
        let r1 = q.schedule(Cycles(7), ());
        assert_eq!(r0.time, Cycles(7));
        assert!(r1.seq > r0.seq);
    }

    /// Randomized agreement with a naive reference model: every pop must
    /// return the minimum (time, seq) among the currently pending events,
    /// whatever the heap layout does internally.
    #[test]
    fn matches_reference_model_under_churn() {
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, u64)> = Vec::new();
        // Deterministic LCG so the test needs no external RNG.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for round in 0..50 {
            for _ in 0..40 {
                let t = rnd() % 1000;
                let at = q.schedule(Cycles(t), t);
                model.push((t, at.seq));
            }
            // Pop a churning prefix each round, everything at the end.
            let k = if round == 49 { usize::MAX } else { 15 };
            for _ in 0..k {
                let Some((t, seq, _)) = q.pop() else { break };
                let min = model.iter().copied().min().expect("model not empty");
                assert_eq!((t.as_u64(), seq), min);
                model.retain(|&e| e != min);
            }
        }
        assert!(model.is_empty());
        assert!(q.is_empty());
    }
}
