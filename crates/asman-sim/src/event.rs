//! Deterministic calendar queue.
//!
//! Simulation correctness (and test reproducibility) requires a total order
//! on events: two events with the same timestamp are popped in the order
//! they were scheduled. The queue therefore keys on `(time, seq)` where
//! `seq` is a monotonically increasing insertion counter.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycles;

/// Receipt for a scheduled event: the time it will fire and its unique
/// sequence number. The sequence number can be stored by callers that need
/// to recognise (and logically cancel) a stale event via epoch checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledAt {
    /// Absolute simulation time at which the event fires.
    pub time: Cycles,
    /// Unique, monotonically increasing insertion number.
    pub seq: u64,
}

struct Entry<T> {
    time: Cycles,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, with the
        // *lower* sequence number winning ties for FIFO semantics.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority event queue over an arbitrary payload type.
///
/// ```
/// use asman_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles(10), "b");
/// q.schedule(Cycles(5), "a");
/// q.schedule(Cycles(10), "c");
/// assert_eq!(q.pop().unwrap().2, "a");
/// assert_eq!(q.pop().unwrap().2, "b"); // FIFO among equal timestamps
/// assert_eq!(q.pop().unwrap().2, "c");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    popped: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// An empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedule `payload` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: Cycles, payload: T) -> ScheduledAt {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        ScheduledAt { time, seq }
    }

    /// Remove and return the earliest event as `(time, seq, payload)`.
    pub fn pop(&mut self) -> Option<(Cycles, u64, T)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            (e.time, e.seq, e.payload)
        })
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events scheduled over the queue's lifetime.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events popped over the queue's lifetime.
    pub fn popped_total(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 5, 25] {
            q.schedule(Cycles(t), t);
        }
        let mut out = Vec::new();
        while let Some((t, _, p)) = q.pop() {
            assert_eq!(t.as_u64(), p);
            out.push(p);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().2, i);
        }
    }

    #[test]
    fn interleaved_schedule_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), 'a');
        q.schedule(Cycles(20), 'b');
        assert_eq!(q.pop().unwrap().2, 'a');
        // An event scheduled "in the past" relative to others still pops
        // strictly by time.
        q.schedule(Cycles(15), 'c');
        assert_eq!(q.pop().unwrap().2, 'c');
        assert_eq!(q.pop().unwrap().2, 'b');
    }

    #[test]
    fn counters_track_lifetime() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(1), ());
        q.schedule(Cycles(2), ());
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.popped_total(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn receipt_reports_seq_and_time() {
        let mut q = EventQueue::new();
        let r0 = q.schedule(Cycles(7), ());
        let r1 = q.schedule(Cycles(7), ());
        assert_eq!(r0.time, Cycles(7));
        assert!(r1.seq > r0.seq);
    }
}
