//! A unified metrics registry shared by every layer of the stack.
//!
//! The hypervisor, the guest kernels and the reporting layer each keep
//! their own ad-hoc counters; [`MetricsRegistry`] gives them one place to
//! register named counters, gauges and quantile histograms so a run can
//! be serialized into a single `metrics.json` artifact. Names are kept in
//! sorted order (`BTreeMap`), so serialization is deterministic.
//!
//! Histograms reuse the P² streaming estimator from [`crate::quantile`]:
//! constant memory per histogram, no sample retention.

use std::collections::BTreeMap;

use serde::{Serialize, Value};

use crate::quantile::P2Quantile;

/// A streaming histogram: count/min/max/mean plus P² estimates of the
/// 50th, 90th and 99th percentiles.
#[derive(Clone, Debug)]
pub struct QuantileHist {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
}

impl Default for QuantileHist {
    fn default() -> Self {
        QuantileHist {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            p50: P2Quantile::new(0.50),
            p90: P2Quantile::new(0.90),
            p99: P2Quantile::new(0.99),
        }
    }
}

impl QuantileHist {
    /// Record one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
        self.p50.observe(x);
        self.p90.observe(x);
        self.p99.observe(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty). Exact, not estimated — a
    /// single absurd sample (e.g. a stale latency stamp consumed by a
    /// reused VM slot) is visible here when every quantile hides it.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the observations (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimated quantile: `q` must be one of 0.5, 0.9, 0.99.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if q == 0.50 {
            self.p50.estimate()
        } else if q == 0.90 {
            self.p90.estimate()
        } else if q == 0.99 {
            self.p99.estimate()
        } else {
            None
        }
    }
}

impl Serialize for QuantileHist {
    fn to_value(&self) -> Value {
        let opt = |v: Option<f64>| v.map(Value::F64).unwrap_or(Value::Null);
        Value::Object(vec![
            ("count".to_string(), Value::U64(self.count)),
            (
                "min".to_string(),
                if self.count > 0 { Value::F64(self.min) } else { Value::Null },
            ),
            (
                "max".to_string(),
                if self.count > 0 { Value::F64(self.max) } else { Value::Null },
            ),
            ("mean".to_string(), opt(self.mean())),
            ("p50".to_string(), opt(self.p50.estimate())),
            ("p90".to_string(), opt(self.p90.estimate())),
            ("p99".to_string(), opt(self.p99.estimate())),
        ])
    }
}

/// Named counters, gauges and quantile histograms for one run.
///
/// Metric names are dotted paths by convention
/// (`"hv.sched.dispatches"`, `"vm1.guest.lock_acquisitions"`); every
/// map is a `BTreeMap`, so iteration — and therefore the serialized
/// artifact — is in sorted name order, independent of registration
/// order.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, QuantileHist>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `by` to the counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into the histogram `name`.
    pub fn observe(&mut self, name: &str, x: f64) {
        self.hists.entry(name.to_string()).or_default().observe(x);
    }

    /// Install a fully-built histogram under `name` (last write wins).
    ///
    /// P² estimators cannot be merged observation-by-observation, so
    /// layers that already own a [`QuantileHist`] (e.g. the hypervisor's
    /// scheduler-latency telemetry) export it wholesale instead of
    /// replaying samples.
    pub fn set_hist(&mut self, name: &str, hist: QuantileHist) {
        self.hists.insert(name.to_string(), hist);
    }

    /// Merge every metric of `other` into `self` under `prefix`.
    ///
    /// Counters accumulate (a name collision adds, matching [`Self::inc`]),
    /// gauges overwrite (last write wins, matching [`Self::gauge`]), and
    /// histograms are cloned wholesale — P² quantile state cannot be
    /// re-merged, so a histogram name collision is also last-write-wins.
    /// Used to fold per-host registries into one cluster-wide dump
    /// (`host0.`, `host1.`, … prefixes keep the namespaces disjoint).
    pub fn merge_prefixed(&mut self, prefix: &str, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            self.inc(&format!("{prefix}{name}"), *value);
        }
        for (name, value) in &other.gauges {
            self.gauge(&format!("{prefix}{name}"), *value);
        }
        for (name, hist) in &other.hists {
            self.set_hist(&format!("{prefix}{name}"), hist.clone());
        }
    }

    /// Current value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// All counters in sorted name order, for re-prefixing one
    /// registry into another (e.g. per-host registries merged into a
    /// cluster-wide dump).
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Current value of a gauge, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name, if registered.
    pub fn hist(&self, name: &str) -> Option<&QuantileHist> {
        self.hists.get(name)
    }

    /// Number of registered metrics across all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Serialize for MetricsRegistry {
    fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::F64(*v)))
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(hists)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.inc("a.b", 2);
        r.inc("a.b", 3);
        r.gauge("g", 1.0);
        r.gauge("g", 2.5);
        assert_eq!(r.counter("a.b"), Some(5));
        assert_eq!(r.gauge_value("g"), Some(2.5));
        assert_eq!(r.counter("missing"), None);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn histogram_tracks_extremes_and_quantiles() {
        let mut r = MetricsRegistry::new();
        for i in 1..=1000 {
            r.observe("h", i as f64);
        }
        let h = r.hist("h").unwrap();
        assert_eq!(h.count(), 1000);
        assert_eq!(h.mean(), Some(500.5));
        let p50 = h.quantile(0.50).unwrap();
        assert!((p50 - 500.0).abs() < 25.0, "p50 ≈ 500, got {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 990.0).abs() < 25.0, "p99 ≈ 990, got {p99}");
        assert_eq!(h.quantile(0.42), None);
    }

    #[test]
    fn serialization_is_sorted_and_complete() {
        let mut r = MetricsRegistry::new();
        r.inc("z.last", 1);
        r.inc("a.first", 2);
        r.observe("h", 3.0);
        let Value::Object(top) = r.to_value() else {
            panic!("registry must serialize to an object");
        };
        assert_eq!(top[0].0, "counters");
        let Value::Object(counters) = &top[0].1 else {
            panic!("counters must be an object");
        };
        let names: Vec<&str> = counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a.first", "z.last"], "sorted regardless of insertion");
        let Value::Object(hists) = &top[2].1 else {
            panic!("histograms must be an object");
        };
        assert_eq!(hists.len(), 1);
    }

    #[test]
    fn merged_registry_serializes_in_sorted_key_order() {
        // Host registries folded in descending host order (the worst
        // case for insertion-ordered maps) must still serialize with
        // every section's keys sorted — the cluster metrics artifact
        // relies on this for byte-identity across worker counts.
        let mut host = MetricsRegistry::new();
        host.inc("sched.dispatches", 1);
        host.gauge("load", 0.5);
        host.observe("lat", 2.0);
        let mut merged = MetricsRegistry::new();
        merged.inc("cluster.migrations", 1);
        for h in [2usize, 0, 1] {
            merged.merge_prefixed(&format!("host{h}."), &host);
        }
        let Value::Object(top) = merged.to_value() else {
            panic!("registry must serialize to an object");
        };
        for (section, value) in &top {
            let Value::Object(entries) = value else {
                panic!("{section} must be an object");
            };
            let names: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            assert_eq!(names, sorted, "{section} keys must serialize sorted");
        }
        let Value::Object(counters) = &top[0].1 else { unreachable!() };
        assert_eq!(
            counters.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec![
                "cluster.migrations",
                "host0.sched.dispatches",
                "host1.sched.dispatches",
                "host2.sched.dispatches"
            ]
        );
    }

    #[test]
    fn quantiles_at_tiny_sample_counts() {
        // n = 0: everything is None.
        let empty = QuantileHist::default();
        for q in [0.50, 0.90, 0.99] {
            assert_eq!(empty.quantile(q), None, "empty hist must estimate nothing");
        }
        assert_eq!(empty.mean(), None);

        // n = 1: every quantile is the single observation.
        let mut one = QuantileHist::default();
        one.observe(7.0);
        for q in [0.50, 0.90, 0.99] {
            assert_eq!(one.quantile(q), Some(7.0), "q={q} of a single sample");
        }

        // n = 2: estimates must stay inside [min, max].
        let mut two = QuantileHist::default();
        two.observe(1.0);
        two.observe(9.0);
        for q in [0.50, 0.90, 0.99] {
            let v = two.quantile(q).unwrap();
            assert!((1.0..=9.0).contains(&v), "q={q} estimate {v} outside [1, 9]");
        }

        // n = 4: still below the 5-marker P² warm-up; estimates must be
        // finite, within range, and monotone across quantiles.
        let mut four = QuantileHist::default();
        for x in [2.0, 4.0, 6.0, 8.0] {
            four.observe(x);
        }
        let (p50, p90, p99) = (
            four.quantile(0.50).unwrap(),
            four.quantile(0.90).unwrap(),
            four.quantile(0.99).unwrap(),
        );
        for v in [p50, p90, p99] {
            assert!(v.is_finite() && (2.0..=8.0).contains(&v), "estimate {v} out of range");
        }
        assert!(p50 <= p90 && p90 <= p99, "quantiles must be monotone: {p50} {p90} {p99}");
    }

    #[test]
    fn merge_prefixed_accumulates_collisions() {
        let mut dst = MetricsRegistry::new();
        dst.inc("host0.hits", 3);
        dst.gauge("host0.temp", 1.0);

        let mut src = MetricsRegistry::new();
        src.inc("hits", 4);
        src.gauge("temp", 9.5);
        src.observe("lat", 2.0);
        src.observe("lat", 6.0);

        dst.merge_prefixed("host0.", &src);
        assert_eq!(dst.counter("host0.hits"), Some(7), "counter collision accumulates");
        assert_eq!(dst.gauge_value("host0.temp"), Some(9.5), "gauge collision overwrites");
        let h = dst.hist("host0.lat").expect("hist cloned under prefix");
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Some(4.0));
        // The source registry is untouched.
        assert_eq!(src.counter("hits"), Some(4));
    }

    #[test]
    fn merge_prefixed_empty_registry_is_a_noop() {
        let mut dst = MetricsRegistry::new();
        dst.inc("kept", 1);
        dst.merge_prefixed("host9.", &MetricsRegistry::new());
        assert_eq!(dst.len(), 1);
        assert_eq!(dst.counter("kept"), Some(1));

        // And merging into an empty registry lands everything prefixed.
        let mut src = MetricsRegistry::new();
        src.inc("c", 2);
        let mut fresh = MetricsRegistry::new();
        fresh.merge_prefixed("hostA.", &src);
        assert_eq!(fresh.counter("hostA.c"), Some(2));
        assert_eq!(fresh.counter("c"), None, "unprefixed name must not leak");
    }

    #[test]
    fn set_hist_installs_wholesale() {
        let mut h = QuantileHist::default();
        h.observe(5.0);
        let mut r = MetricsRegistry::new();
        r.set_hist("lat", h);
        assert_eq!(r.hist("lat").unwrap().count(), 1);
        assert_eq!(r.hist("lat").unwrap().quantile(0.50), Some(5.0));
    }

    #[test]
    fn empty_histogram_serializes_nulls() {
        let h = QuantileHist::default();
        let Value::Object(fields) = h.to_value() else {
            panic!("hist must serialize to an object");
        };
        assert!(fields.iter().any(|(k, v)| k == "min" && *v == Value::Null));
    }
}
