//! A unified metrics registry shared by every layer of the stack.
//!
//! The hypervisor, the guest kernels and the reporting layer each keep
//! their own ad-hoc counters; [`MetricsRegistry`] gives them one place to
//! register named counters, gauges and quantile histograms so a run can
//! be serialized into a single `metrics.json` artifact. Names are kept in
//! sorted order (`BTreeMap`), so serialization is deterministic.
//!
//! Histograms reuse the P² streaming estimator from [`crate::quantile`]:
//! constant memory per histogram, no sample retention.

use std::collections::BTreeMap;

use serde::{Serialize, Value};

use crate::quantile::P2Quantile;

/// A streaming histogram: count/min/max/mean plus P² estimates of the
/// 50th, 90th and 99th percentiles.
#[derive(Clone, Debug)]
pub struct QuantileHist {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
}

impl Default for QuantileHist {
    fn default() -> Self {
        QuantileHist {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            p50: P2Quantile::new(0.50),
            p90: P2Quantile::new(0.90),
            p99: P2Quantile::new(0.99),
        }
    }
}

impl QuantileHist {
    /// Record one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
        self.p50.observe(x);
        self.p90.observe(x);
        self.p99.observe(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimated quantile: `q` must be one of 0.5, 0.9, 0.99.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if q == 0.50 {
            self.p50.estimate()
        } else if q == 0.90 {
            self.p90.estimate()
        } else if q == 0.99 {
            self.p99.estimate()
        } else {
            None
        }
    }
}

impl Serialize for QuantileHist {
    fn to_value(&self) -> Value {
        let opt = |v: Option<f64>| v.map(Value::F64).unwrap_or(Value::Null);
        Value::Object(vec![
            ("count".to_string(), Value::U64(self.count)),
            (
                "min".to_string(),
                if self.count > 0 { Value::F64(self.min) } else { Value::Null },
            ),
            (
                "max".to_string(),
                if self.count > 0 { Value::F64(self.max) } else { Value::Null },
            ),
            ("mean".to_string(), opt(self.mean())),
            ("p50".to_string(), opt(self.p50.estimate())),
            ("p90".to_string(), opt(self.p90.estimate())),
            ("p99".to_string(), opt(self.p99.estimate())),
        ])
    }
}

/// Named counters, gauges and quantile histograms for one run.
///
/// Metric names are dotted paths by convention
/// (`"hv.sched.dispatches"`, `"vm1.guest.lock_acquisitions"`); every
/// map is a `BTreeMap`, so iteration — and therefore the serialized
/// artifact — is in sorted name order, independent of registration
/// order.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, QuantileHist>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `by` to the counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into the histogram `name`.
    pub fn observe(&mut self, name: &str, x: f64) {
        self.hists.entry(name.to_string()).or_default().observe(x);
    }

    /// Current value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// All counters in sorted name order, for re-prefixing one
    /// registry into another (e.g. per-host registries merged into a
    /// cluster-wide dump).
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Current value of a gauge, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name, if registered.
    pub fn hist(&self, name: &str) -> Option<&QuantileHist> {
        self.hists.get(name)
    }

    /// Number of registered metrics across all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Serialize for MetricsRegistry {
    fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::F64(*v)))
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(hists)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.inc("a.b", 2);
        r.inc("a.b", 3);
        r.gauge("g", 1.0);
        r.gauge("g", 2.5);
        assert_eq!(r.counter("a.b"), Some(5));
        assert_eq!(r.gauge_value("g"), Some(2.5));
        assert_eq!(r.counter("missing"), None);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn histogram_tracks_extremes_and_quantiles() {
        let mut r = MetricsRegistry::new();
        for i in 1..=1000 {
            r.observe("h", i as f64);
        }
        let h = r.hist("h").unwrap();
        assert_eq!(h.count(), 1000);
        assert_eq!(h.mean(), Some(500.5));
        let p50 = h.quantile(0.50).unwrap();
        assert!((p50 - 500.0).abs() < 25.0, "p50 ≈ 500, got {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 990.0).abs() < 25.0, "p99 ≈ 990, got {p99}");
        assert_eq!(h.quantile(0.42), None);
    }

    #[test]
    fn serialization_is_sorted_and_complete() {
        let mut r = MetricsRegistry::new();
        r.inc("z.last", 1);
        r.inc("a.first", 2);
        r.observe("h", 3.0);
        let Value::Object(top) = r.to_value() else {
            panic!("registry must serialize to an object");
        };
        assert_eq!(top[0].0, "counters");
        let Value::Object(counters) = &top[0].1 else {
            panic!("counters must be an object");
        };
        let names: Vec<&str> = counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a.first", "z.last"], "sorted regardless of insertion");
        let Value::Object(hists) = &top[2].1 else {
            panic!("histograms must be an object");
        };
        assert_eq!(hists.len(), 1);
    }

    #[test]
    fn empty_histogram_serializes_nulls() {
        let h = QuantileHist::default();
        let Value::Object(fields) = h.to_value() else {
            panic!("hist must serialize to an object");
        };
        assert!(fields.iter().any(|(k, v)| k == "min" && *v == Value::Null));
    }
}
