//! Lock-holder preemption (LHP) episode detection.
//!
//! The paper's Figure 1 phenomenon: a guest thread holding a kernel
//! spinlock is preempted by the hypervisor, and every sibling that spins
//! on the lock burns its entire timeslice without making progress. This
//! module joins the guest-layer lock events with the hypervisor-layer
//! scheduling events from the flight recorder ([`crate::flight`]) and
//! emits one [`LhpEpisode`] per occurrence, quantifying both how long the
//! holder was off-CPU (`preempted_for`) and how many cycles of on-CPU
//! spinning that stole from the waiters (`wasted_spin`).
//!
//! ## Semantics
//!
//! The detector is a single sweep over a time-ordered event stream (as
//! produced by the merged flight-recorder export):
//!
//! * A VCPU is **running** between its `Dispatch` and the next
//!   `Preempt`/`Block` for it; VCPUs are presumed off-CPU until first
//!   dispatched.
//! * A lock's **holder** is set by `LockAcquire` and cleared by
//!   `LockRelease`; its **waiters** are the threads with a `LockContend`
//!   not yet followed by their own `LockAcquire`.
//! * An **episode** opens when a `Preempt` (not a voluntary `Block`)
//!   hits a VCPU whose current thread holds a lock, and closes at that
//!   lock's `LockRelease`. While an episode is open, `preempted_for`
//!   accumulates time the holder spends off-CPU (it may be re-dispatched
//!   and re-preempted several times before releasing), and `wasted_spin`
//!   accumulates time integrated over the waiters whose own VCPU is
//!   on-CPU — a preempted waiter burns no cycles.
//!
//! Episodes are reported in the order they close, which is deterministic
//! for a deterministic event stream; episodes still open at the end of
//! the stream are closed at the final event's timestamp and appended in
//! `(vm, lock)` order.

use std::collections::HashMap;

use serde::Serialize;

use crate::flight::{FlightEv, FlightEvent};
use crate::time::Cycles;

/// One detected lock-holder-preemption episode.
#[derive(Clone, Debug, Serialize)]
pub struct LhpEpisode {
    /// VM the lock belongs to.
    pub vm: u32,
    /// VM-local lock id.
    pub lock: u32,
    /// Global VCPU index the holder was running on when first preempted.
    pub holder_vcpu: u32,
    /// VM-local thread index of the holder.
    pub holder_thread: u32,
    /// Time of the first preemption while holding.
    pub start: Cycles,
    /// Time of the lock release (or end of stream).
    pub end: Cycles,
    /// Cycles the holder spent off-CPU during the episode.
    pub preempted_for: Cycles,
    /// Cycles of on-CPU spinning by waiters during the episode.
    pub wasted_spin: Cycles,
    /// Maximum concurrent waiters observed during the episode.
    pub waiters: u32,
}

/// Aggregate view of a run's LHP episodes.
#[derive(Clone, Debug, Serialize)]
pub struct LhpSummary {
    /// Number of episodes detected.
    pub episodes: u64,
    /// Total holder off-CPU cycles across episodes.
    pub total_preempted: Cycles,
    /// Total wasted waiter spin cycles across episodes.
    pub total_wasted_spin: Cycles,
    /// The worst episodes by wasted spin, descending.
    pub worst: Vec<LhpEpisode>,
}

impl LhpSummary {
    /// Summarize `episodes`, retaining the `keep` worst by wasted spin.
    pub fn from_episodes(episodes: &[LhpEpisode], keep: usize) -> LhpSummary {
        let mut worst: Vec<LhpEpisode> = episodes.to_vec();
        // Stable sort on the (deterministic) close order keeps ties
        // deterministic too.
        worst.sort_by_key(|e| std::cmp::Reverse(e.wasted_spin));
        worst.truncate(keep);
        LhpSummary {
            episodes: episodes.len() as u64,
            total_preempted: episodes.iter().map(|e| e.preempted_for).sum(),
            total_wasted_spin: episodes.iter().map(|e| e.wasted_spin).sum(),
            worst,
        }
    }
}

#[derive(Clone, Debug)]
struct Episode {
    holder_vcpu: u32,
    holder_thread: u32,
    start: Cycles,
    preempted_for: Cycles,
    wasted_spin: Cycles,
    max_waiters: u32,
}

#[derive(Clone, Debug, Default)]
struct LockState {
    /// `(thread, vcpu)` of the current holder.
    holder: Option<(u32, u32)>,
    /// `(thread, vcpu)` of threads spinning on the lock.
    waiters: Vec<(u32, u32)>,
    episode: Option<Episode>,
}

/// Detect LHP episodes in a time-ordered flight-recorder event stream.
///
/// The stream must contain the `Sched` category (for dispatch/preempt
/// edges) and the `Lock` category (for holder/waiter tracking); guest
/// events must already be rebased to global VCPU indices.
pub fn detect_lhp(events: &[FlightEvent]) -> Vec<LhpEpisode> {
    let mut running: HashMap<u32, bool> = HashMap::new();
    let mut locks: HashMap<(u32, u32), LockState> = HashMap::new();
    let mut out = Vec::new();
    let mut last_t = events.first().map(|e| e.t).unwrap_or(Cycles::ZERO);

    for event in events {
        // Advance simulated time: charge the elapsed interval to every
        // open episode. Accumulation is per-episode and additive, so map
        // iteration order does not affect the result.
        let dt = event.t.saturating_sub(last_t);
        if !dt.is_zero() {
            for st in locks.values_mut() {
                if let Some(ep) = st.episode.as_mut() {
                    if !running.get(&ep.holder_vcpu).copied().unwrap_or(false) {
                        ep.preempted_for += dt;
                    }
                    let spinning = st
                        .waiters
                        .iter()
                        .filter(|(_, v)| running.get(v).copied().unwrap_or(false))
                        .count() as u64;
                    ep.wasted_spin += dt * spinning;
                }
            }
            last_t = event.t;
        }

        match event.ev {
            FlightEv::Dispatch { vcpu, .. } => {
                running.insert(vcpu, true);
            }
            FlightEv::Block { vcpu, .. } => {
                running.insert(vcpu, false);
            }
            FlightEv::Preempt { vcpu, .. } => {
                running.insert(vcpu, false);
                // An involuntary preemption of a lock holder opens an
                // episode on every lock that thread holds.
                for st in locks.values_mut() {
                    if let Some((thread, holder_vcpu)) = st.holder {
                        if holder_vcpu == vcpu && st.episode.is_none() {
                            st.episode = Some(Episode {
                                holder_vcpu,
                                holder_thread: thread,
                                start: event.t,
                                preempted_for: Cycles::ZERO,
                                wasted_spin: Cycles::ZERO,
                                max_waiters: st.waiters.len() as u32,
                            });
                        }
                    }
                }
            }
            FlightEv::LockContend { vm, vcpu, thread, lock } => {
                let st = locks.entry((vm, lock)).or_default();
                st.waiters.push((thread, vcpu));
                if let Some(ep) = st.episode.as_mut() {
                    ep.max_waiters = ep.max_waiters.max(st.waiters.len() as u32);
                }
            }
            FlightEv::LockAcquire { vm, vcpu, thread, lock, .. } => {
                let st = locks.entry((vm, lock)).or_default();
                st.waiters.retain(|&(t, _)| t != thread);
                st.holder = Some((thread, vcpu));
            }
            FlightEv::LockRelease { vm, thread, lock, .. } => {
                if let Some(st) = locks.get_mut(&(vm, lock)) {
                    if matches!(st.holder, Some((t, _)) if t == thread) {
                        st.holder = None;
                    }
                    if let Some(ep) = st.episode.take() {
                        out.push(finish(vm, lock, ep, event.t));
                    }
                }
            }
            _ => {}
        }
    }

    // Close episodes left open at end-of-stream, in (vm, lock) order for
    // determinism (map iteration order is arbitrary).
    let mut open: Vec<((u32, u32), Episode)> = locks
        .into_iter()
        .filter_map(|(k, st)| st.episode.map(|ep| (k, ep)))
        .collect();
    open.sort_by_key(|&(k, _)| k);
    for ((vm, lock), ep) in open {
        out.push(finish(vm, lock, ep, last_t));
    }
    #[cfg(feature = "audit")]
    check_episode_invariants(&out);
    out
}

/// Panic unless every episode satisfies the detector's bookkeeping
/// bounds: episodes span forward in time, the holder cannot be off-CPU
/// longer than the episode lasted, and `wasted_spin` — time integrated
/// over concurrently spinning waiters — can never exceed the maximum
/// waiter count times the episode's duration. Run automatically at the
/// end of [`detect_lhp`] under the `audit` feature; the differential
/// harness also calls it explicitly.
pub fn check_episode_invariants(episodes: &[LhpEpisode]) {
    for (i, ep) in episodes.iter().enumerate() {
        assert!(
            ep.start <= ep.end,
            "lhp episode {i}: start {} after end {}",
            ep.start.as_u64(),
            ep.end.as_u64()
        );
        let span = ep.end - ep.start;
        assert!(
            ep.preempted_for <= span,
            "lhp episode {i}: preempted_for {} exceeds span {}",
            ep.preempted_for.as_u64(),
            span.as_u64()
        );
        let bound = span * ep.waiters as u64;
        assert!(
            ep.wasted_spin <= bound,
            "lhp episode {i}: wasted_spin {} exceeds waiters({}) x span({}) = {}",
            ep.wasted_spin.as_u64(),
            ep.waiters,
            span.as_u64(),
            bound.as_u64()
        );
    }
}

fn finish(vm: u32, lock: u32, ep: Episode, end: Cycles) -> LhpEpisode {
    LhpEpisode {
        vm,
        lock,
        holder_vcpu: ep.holder_vcpu,
        holder_thread: ep.holder_thread,
        start: ep.start,
        end,
        preempted_for: ep.preempted_for,
        wasted_spin: ep.wasted_spin,
        waiters: ep.max_waiters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, ev: FlightEv) -> FlightEvent {
        FlightEvent { t: Cycles(t), ev }
    }

    fn dispatch(vcpu: u32) -> FlightEv {
        FlightEv::Dispatch { vcpu, vm: 0, pcpu: 0 }
    }

    fn preempt(vcpu: u32) -> FlightEv {
        FlightEv::Preempt { vcpu, vm: 0, pcpu: 0 }
    }

    fn acquire(vcpu: u32, thread: u32, lock: u32) -> FlightEv {
        FlightEv::LockAcquire { vm: 0, vcpu, thread, lock, wait: 0 }
    }

    fn contend(vcpu: u32, thread: u32, lock: u32) -> FlightEv {
        FlightEv::LockContend { vm: 0, vcpu, thread, lock }
    }

    fn release(vcpu: u32, thread: u32, lock: u32) -> FlightEv {
        FlightEv::LockRelease { vm: 0, vcpu, thread, lock }
    }

    #[test]
    fn single_episode_measures_preemption_and_spin() {
        let events = vec![
            ev(0, dispatch(0)),
            ev(0, dispatch(1)),
            ev(10, acquire(0, 0, 7)),
            ev(20, contend(1, 1, 7)),
            ev(30, preempt(0)), // episode opens
            ev(80, dispatch(0)), // holder back on-CPU after 50 cycles
            ev(100, release(0, 0, 7)), // episode closes
            ev(100, acquire(1, 1, 7)),
            ev(120, release(1, 1, 7)),
        ];
        let eps = detect_lhp(&events);
        assert_eq!(eps.len(), 1, "exactly one episode");
        let e = &eps[0];
        assert_eq!((e.vm, e.lock), (0, 7));
        assert_eq!((e.holder_vcpu, e.holder_thread), (0, 0));
        assert_eq!(e.start, Cycles(30));
        assert_eq!(e.end, Cycles(100));
        assert_eq!(e.preempted_for, Cycles(50));
        // Waiter on VCPU 1 spins on-CPU for the whole 30..100 window.
        assert_eq!(e.wasted_spin, Cycles(70));
        assert_eq!(e.waiters, 1);
    }

    #[test]
    fn preempted_waiters_burn_no_spin() {
        let events = vec![
            ev(0, dispatch(0)),
            ev(0, dispatch(1)),
            ev(10, acquire(0, 0, 3)),
            ev(20, contend(1, 1, 3)),
            ev(30, preempt(0)),
            ev(50, preempt(1)), // waiter also preempted 50..70
            ev(70, dispatch(1)),
            ev(90, dispatch(0)),
            ev(100, release(0, 0, 3)),
        ];
        let eps = detect_lhp(&events);
        assert_eq!(eps.len(), 1);
        let e = &eps[0];
        assert_eq!(e.preempted_for, Cycles(60)); // 30..90
        assert_eq!(e.wasted_spin, Cycles(50)); // (30..50) + (70..100)
    }

    #[test]
    fn voluntary_block_is_not_an_episode() {
        let events = vec![
            ev(0, dispatch(0)),
            ev(10, acquire(0, 0, 1)),
            ev(20, FlightEv::Block { vcpu: 0, vm: 0, pcpu: 0 }),
            ev(40, dispatch(0)),
            ev(50, release(0, 0, 1)),
        ];
        assert!(detect_lhp(&events).is_empty());
    }

    #[test]
    fn preemption_without_held_lock_is_not_an_episode() {
        let events = vec![
            ev(0, dispatch(0)),
            ev(10, acquire(0, 0, 1)),
            ev(20, release(0, 0, 1)),
            ev(30, preempt(0)),
        ];
        assert!(detect_lhp(&events).is_empty());
    }

    #[test]
    fn open_episode_closes_at_end_of_stream() {
        let events = vec![
            ev(0, dispatch(0)),
            ev(10, acquire(0, 0, 2)),
            ev(30, preempt(0)),
            ev(90, dispatch(1)), // advances the sweep clock
        ];
        let eps = detect_lhp(&events);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].end, Cycles(90));
        assert_eq!(eps[0].preempted_for, Cycles(60));
    }

    #[test]
    fn repeated_preemptions_accumulate_into_one_episode() {
        let events = vec![
            ev(0, dispatch(0)),
            ev(10, acquire(0, 0, 5)),
            ev(20, preempt(0)),
            ev(40, dispatch(0)),
            ev(60, preempt(0)),
            ev(70, dispatch(0)),
            ev(80, release(0, 0, 5)),
        ];
        let eps = detect_lhp(&events);
        assert_eq!(eps.len(), 1, "re-preemption extends the same episode");
        assert_eq!(eps[0].preempted_for, Cycles(30)); // (20..40) + (60..70)
        assert_eq!(eps[0].start, Cycles(20));
        assert_eq!(eps[0].end, Cycles(80));
    }

    #[test]
    fn summary_ranks_by_wasted_spin() {
        let mk = |lock, spin| LhpEpisode {
            vm: 0,
            lock,
            holder_vcpu: 0,
            holder_thread: 0,
            start: Cycles::ZERO,
            end: Cycles(1),
            preempted_for: Cycles(1),
            wasted_spin: Cycles(spin),
            waiters: 1,
        };
        let eps = vec![mk(0, 5), mk(1, 50), mk(2, 20)];
        let s = LhpSummary::from_episodes(&eps, 2);
        assert_eq!(s.episodes, 3);
        assert_eq!(s.total_preempted, Cycles(3));
        assert_eq!(s.total_wasted_spin, Cycles(75));
        assert_eq!(s.worst.len(), 2);
        assert_eq!(s.worst[0].lock, 1);
        assert_eq!(s.worst[1].lock, 2);
    }
}
