//! Statistics collectors used by the measurement harness.
//!
//! The paper reports spinlock waiting times bucketed by powers of two CPU
//! cycles (Figures 1(b), 2, 8), run-time means of repeated rounds with a
//! coefficient-of-variation acceptance bound (§5.3), and throughput scores.
//! [`Log2Histogram`] and [`OnlineStats`] implement exactly those reductions.

use serde::{Deserialize, Serialize};

use crate::time::Cycles;

/// Histogram over `log2(value)` with 65 buckets (bucket `i` counts values
/// `v` with `floor(log2 v) == i`; bucket 64 counts zeros separately).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    zeros: u64,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: vec![0; 64],
            zeros: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: Cycles) {
        self.count += 1;
        self.sum += v.as_u64() as u128;
        self.max = self.max.max(v.as_u64());
        match v.log2() {
            Some(b) => self.buckets[b as usize] += 1,
            None => self.zeros += 1,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of recorded values `v >= 2^exp`.
    pub fn count_at_least_pow2(&self, exp: u32) -> u64 {
        self.buckets[exp as usize..].iter().sum()
    }

    /// Number of recorded values with `floor(log2 v) == exp`.
    pub fn bucket(&self, exp: u32) -> u64 {
        self.buckets[exp as usize]
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> Cycles {
        Cycles(self.max)
    }

    /// Fraction of recorded values `>= 2^exp` (0 if empty).
    pub fn frac_at_least_pow2(&self, exp: u32) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.count_at_least_pow2(exp) as f64 / self.count as f64
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Reset all counters.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.zeros = 0;
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }
}

/// Streaming mean/variance via Welford's algorithm, plus min/max.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation σ/μ — the paper requires < 10% over the
    /// first ten rounds of each multi-VM benchmark before averaging.
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest sample (∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Log2Histogram::new();
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            1023,
            1024,
            (1 << 20) - 1,
            1 << 20,
            1 << 25,
        ] {
            h.record(Cycles(v));
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.bucket(0), 1); // 1
        assert_eq!(h.bucket(1), 2); // 2, 3
        assert_eq!(h.bucket(2), 1); // 4
        assert_eq!(h.bucket(9), 1); // 1023
        assert_eq!(h.bucket(10), 1); // 1024
        assert_eq!(h.bucket(19), 1); // 2^20-1
        assert_eq!(h.bucket(20), 1); // 2^20
        assert_eq!(h.bucket(25), 1);
        assert_eq!(h.count_at_least_pow2(20), 2);
        assert_eq!(h.count_at_least_pow2(10), 4);
        assert_eq!(h.max(), Cycles(1 << 25));
    }

    #[test]
    fn histogram_frac_and_mean() {
        let mut h = Log2Histogram::new();
        h.record(Cycles(4));
        h.record(Cycles(8));
        assert!((h.mean() - 6.0).abs() < 1e-12);
        assert!((h.frac_at_least_pow2(3) - 0.5).abs() < 1e-12);
        assert_eq!(Log2Histogram::new().frac_at_least_pow2(3), 0.0);
    }

    #[test]
    fn histogram_merge_and_clear() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(Cycles(10));
        b.record(Cycles(1 << 30));
        b.record(Cycles(0));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.count_at_least_pow2(30), 1);
        a.clear();
        assert_eq!(a.count(), 0);
        assert_eq!(a.max(), Cycles(0));
    }

    #[test]
    fn online_stats_known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!(s.coefficient_of_variation() > 0.0);
    }

    #[test]
    fn online_stats_degenerate_cases() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
        let mut one = OnlineStats::new();
        one.record(3.0);
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.mean(), 3.0);
    }
}
