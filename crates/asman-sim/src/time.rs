//! The simulation clock domain.
//!
//! All simulated time is expressed in **CPU cycles** (`u64`), because that
//! is the unit in which the paper measures spinlock waiting times (e.g. the
//! over-threshold criterion is `2^δ` cycles with `δ = 20`). Conversions to
//! milliseconds/microseconds go through a [`Clock`] describing the CPU
//! frequency; the default matches the paper's 2.33 GHz Xeon X5410.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A duration or instant measured in CPU cycles.
///
/// `Cycles` is used both as an absolute simulation timestamp (cycles since
/// simulation start) and as a duration; the arithmetic provided is the
/// common subset that is meaningful for both. Arithmetic is saturating on
/// subtraction and checked-in-debug on addition, so accounting bugs fail
/// loudly in tests rather than wrapping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero duration / simulation epoch.
    pub const ZERO: Cycles = Cycles(0);
    /// The maximum representable instant (used as an "infinite" horizon).
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// `2^exp` cycles — the paper expresses thresholds and histogram
    /// buckets as powers of two (e.g. the over-threshold bound `2^20`).
    #[inline]
    pub const fn pow2(exp: u32) -> Cycles {
        Cycles(1u64 << exp)
    }

    /// Floor of log₂ of the cycle count; `None` for zero.
    #[inline]
    pub fn log2(self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some(63 - self.0.leading_zeros())
        }
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition: `self + rhs`, clamped at [`Cycles::MAX`].
    /// For cumulative counters on unbounded horizons (soak runs), where
    /// pinning at the ceiling beats the debug-build panic (or silent
    /// release-build wrap) of plain `+`.
    #[inline]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_sub(rhs.0).map(Cycles)
    }

    /// The smaller of two durations/instants.
    #[inline]
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }

    /// The larger of two durations/instants.
    #[inline]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// Is this the zero duration?
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a dimensionless ratio expressed as `num/den`, rounding
    /// to nearest. Used for proportional-share credit mathematics where a
    /// VM receives `weight_i / total_weight` of the interval.
    #[inline]
    pub fn mul_ratio(self, num: u64, den: u64) -> Cycles {
        debug_assert!(den != 0, "ratio denominator must be nonzero");
        let v = (self.0 as u128 * num as u128 + (den as u128) / 2) / den as u128;
        Cycles(v as u64)
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// Panics in debug builds on underflow; prefer
    /// [`Cycles::saturating_sub`] when underflow is expected.
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        debug_assert!(self.0 >= rhs.0, "Cycles underflow: {} - {}", self.0, rhs.0);
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Div<Cycles> for Cycles {
    type Output = u64;
    #[inline]
    fn div(self, rhs: Cycles) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Cycles> for Cycles {
    type Output = Cycles;
    #[inline]
    fn rem(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 % rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

/// CPU clock specification: converts between wall time and [`Cycles`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clock {
    /// Simulated CPU frequency in Hz.
    pub hz: u64,
}

impl Default for Clock {
    /// 2.33 GHz — the Xeon X5410 of the paper's Dell T5400 testbed.
    fn default() -> Self {
        Clock { hz: 2_330_000_000 }
    }
}

impl Clock {
    /// A clock running at `hz` cycles per second.
    pub const fn new(hz: u64) -> Self {
        Clock { hz }
    }

    /// Duration of `ms` milliseconds on this clock.
    #[inline]
    pub const fn ms(&self, ms: u64) -> Cycles {
        Cycles(self.hz / 1_000 * ms)
    }

    /// Duration of `us` microseconds on this clock.
    #[inline]
    pub const fn us(&self, us: u64) -> Cycles {
        Cycles(self.hz / 1_000_000 * us)
    }

    /// Duration of `s` seconds on this clock.
    #[inline]
    pub const fn secs(&self, s: u64) -> Cycles {
        Cycles(self.hz * s)
    }

    /// Convert a cycle count to (fractional) seconds.
    #[inline]
    pub fn to_secs(&self, c: Cycles) -> f64 {
        c.0 as f64 / self.hz as f64
    }

    /// Convert a cycle count to (fractional) milliseconds.
    #[inline]
    pub fn to_ms(&self, c: Cycles) -> f64 {
        c.0 as f64 / (self.hz as f64 / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_matches_shift() {
        assert_eq!(Cycles::pow2(0).as_u64(), 1);
        assert_eq!(Cycles::pow2(20).as_u64(), 1 << 20);
        assert_eq!(Cycles::pow2(63).as_u64(), 1 << 63);
    }

    #[test]
    fn log2_is_floor() {
        assert_eq!(Cycles(0).log2(), None);
        assert_eq!(Cycles(1).log2(), Some(0));
        assert_eq!(Cycles(2).log2(), Some(1));
        assert_eq!(Cycles(3).log2(), Some(1));
        assert_eq!(Cycles((1 << 20) - 1).log2(), Some(19));
        assert_eq!(Cycles(1 << 20).log2(), Some(20));
        assert_eq!(Cycles(u64::MAX).log2(), Some(63));
    }

    #[test]
    fn clock_conversions_roundtrip() {
        let clk = Clock::default();
        assert_eq!(clk.ms(10).as_u64(), 23_300_000);
        assert_eq!(clk.us(4).as_u64(), 9_320);
        assert_eq!(clk.secs(1).as_u64(), 2_330_000_000);
        assert!((clk.to_secs(clk.secs(30)) - 30.0).abs() < 1e-12);
        assert!((clk.to_ms(clk.ms(30)) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn mul_ratio_rounds_to_nearest() {
        assert_eq!(Cycles(10).mul_ratio(1, 3).as_u64(), 3);
        assert_eq!(Cycles(10).mul_ratio(2, 3).as_u64(), 7);
        assert_eq!(Cycles(10).mul_ratio(1, 1).as_u64(), 10);
        // Large values must not overflow u64 intermediate.
        let big = Cycles(u64::MAX / 2);
        assert_eq!(big.mul_ratio(2, 2).as_u64(), big.as_u64());
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Cycles(5).saturating_sub(Cycles(9)), Cycles::ZERO);
        assert_eq!(Cycles(9).saturating_sub(Cycles(5)), Cycles(4));
    }

    #[test]
    fn saturating_add_clamps_at_max() {
        assert_eq!(Cycles(u64::MAX - 3).saturating_add(Cycles(10)), Cycles::MAX);
        assert_eq!(Cycles(7).saturating_add(Cycles(5)), Cycles(12));
    }

    /// The should-overflow-before half of the long-horizon hardening:
    /// plain `+` on a counter at the ceiling blows up in debug builds —
    /// which is exactly why cumulative accumulators must use
    /// [`Cycles::saturating_add`].
    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn plain_add_overflow_panics_in_debug() {
        let _ = Cycles(u64::MAX) + Cycles(1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    #[cfg(debug_assertions)]
    fn sub_underflow_panics_in_debug() {
        let _ = Cycles(1) - Cycles(2);
    }

    #[test]
    fn sum_and_div() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
        assert_eq!(total / 2u64, Cycles(3));
        assert_eq!(total / Cycles(2), 3);
        assert_eq!(total % Cycles(4), Cycles(2));
    }
}
