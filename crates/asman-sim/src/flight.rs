//! The flight recorder: a structured, cross-layer scheduler trace.
//!
//! The paper's entire argument rests on *observing* an interleaving
//! phenomenon — lock-holder preemption and futex-wait inflation under
//! asynchronous VCPU scheduling — which end-of-run aggregates cannot
//! show. [`FlightRecorder`] captures a typed event stream from every
//! layer of the stack (hypervisor scheduling transitions, credit
//! accounting, coscheduling bursts; guest spinlock, futex and barrier
//! activity) into per-category bounded buffers with drop accounting.
//!
//! Design constraints:
//!
//! * **Zero overhead when disabled.** Every record site first tests one
//!   word of per-category enable bits ([`FlightRecorder::wants`], an
//!   inlined load + mask); with the recorder disabled no event payload is
//!   even constructed.
//! * **Bounded.** Each category keeps at most `capacity` events; overflow
//!   is counted per category ([`FlightRecorder::dropped`]) and warned
//!   about once, never silent.
//! * **Deterministic.** Events carry simulated [`Cycles`] timestamps and
//!   are recorded in simulation order; merging streams uses a stable sort
//!   so any export is bit-identical across runs and `--jobs` values.

use serde::{Deserialize, Serialize};

use crate::time::Cycles;
use crate::trace::overflow_warning;

/// Event categories, each independently enableable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum TraceCat {
    /// VCPU↔PCPU transitions: dispatch, preempt, block, wake, steal,
    /// migrate.
    Sched = 0,
    /// Credit-scheduler accounting: per-interval income, park/unpark.
    Credit = 1,
    /// Coscheduling machinery: VCRD transitions, IPI bursts.
    Cosched = 2,
    /// Guest kernel spinlocks: contend, acquire (with waiting time),
    /// release.
    Lock = 3,
    /// Guest futex traffic: blocking waits and wake-ups.
    Futex = 4,
    /// Guest barrier phases: arrivals and releases.
    Barrier = 5,
    /// Cluster-layer fault injection and recovery: host crashes and
    /// derates, migration aborts/retries, evacuations.
    Fault = 6,
}

/// Number of categories (buffer array size).
pub const FLIGHT_CATS: usize = 7;

impl TraceCat {
    /// All categories in declaration order.
    pub const ALL: [TraceCat; FLIGHT_CATS] = [
        TraceCat::Sched,
        TraceCat::Credit,
        TraceCat::Cosched,
        TraceCat::Lock,
        TraceCat::Futex,
        TraceCat::Barrier,
        TraceCat::Fault,
    ];

    /// Short lower-case name (used by `--trace-cats` and the summary).
    pub fn name(self) -> &'static str {
        match self {
            TraceCat::Sched => "sched",
            TraceCat::Credit => "credit",
            TraceCat::Cosched => "cosched",
            TraceCat::Lock => "lock",
            TraceCat::Futex => "futex",
            TraceCat::Barrier => "barrier",
            TraceCat::Fault => "fault",
        }
    }

    /// Parse a category name as produced by [`TraceCat::name`].
    pub fn from_name(s: &str) -> Option<TraceCat> {
        TraceCat::ALL.into_iter().find(|c| c.name() == s)
    }
}

/// A set of enabled trace categories (one bit per [`TraceCat`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatMask(pub u32);

impl CatMask {
    /// No categories.
    pub const NONE: CatMask = CatMask(0);
    /// Every category.
    pub const ALL: CatMask = CatMask((1 << FLIGHT_CATS as u32) - 1);

    /// Mask with a single category.
    pub fn only(cat: TraceCat) -> CatMask {
        CatMask(1 << cat as u32)
    }

    /// This mask with `cat` added.
    #[must_use]
    pub fn with(self, cat: TraceCat) -> CatMask {
        CatMask(self.0 | (1 << cat as u32))
    }

    /// Whether `cat` is enabled.
    #[inline]
    pub fn contains(self, cat: TraceCat) -> bool {
        self.0 & (1 << cat as u32) != 0
    }

    /// Whether no category is enabled.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Parse a comma-separated category list (`"sched,lock,futex"`).
    ///
    /// Strict: returns `None` for an unknown name, an empty name (so
    /// `""`, `"sched,"` and `"a,,b"` are all rejected), or a repeated
    /// category — each of those almost always signals a typo'd
    /// invocation, and silently collapsing it would mask the mistake.
    pub fn parse(list: &str) -> Option<CatMask> {
        let mut m = CatMask::NONE;
        for part in list.split(',').map(str::trim) {
            let cat = TraceCat::from_name(part)?;
            if m.contains(cat) {
                return None;
            }
            m = m.with(cat);
        }
        Some(m)
    }
}

/// `vm` placeholder in guest-recorded events before the hypervisor
/// rebases them (the guest kernel does not know its VM index).
pub const VM_UNPATCHED: u32 = u32::MAX;

/// A typed flight-recorder event. Entity indices are `u32` to keep the
/// payload compact; guest-layer variants are recorded with VM-local VCPU
/// slots and [`VM_UNPATCHED`], then rebased to global indices by
/// [`FlightEv::rebase_guest`] when the hypervisor merges the streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightEv {
    // -------------------------------------------------- hypervisor layer
    /// VCPU given a PCPU (context switch in).
    Dispatch {
        /// Global VCPU index.
        vcpu: u32,
        /// Owning VM.
        vm: u32,
        /// Target PCPU.
        pcpu: u32,
    },
    /// VCPU involuntarily preempted back to a runqueue.
    Preempt {
        /// Global VCPU index.
        vcpu: u32,
        /// Owning VM.
        vm: u32,
        /// PCPU it ran on.
        pcpu: u32,
    },
    /// VCPU blocked (guest idle).
    Block {
        /// Global VCPU index.
        vcpu: u32,
        /// Owning VM.
        vm: u32,
        /// PCPU it ran on.
        pcpu: u32,
    },
    /// VCPU woken (runnable again); `boost` is the Xen BOOST promotion.
    Wake {
        /// Global VCPU index.
        vcpu: u32,
        /// Owning VM.
        vm: u32,
        /// Whether the wake granted BOOST priority.
        boost: bool,
    },
    /// VCPU pulled from a remote runqueue by an idle/priority steal.
    Steal {
        /// Global VCPU index.
        vcpu: u32,
        /// Owning VM.
        vm: u32,
        /// Runqueue it was stolen from.
        from: u32,
        /// PCPU that now runs it.
        to: u32,
    },
    /// VCPU relocated between runqueues by gang placement (Algorithm 3).
    Migrate {
        /// Global VCPU index.
        vcpu: u32,
        /// Owning VM.
        vm: u32,
        /// Source PCPU.
        from: u32,
        /// Destination PCPU.
        to: u32,
    },
    /// One VCPU's share of a 30 ms credit assignment.
    CreditAssign {
        /// Global VCPU index.
        vcpu: u32,
        /// Owning VM.
        vm: u32,
        /// Credit income this interval.
        income: i64,
        /// Credit balance after the assignment.
        credit: i64,
    },
    /// VCPU parked by cap enforcement.
    Park {
        /// Global VCPU index.
        vcpu: u32,
        /// Owning VM.
        vm: u32,
    },
    /// VCPU unparked at an accounting event.
    Unpark {
        /// Global VCPU index.
        vcpu: u32,
        /// Owning VM.
        vm: u32,
    },
    /// Coscheduling IPI burst launched for a VM (Algorithm 4).
    CoschedBurst {
        /// The VM being ganged.
        vm: u32,
        /// Runnable siblings boosted by the burst.
        boosted: u32,
    },
    /// The VMM's view of a VM's VCRD changed.
    VcrdChange {
        /// The VM.
        vm: u32,
        /// New level: `true` = HIGH.
        high: bool,
    },
    // ------------------------------------------------------- guest layer
    /// A thread started busy-waiting on a held kernel spinlock.
    LockContend {
        /// Owning VM ([`VM_UNPATCHED`] until rebased).
        vm: u32,
        /// VCPU (local slot until rebased, then global).
        vcpu: u32,
        /// VM-local thread index.
        thread: u32,
        /// VM-local lock id.
        lock: u32,
    },
    /// A thread acquired a kernel spinlock after `wait` cycles.
    LockAcquire {
        /// Owning VM ([`VM_UNPATCHED`] until rebased).
        vm: u32,
        /// VCPU (local slot until rebased, then global).
        vcpu: u32,
        /// VM-local thread index.
        thread: u32,
        /// VM-local lock id.
        lock: u32,
        /// Waiting time in cycles (uncontended cost if it barged).
        wait: u64,
    },
    /// A thread released the kernel spinlock it held.
    LockRelease {
        /// Owning VM ([`VM_UNPATCHED`] until rebased).
        vm: u32,
        /// VCPU (local slot until rebased, then global).
        vcpu: u32,
        /// VM-local thread index.
        thread: u32,
        /// VM-local lock id.
        lock: u32,
    },
    /// A thread enqueued on a futex and went to sleep.
    FutexBlock {
        /// Owning VM ([`VM_UNPATCHED`] until rebased).
        vm: u32,
        /// VCPU (local slot until rebased, then global).
        vcpu: u32,
        /// VM-local thread index.
        thread: u32,
        /// Futex identifier (barrier id, or `PEER_FUTEX_BIT | producer`).
        futex: u32,
    },
    /// A waker released threads blocked on a futex.
    FutexWake {
        /// Owning VM ([`VM_UNPATCHED`] until rebased).
        vm: u32,
        /// VCPU (local slot until rebased, then global).
        vcpu: u32,
        /// VM-local index of the waking thread.
        thread: u32,
        /// Futex identifier (barrier id, or `PEER_FUTEX_BIT | producer`).
        futex: u32,
        /// Number of threads woken.
        woken: u32,
    },
    /// A thread arrived at a barrier.
    BarrierArrive {
        /// Owning VM ([`VM_UNPATCHED`] until rebased).
        vm: u32,
        /// VCPU (local slot until rebased, then global).
        vcpu: u32,
        /// VM-local thread index.
        thread: u32,
        /// Barrier id.
        barrier: u32,
        /// Arrival count including this thread.
        arrived: u32,
    },
    /// The last arriver released a barrier generation.
    BarrierRelease {
        /// Owning VM ([`VM_UNPATCHED`] until rebased).
        vm: u32,
        /// VCPU (local slot until rebased, then global).
        vcpu: u32,
        /// VM-local thread index of the releaser.
        thread: u32,
        /// Barrier id.
        barrier: u32,
        /// Waiters released (blocked + spinning).
        woken: u32,
    },
    // ----------------------------------------------------- cluster layer
    // Recorded by the cluster driver into the affected host's stream;
    // `vm` here is the *cluster-wide* VM id, not a host-local index.
    /// A fault-plan host crash fired at this epoch boundary.
    HostCrash {
        /// The crashed host.
        host: u32,
    },
    /// A fault-plan capacity derate was applied to a host.
    HostDerate {
        /// The degraded host.
        host: u32,
        /// Advertised capacity reduction in percent.
        pct: u32,
    },
    /// A live migration attempt began: the causal span id is minted
    /// here (attempt 1) or inherited from the chain (retries), and
    /// threads through every copy/commit/abort/retry event so
    /// exporters can reconstruct the prepare→…→commit|abort lifetime.
    MigratePrepare {
        /// Causal span id shared by the whole migration chain.
        span: u32,
        /// Cluster-wide VM id.
        vm: u32,
        /// Source host.
        from: u32,
        /// Destination host.
        to: u32,
        /// Attempt number (1-based; >1 for retries).
        attempt: u32,
    },
    /// The stop-and-copy page transfer of one migration attempt.
    MigrateCopy {
        /// Causal span id shared by the whole migration chain.
        span: u32,
        /// Cluster-wide VM id.
        vm: u32,
        /// Dirty pages copied by this attempt.
        pages: u64,
    },
    /// A live migration committed: the VM restarts on the destination.
    MigrateCommit {
        /// Causal span id shared by the whole migration chain.
        span: u32,
        /// Cluster-wide VM id.
        vm: u32,
        /// Destination host.
        to: u32,
        /// Guest-visible pause injected by the final stop-and-copy,
        /// in cycles.
        pause: u64,
    },
    /// A live migration aborted mid-copy and rolled back to the source.
    MigrateAbort {
        /// Causal span id shared by the whole migration chain.
        span: u32,
        /// Cluster-wide VM id.
        vm: u32,
        /// Attempt number (1-based) that aborted.
        attempt: u32,
    },
    /// An aborted migration was re-attempted after backoff.
    MigrateRetry {
        /// Causal span id shared by the whole migration chain.
        span: u32,
        /// Cluster-wide VM id.
        vm: u32,
        /// Attempt number (1-based) of the retry.
        attempt: u32,
    },
    /// A VM was evacuated off a crashed host and re-placed.
    Evacuate {
        /// Cluster-wide VM id.
        vm: u32,
        /// The crashed source host.
        from: u32,
        /// The host that took the VM in.
        to: u32,
    },
}

/// Tag bit distinguishing pipeline (peer-flag) futexes from barrier
/// futexes in [`FlightEv::FutexBlock`]/[`FlightEv::FutexWake`].
pub const PEER_FUTEX_BIT: u32 = 1 << 31;

impl FlightEv {
    /// The category this event belongs to.
    #[inline]
    pub fn cat(&self) -> TraceCat {
        match self {
            FlightEv::Dispatch { .. }
            | FlightEv::Preempt { .. }
            | FlightEv::Block { .. }
            | FlightEv::Wake { .. }
            | FlightEv::Steal { .. }
            | FlightEv::Migrate { .. } => TraceCat::Sched,
            FlightEv::CreditAssign { .. } | FlightEv::Park { .. } | FlightEv::Unpark { .. } => {
                TraceCat::Credit
            }
            FlightEv::CoschedBurst { .. } | FlightEv::VcrdChange { .. } => TraceCat::Cosched,
            FlightEv::LockContend { .. }
            | FlightEv::LockAcquire { .. }
            | FlightEv::LockRelease { .. } => TraceCat::Lock,
            FlightEv::FutexBlock { .. } | FlightEv::FutexWake { .. } => TraceCat::Futex,
            FlightEv::BarrierArrive { .. } | FlightEv::BarrierRelease { .. } => TraceCat::Barrier,
            FlightEv::HostCrash { .. }
            | FlightEv::HostDerate { .. }
            | FlightEv::MigratePrepare { .. }
            | FlightEv::MigrateCopy { .. }
            | FlightEv::MigrateCommit { .. }
            | FlightEv::MigrateAbort { .. }
            | FlightEv::MigrateRetry { .. }
            | FlightEv::Evacuate { .. } => TraceCat::Fault,
        }
    }

    /// Short event-kind name (stable identifier for exporters).
    pub fn kind(&self) -> &'static str {
        match self {
            FlightEv::Dispatch { .. } => "dispatch",
            FlightEv::Preempt { .. } => "preempt",
            FlightEv::Block { .. } => "block",
            FlightEv::Wake { .. } => "wake",
            FlightEv::Steal { .. } => "steal",
            FlightEv::Migrate { .. } => "migrate",
            FlightEv::CreditAssign { .. } => "credit_assign",
            FlightEv::Park { .. } => "park",
            FlightEv::Unpark { .. } => "unpark",
            FlightEv::CoschedBurst { .. } => "cosched_burst",
            FlightEv::VcrdChange { .. } => "vcrd_change",
            FlightEv::LockContend { .. } => "lock_contend",
            FlightEv::LockAcquire { .. } => "lock_acquire",
            FlightEv::LockRelease { .. } => "lock_release",
            FlightEv::FutexBlock { .. } => "futex_block",
            FlightEv::FutexWake { .. } => "futex_wake",
            FlightEv::BarrierArrive { .. } => "barrier_arrive",
            FlightEv::BarrierRelease { .. } => "barrier_release",
            FlightEv::HostCrash { .. } => "host_crash",
            FlightEv::HostDerate { .. } => "host_derate",
            FlightEv::MigratePrepare { .. } => "migrate_prepare",
            FlightEv::MigrateCopy { .. } => "migrate_copy",
            FlightEv::MigrateCommit { .. } => "migrate_commit",
            FlightEv::MigrateAbort { .. } => "migrate_abort",
            FlightEv::MigrateRetry { .. } => "migrate_retry",
            FlightEv::Evacuate { .. } => "evacuate",
        }
    }

    /// Rewrite a guest-layer event recorded with VM-local indices to
    /// global ones: `vm` becomes `vm_idx` and the VCPU slot is mapped
    /// through `vcpu_map` (slot → global VCPU index). Hypervisor-layer
    /// events are left untouched.
    pub fn rebase_guest(&mut self, vm_idx: u32, vcpu_map: &[u32]) {
        match self {
            FlightEv::LockContend { vm, vcpu, .. }
            | FlightEv::LockAcquire { vm, vcpu, .. }
            | FlightEv::LockRelease { vm, vcpu, .. }
            | FlightEv::FutexBlock { vm, vcpu, .. }
            | FlightEv::FutexWake { vm, vcpu, .. }
            | FlightEv::BarrierArrive { vm, vcpu, .. }
            | FlightEv::BarrierRelease { vm, vcpu, .. } => {
                *vm = vm_idx;
                *vcpu = vcpu_map[*vcpu as usize];
            }
            _ => {}
        }
    }
}

/// A timestamped flight-recorder event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Simulated time of the event.
    pub t: Cycles,
    /// The typed payload.
    pub ev: FlightEv,
}

#[derive(Clone, Debug, Default)]
struct CatBuf {
    events: Vec<FlightEvent>,
    seen: u64,
    /// Events rejected because the buffer was at capacity. Counted
    /// explicitly: deriving drops as `seen - events.len()` silently
    /// re-classifies every *drained* event as dropped, which made drop
    /// counts inflate monotonically across live migrations (each
    /// extraction drains the guest's stream).
    dropped: u64,
    warned: bool,
}

/// Per-category bounded event recorder. See the module docs.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    /// Enabled-category bits (the single word every record site tests),
    /// plus the [`ARMED`] marker bit.
    mask: u32,
    capacity: usize,
    bufs: Vec<CatBuf>,
    /// Label used in the overflow warning (which layer overflowed).
    label: &'static str,
}

/// High bit of `FlightRecorder::mask` marking a recorder as armed.
/// An armed recorder with zero category bits passes the cheap
/// [`FlightRecorder::is_enabled`] guard but fails every per-category
/// [`FlightRecorder::wants`] test — the configuration `repro perf` uses
/// to measure the cost of the tracing machinery itself without
/// capturing anything. Category bits occupy the low [`FLIGHT_CATS`]
/// bits, so the marker can never collide with one.
const ARMED: u32 = 1 << 31;

impl FlightRecorder {
    /// A disabled recorder: records nothing, costs one load + branch per
    /// (guarded) record site.
    pub fn disabled() -> Self {
        FlightRecorder {
            mask: 0,
            capacity: 0,
            bufs: Vec::new(),
            label: "flight",
        }
    }

    /// A recorder capturing the categories in `mask`, at most
    /// `capacity` events per category. The recorder is *armed* even if
    /// `mask` is empty: record sites engage and reject every event,
    /// which is what distinguishes it from [`FlightRecorder::disabled`].
    pub fn new(mask: CatMask, capacity: usize) -> Self {
        FlightRecorder {
            mask: mask.0 | ARMED,
            capacity,
            bufs: vec![CatBuf::default(); FLIGHT_CATS],
            label: "flight",
        }
    }

    /// A recorder labelled for overflow warnings (e.g. `"guest"`).
    pub fn labeled(mask: CatMask, capacity: usize, label: &'static str) -> Self {
        FlightRecorder {
            label,
            ..FlightRecorder::new(mask, capacity)
        }
    }

    /// Whether the recorder is armed (cheapest possible guard). True
    /// even when every category is masked off — per-category rejection
    /// happens in [`FlightRecorder::wants`].
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.mask != 0
    }

    /// Whether `cat` is enabled. Record sites test this before building
    /// an event payload, so a disabled recorder costs one load + branch.
    #[inline]
    pub fn wants(&self, cat: TraceCat) -> bool {
        self.mask & (1 << cat as u32) != 0
    }

    /// The enabled-category mask (without the internal armed marker).
    pub fn mask(&self) -> CatMask {
        CatMask(self.mask & CatMask::ALL.0)
    }

    /// Whether the overflow warning for `cat` has fired. The warning is
    /// emitted at most once per category per drain cycle, however many
    /// events are dropped.
    pub fn warned(&self, cat: TraceCat) -> bool {
        self.bufs.get(cat as usize).is_some_and(|b| b.warned)
    }

    /// Record `ev` at time `t` into its category's buffer. A disabled
    /// category counts and stores nothing.
    #[inline]
    pub fn record(&mut self, t: Cycles, ev: FlightEv) {
        let cat = ev.cat();
        if !self.wants(cat) {
            return;
        }
        self.push(t, cat, ev);
    }

    #[cold]
    fn warn_overflow(&mut self, cat: TraceCat) {
        self.bufs[cat as usize].warned = true;
        overflow_warning(&format!(
            "{} recorder category `{}` reached its capacity of {} events; \
             further events are counted but not retained",
            self.label,
            cat.name(),
            self.capacity
        ));
    }

    fn push(&mut self, t: Cycles, cat: TraceCat, ev: FlightEv) {
        let buf = &mut self.bufs[cat as usize];
        buf.seen += 1;
        if buf.events.len() < self.capacity {
            buf.events.push(FlightEvent { t, ev });
        } else {
            buf.dropped += 1;
            if !buf.warned {
                self.warn_overflow(cat);
            }
        }
    }

    /// Retained events of one category, in record (= simulation) order.
    pub fn events(&self, cat: TraceCat) -> &[FlightEvent] {
        self.bufs
            .get(cat as usize)
            .map(|b| b.events.as_slice())
            .unwrap_or(&[])
    }

    /// Events offered to `cat` while enabled (retained + dropped).
    pub fn seen(&self, cat: TraceCat) -> u64 {
        self.bufs.get(cat as usize).map(|b| b.seen).unwrap_or(0)
    }

    /// Events dropped by `cat` due to the capacity cap. Draining does
    /// not count as dropping: after [`FlightRecorder::drain_events`] the
    /// counter keeps reporting only genuine capacity rejections.
    pub fn dropped(&self, cat: TraceCat) -> u64 {
        self.bufs.get(cat as usize).map(|b| b.dropped).unwrap_or(0)
    }

    /// Total dropped events across categories.
    pub fn total_dropped(&self) -> u64 {
        TraceCat::ALL.iter().map(|&c| self.dropped(c)).sum()
    }

    /// Total retained events across categories.
    pub fn total_retained(&self) -> u64 {
        self.bufs.iter().map(|b| b.events.len() as u64).sum()
    }

    /// Discard retained events and reset drop counters (the mask and
    /// capacity are preserved).
    pub fn clear(&mut self) {
        for b in &mut self.bufs {
            b.events.clear();
            b.seen = 0;
            b.dropped = 0;
            b.warned = false;
        }
    }

    /// Drain every category into one stream, preserving per-category
    /// order. Used by the merge step; categories are visited in
    /// [`TraceCat::ALL`] order so the output is deterministic.
    pub fn drain_events(&mut self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.total_retained() as usize);
        for cat in TraceCat::ALL {
            if let Some(b) = self.bufs.get_mut(cat as usize) {
                out.append(&mut b.events);
            }
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::disabled()
    }
}

/// Merge per-layer event streams into one time-ordered stream.
///
/// Each input stream must already be time-ordered (which per-category
/// recorder buffers are, by construction). The merge is a stable sort by
/// timestamp, so ties break by stream order then in-stream order — fully
/// deterministic for a deterministic simulation.
pub fn merge_streams(streams: Vec<Vec<FlightEvent>>) -> Vec<FlightEvent> {
    let mut all: Vec<FlightEvent> = streams.into_iter().flatten().collect();
    all.sort_by_key(|e| e.t);
    all
}

/// A cross-stream retention budget for multi-host captures.
///
/// Per-category recorder capacities bound each *host*, but a cluster
/// capture holds every host's drained stream at once, so total memory
/// grows linearly with host count. [`StreamBudget::admit`] truncates
/// each stream to whatever budget remains (keeping its time-ordered
/// prefix), counts the drops, and emits the usual warn-once stderr
/// notice on the first truncation. Streams are admitted serially in
/// host order, so the result is deterministic for any `--jobs` count.
#[derive(Clone, Debug)]
pub struct StreamBudget {
    capacity: usize,
    remaining: usize,
    dropped: u64,
    warned: bool,
}

impl StreamBudget {
    /// A budget of `capacity` events across all admitted streams.
    pub fn new(capacity: usize) -> Self {
        StreamBudget {
            capacity,
            remaining: capacity,
            dropped: 0,
            warned: false,
        }
    }

    /// Truncate `events` to the remaining budget, counting the excess
    /// as dropped. The first truncation latches a single warning.
    pub fn admit(&mut self, events: &mut Vec<FlightEvent>) {
        if events.len() > self.remaining {
            self.dropped += (events.len() - self.remaining) as u64;
            events.truncate(self.remaining);
            if !self.warned {
                self.warned = true;
                overflow_warning(&format!(
                    "cluster flight-stream budget of {} events exhausted; \
                     further host events are counted but not retained",
                    self.capacity
                ));
            }
        }
        self.remaining -= events.len();
    }

    /// Events admitted so far.
    pub fn retained(&self) -> usize {
        self.capacity - self.remaining
    }

    /// Events truncated because the budget ran out.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether the once-per-budget truncation warning has fired.
    pub fn warned(&self) -> bool {
        self.warned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatch(vcpu: u32) -> FlightEv {
        FlightEv::Dispatch { vcpu, vm: 0, pcpu: 0 }
    }

    fn acquire(vcpu: u32, wait: u64) -> FlightEv {
        FlightEv::LockAcquire {
            vm: VM_UNPATCHED,
            vcpu,
            thread: vcpu,
            lock: 0,
            wait,
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = FlightRecorder::disabled();
        assert!(!r.is_enabled());
        r.record(Cycles(1), dispatch(0));
        assert_eq!(r.seen(TraceCat::Sched), 0);
        assert_eq!(r.total_retained(), 0);
        assert_eq!(r.total_dropped(), 0);
        assert!(r.events(TraceCat::Sched).is_empty());
    }

    #[test]
    fn mask_filters_categories() {
        let mut r = FlightRecorder::new(CatMask::only(TraceCat::Lock), 8);
        r.record(Cycles(1), dispatch(0)); // sched: filtered
        r.record(Cycles(2), acquire(0, 5)); // lock: kept
        assert!(r.wants(TraceCat::Lock));
        assert!(!r.wants(TraceCat::Sched));
        assert_eq!(r.seen(TraceCat::Sched), 0);
        assert_eq!(r.seen(TraceCat::Lock), 1);
        assert_eq!(r.events(TraceCat::Lock).len(), 1);
    }

    #[test]
    fn capacity_drops_are_counted_per_category() {
        crate::trace::set_overflow_warnings(false);
        let mut r = FlightRecorder::new(CatMask::ALL, 2);
        for i in 0..5 {
            r.record(Cycles(i), dispatch(0));
        }
        r.record(Cycles(9), acquire(0, 1));
        assert_eq!(r.seen(TraceCat::Sched), 5);
        assert_eq!(r.events(TraceCat::Sched).len(), 2);
        assert_eq!(r.dropped(TraceCat::Sched), 3);
        assert_eq!(r.dropped(TraceCat::Lock), 0);
        assert_eq!(r.total_dropped(), 3);
        crate::trace::set_overflow_warnings(true);
    }

    /// Regression: `dropped()` used to be derived as `seen - retained`,
    /// so draining a buffer (which empties `events` but not `seen`)
    /// re-classified every drained event as dropped. Live migration
    /// drains the guest stream at each extraction, so on long churned
    /// runs the drop counters inflated monotonically without a single
    /// genuine capacity rejection.
    #[test]
    fn drain_does_not_count_as_dropping() {
        crate::trace::set_overflow_warnings(false);
        let mut r = FlightRecorder::new(CatMask::ALL, 4);
        r.record(Cycles(1), dispatch(0));
        r.record(Cycles(2), dispatch(1));
        assert_eq!(r.drain_events().len(), 2);
        assert_eq!(r.seen(TraceCat::Sched), 2, "seen stays cumulative");
        assert_eq!(r.dropped(TraceCat::Sched), 0, "drained events were not dropped");
        assert_eq!(r.total_dropped(), 0);
        // Genuine capacity rejections still count after a drain.
        for i in 0..6 {
            r.record(Cycles(10 + i), dispatch(0));
        }
        assert_eq!(r.dropped(TraceCat::Sched), 2);
        assert_eq!(r.drain_events().len(), 4);
        assert_eq!(r.dropped(TraceCat::Sched), 2, "unchanged by the second drain");
        crate::trace::set_overflow_warnings(true);
    }

    #[test]
    fn clear_resets_counts_but_keeps_mask() {
        crate::trace::set_overflow_warnings(false);
        let mut r = FlightRecorder::new(CatMask::ALL, 1);
        r.record(Cycles(1), dispatch(0));
        r.record(Cycles(2), dispatch(0));
        r.clear();
        assert_eq!(r.seen(TraceCat::Sched), 0);
        assert_eq!(r.total_dropped(), 0);
        r.record(Cycles(3), dispatch(1));
        assert_eq!(r.events(TraceCat::Sched).len(), 1);
        crate::trace::set_overflow_warnings(true);
    }

    #[test]
    fn overflow_warns_once_per_category_until_cleared() {
        crate::trace::set_overflow_warnings(false);
        let mut r = FlightRecorder::new(CatMask::ALL, 1);
        assert!(!r.warned(TraceCat::Sched));
        r.record(Cycles(1), dispatch(0));
        assert!(!r.warned(TraceCat::Sched), "no drop yet");
        r.record(Cycles(2), dispatch(0));
        assert!(r.warned(TraceCat::Sched), "first drop latches the warning");
        r.record(Cycles(3), dispatch(0));
        assert_eq!(r.dropped(TraceCat::Sched), 2);
        assert!(r.warned(TraceCat::Sched));
        assert!(!r.warned(TraceCat::Lock), "other categories stay unwarned");
        r.clear();
        assert!(!r.warned(TraceCat::Sched), "clear re-arms the warning");
        assert_eq!(r.total_dropped(), 0);
        crate::trace::set_overflow_warnings(true);
    }

    #[test]
    fn armed_empty_recorder_gates_but_records_nothing() {
        let mut r = FlightRecorder::new(CatMask(0), 0);
        assert!(r.is_enabled(), "armed recorder engages record sites");
        assert!(r.mask().is_empty(), "public mask strips the armed marker");
        for cat in TraceCat::ALL {
            assert!(!r.wants(cat));
        }
        r.record(Cycles(1), dispatch(0));
        r.record(Cycles(2), acquire(0, 3));
        assert_eq!(r.total_retained(), 0);
        assert_eq!(r.total_dropped(), 0);
        assert!(!r.warned(TraceCat::Sched));
    }

    #[test]
    fn rebase_patches_guest_events_only() {
        let mut guest = acquire(1, 7);
        guest.rebase_guest(3, &[10, 11]);
        match guest {
            FlightEv::LockAcquire { vm, vcpu, .. } => {
                assert_eq!(vm, 3);
                assert_eq!(vcpu, 11);
            }
            _ => unreachable!(),
        }
        let mut hv = dispatch(1);
        hv.rebase_guest(3, &[10, 11]);
        match hv {
            FlightEv::Dispatch { vcpu, vm, .. } => {
                assert_eq!(vcpu, 1, "hypervisor events keep global ids");
                assert_eq!(vm, 0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn merge_is_stable_by_timestamp() {
        let a = vec![
            FlightEvent { t: Cycles(1), ev: dispatch(0) },
            FlightEvent { t: Cycles(5), ev: dispatch(1) },
        ];
        let b = vec![
            FlightEvent { t: Cycles(1), ev: acquire(0, 2) },
            FlightEvent { t: Cycles(3), ev: acquire(1, 2) },
        ];
        let merged = merge_streams(vec![a, b]);
        let ts: Vec<u64> = merged.iter().map(|e| e.t.as_u64()).collect();
        assert_eq!(ts, vec![1, 1, 3, 5]);
        // Tie at t=1: stream order (a before b) is preserved.
        assert!(matches!(merged[0].ev, FlightEv::Dispatch { .. }));
        assert!(matches!(merged[1].ev, FlightEv::LockAcquire { .. }));
    }

    #[test]
    fn cat_names_roundtrip() {
        for cat in TraceCat::ALL {
            assert_eq!(TraceCat::from_name(cat.name()), Some(cat));
        }
        assert_eq!(TraceCat::from_name("bogus"), None);
        let m = CatMask::parse("sched, lock,futex").unwrap();
        assert!(m.contains(TraceCat::Sched));
        assert!(m.contains(TraceCat::Lock));
        assert!(m.contains(TraceCat::Futex));
        assert!(!m.contains(TraceCat::Credit));
        assert!(CatMask::parse("sched,bogus").is_none());
    }

    #[test]
    fn cat_mask_parse_rejects_empty_duplicate_unknown() {
        // Empty lists and empty names are rejected, not collapsed.
        assert_eq!(CatMask::parse(""), None);
        assert_eq!(CatMask::parse("  "), None);
        assert_eq!(CatMask::parse("sched,"), None);
        assert_eq!(CatMask::parse("sched,,lock"), None);
        // Duplicates signal a typo'd invocation.
        assert_eq!(CatMask::parse("sched,sched"), None);
        assert_eq!(CatMask::parse("lock, futex, lock"), None);
        // Unknown names keep failing as before.
        assert_eq!(CatMask::parse("nope"), None);
        // A valid single name still parses.
        assert_eq!(CatMask::parse("fault"), Some(CatMask::only(TraceCat::Fault)));
    }

    #[test]
    fn stream_budget_truncates_and_warns_exactly_once() {
        crate::trace::set_overflow_warnings(false);
        let mk = |n: u64| -> Vec<FlightEvent> {
            (0..n).map(|i| FlightEvent { t: Cycles(i), ev: dispatch(0) }).collect()
        };
        let mut budget = StreamBudget::new(5);
        assert!(!budget.warned());

        let mut a = mk(3);
        budget.admit(&mut a);
        assert_eq!(a.len(), 3, "within budget: untouched");
        assert!(!budget.warned(), "no truncation yet");

        let mut b = mk(4);
        budget.admit(&mut b);
        assert_eq!(b.len(), 2, "truncated to the remaining budget");
        assert_eq!(budget.dropped(), 2);
        assert!(budget.warned(), "first truncation latches the warning");

        // Further overflowing admits keep counting but the latch stays
        // set — the warning fires exactly once per budget.
        let mut c = mk(7);
        budget.admit(&mut c);
        assert!(c.is_empty(), "budget exhausted: everything dropped");
        assert_eq!(budget.dropped(), 9);
        assert_eq!(budget.retained(), 5);
        assert!(budget.warned());
        crate::trace::set_overflow_warnings(true);
    }
}
