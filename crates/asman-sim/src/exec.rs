//! Parallel sweep executor.
//!
//! The repository's one concurrency primitive: a bounded pool of scoped
//! worker threads that runs independent *cells* and returns their
//! results in deterministic cell order. Two layers build on it:
//!
//! * **Across simulations** — every figure of the reproduction is a
//!   sweep of (scheduler, rate, workload, round) cells, each building
//!   its own deterministic machine from a seed and running it to
//!   completion (`asman-report`'s figure harness).
//! * **Within a cluster epoch** — the cluster driver advances its N
//!   independent host machines to the next epoch boundary as N cells,
//!   then runs the balancer serially at the barrier
//!   (`asman-cluster::Cluster::run_epoch`).
//!
//! Cells share no state, so determinism is preserved because
//! parallelism never reaches inside a simulation, and results are
//! always collected in cell order.
//!
//! [`SweepRunner::run`] with `jobs == 1` degenerates to a plain in-order
//! loop on the calling thread, which is bit-identical to the historical
//! sequential behavior; any other job count produces bit-identical output
//! by construction (slot `i` always holds cell `i`'s result).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Best-effort text of a panic payload (`panic!` with a string covers
/// every cell in practice; anything else degrades to a placeholder).
fn payload_msg(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Executes a sweep's cells across a bounded pool of scoped threads,
/// returning results in deterministic cell order.
#[derive(Clone, Copy, Debug)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// Runner with an explicit worker count; `0` selects
    /// [`std::thread::available_parallelism`].
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            jobs
        };
        SweepRunner { jobs }
    }

    /// Runner sized to the host's available parallelism.
    pub fn auto() -> Self {
        SweepRunner::new(0)
    }

    /// The effective worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run every cell and return their results in cell order.
    ///
    /// With one job (or at most one cell) this is an ordinary sequential
    /// loop on the calling thread. Otherwise workers claim cells through
    /// an atomic cursor — claim order is racy, but each result lands in
    /// its own cell's slot, so the returned `Vec` is independent of
    /// thread scheduling.
    ///
    /// A panicking cell no longer unwinds through the scoped pool
    /// (which used to leave sibling slots half-initialized and poison
    /// the result mutexes): every cell runs under `catch_unwind`, all
    /// workers are joined normally, and then the panic of the
    /// *lowest-indexed* failing cell is re-raised with the cell index
    /// in its message.
    pub fn run<T, F>(&self, cells: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = cells.len();
        if self.jobs <= 1 || n <= 1 {
            return cells
                .into_iter()
                .enumerate()
                .map(|(i, cell)| match catch_unwind(AssertUnwindSafe(cell)) {
                    Ok(out) => out,
                    Err(p) => panic!("sweep cell {i} panicked: {}", payload_msg(p.as_ref())),
                })
                .collect();
        }
        let slots: Vec<Mutex<Option<F>>> =
            cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let panicked: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = slots[i]
                        .lock()
                        .expect("cell slot poisoned")
                        .take()
                        .expect("cell claimed twice");
                    match catch_unwind(AssertUnwindSafe(cell)) {
                        Ok(out) => {
                            *results[i].lock().expect("result slot poisoned") = Some(out);
                        }
                        Err(p) => {
                            let mut first = panicked.lock().expect("panic slot poisoned");
                            if first.as_ref().is_none_or(|&(j, _)| i < j) {
                                *first = Some((i, p));
                            }
                        }
                    }
                });
            }
        });
        if let Some((i, p)) = panicked.into_inner().expect("panic slot poisoned") {
            panic!("sweep cell {i} panicked: {}", payload_msg(p.as_ref()));
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker panicked before storing result")
            })
            .collect()
    }

    /// Apply `f` to every item on the worker pool, preserving item order.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let f = &f;
        self.run(items.into_iter().map(|item| move || f(item)).collect())
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let inputs: Vec<u64> = (0..37).collect();
        let seq = SweepRunner::new(1).map(inputs.clone(), |x| x * x + 1);
        let par = SweepRunner::new(8).map(inputs, |x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn order_is_deterministic_under_adversarial_latencies() {
        // Early cells sleep longest, so under any work-stealing order the
        // *completion* order is adversarial (reversed); the result order
        // must still be cell order.
        let n = 24usize;
        for jobs in [2usize, 3, 8] {
            let cells: Vec<_> = (0..n)
                .map(|i| {
                    move || {
                        std::thread::sleep(std::time::Duration::from_millis(
                            (n - i) as u64 % 7,
                        ));
                        i
                    }
                })
                .collect();
            let out = SweepRunner::new(jobs).run(cells);
            assert_eq!(out, (0..n).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert!(SweepRunner::new(0).jobs() >= 1);
        assert!(SweepRunner::auto().jobs() >= 1);
    }

    #[test]
    fn empty_and_single_cell_sweeps() {
        let empty: Vec<fn() -> u8> = Vec::new();
        assert!(SweepRunner::new(4).run(empty).is_empty());
        assert_eq!(SweepRunner::new(4).run(vec![|| 9u8]), vec![9]);
    }

    /// Regression: a panicking cell used to unwind straight through the
    /// scoped pool, poisoning sibling mutexes and surfacing as a
    /// misleading "result slot poisoned". Now every worker joins
    /// normally and the first failing cell's panic is re-raised with
    /// its index.
    #[test]
    fn cell_panic_reports_lowest_failing_index() {
        for jobs in [1usize, 4] {
            let cells: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
                .map(|i| {
                    Box::new(move || {
                        if i == 3 || i == 7 {
                            panic!("boom in {i}");
                        }
                        i
                    }) as Box<dyn FnOnce() -> usize + Send>
                })
                .collect();
            let err = catch_unwind(AssertUnwindSafe(|| SweepRunner::new(jobs).run(cells)))
                .expect_err("sweep must propagate the cell panic");
            let msg = payload_msg(err.as_ref()).to_string();
            assert!(
                msg.contains("sweep cell 3 panicked") && msg.contains("boom in 3"),
                "jobs={jobs}: unexpected message: {msg}"
            );
        }
    }
}
