//! Naive oracle structures for differential auditing.
//!
//! The optimized engine earns its throughput with caches and clever
//! layouts: a packed-key 4-ary heap with an insertion buffer, a
//! runqueue-position index, idle-PCPU bitmasks, reused scratch buffers.
//! Every one of those is a place where bookkeeping can silently drift
//! from the Credit/ASMan semantics the paper's figures depend on. The
//! audit subsystem re-implements the same surface with the dumbest
//! correct data structures — linear scans, no caches, nothing
//! incremental — so a differential harness can run both side by side
//! and diff every observable.
//!
//! [`SimQueue`] abstracts the event-queue surface the machine needs;
//! [`EventQueue`] is the production implementation and [`OracleQueue`]
//! the oracle. Keys are unique `(time, seq)` pairs, so *any* correct
//! min-queue pops in the same order — bit-equal event streams between
//! the two implementations are therefore a meaningful correctness
//! signal, not a coincidence of layout.

use crate::event::{pack, ScheduledAt};
use crate::fnv::Fnv;
use crate::time::Cycles;
use crate::EventQueue;

/// The event-queue surface the simulation engine schedules through.
///
/// Implemented by the optimized [`EventQueue`] and by the deliberately
/// naive [`OracleQueue`]. The engine is generic over this trait; the
/// associated [`NAIVE`](SimQueue::NAIVE) constant additionally tells it
/// to recompute derived scheduler state (runqueue positions, idle
/// masks) from scratch instead of trusting its incremental caches.
pub trait SimQueue<T> {
    /// `true` for oracle implementations: the machine swaps cached-index
    /// lookups for from-scratch linear scans when this is set.
    const NAIVE: bool;

    /// An empty queue with room for roughly `cap` pending events.
    fn fresh(cap: usize) -> Self;

    /// Schedule `payload` to fire at absolute time `time`.
    fn schedule(&mut self, time: Cycles, payload: T) -> ScheduledAt;

    /// Remove and return the earliest event as `(time, seq, payload)`.
    fn pop(&mut self) -> Option<(Cycles, u64, T)>;

    /// Remove and return the earliest event if it fires at or before
    /// `deadline`.
    fn pop_before(&mut self, deadline: Cycles) -> Option<(Cycles, u64, T)>;

    /// Timestamp of the earliest pending event.
    fn peek_time(&self) -> Option<Cycles>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events scheduled over the queue's lifetime.
    fn scheduled_total(&self) -> u64;

    /// Total number of events popped over the queue's lifetime.
    fn popped_total(&self) -> u64;

    /// Panic if the implementation's internal invariants are violated.
    fn audit_check(&self) {}

    /// Fold the queue's full logical state into a fingerprint: lifetime
    /// counters plus every pending `(key, payload)` pair in key order,
    /// payloads encoded by `enc`. Key order makes the fingerprint a
    /// property of the pending *set*, so the optimized and oracle queues
    /// (and any two layout histories) agree whenever their contents do.
    fn fold_state(&self, h: &mut Fnv, enc: &mut dyn FnMut(&T, &mut Fnv));
}

impl<T> SimQueue<T> for EventQueue<T> {
    const NAIVE: bool = false;

    fn fresh(cap: usize) -> Self {
        EventQueue::with_capacity(cap)
    }

    fn schedule(&mut self, time: Cycles, payload: T) -> ScheduledAt {
        EventQueue::schedule(self, time, payload)
    }

    fn pop(&mut self) -> Option<(Cycles, u64, T)> {
        EventQueue::pop(self)
    }

    fn pop_before(&mut self, deadline: Cycles) -> Option<(Cycles, u64, T)> {
        EventQueue::pop_before(self, deadline)
    }

    fn peek_time(&self) -> Option<Cycles> {
        EventQueue::peek_time(self)
    }

    fn len(&self) -> usize {
        EventQueue::len(self)
    }

    fn is_empty(&self) -> bool {
        EventQueue::is_empty(self)
    }

    fn scheduled_total(&self) -> u64 {
        EventQueue::scheduled_total(self)
    }

    fn popped_total(&self) -> u64 {
        EventQueue::popped_total(self)
    }

    fn audit_check(&self) {
        EventQueue::audit_check(self)
    }

    fn fold_state(&self, h: &mut Fnv, enc: &mut dyn FnMut(&T, &mut Fnv)) {
        EventQueue::fold_state(self, h, enc)
    }
}

/// The oracle event queue: an unsorted vector scanned linearly on every
/// pop. No heap, no insertion buffer, no incremental anything — `pop`
/// is O(n) and proud of it. Because `(time, seq)` keys are unique, it
/// pops in exactly the order the optimized queue must.
pub struct OracleQueue<T> {
    /// Pending events as packed `(time << 64 | seq)` keys, in insertion
    /// order. Deliberately unsorted.
    entries: Vec<(u128, T)>,
    next_seq: u64,
    popped: u64,
}

impl<T> Default for OracleQueue<T> {
    fn default() -> Self {
        OracleQueue {
            entries: Vec::new(),
            next_seq: 0,
            popped: 0,
        }
    }
}

impl<T> OracleQueue<T> {
    /// Index of the entry holding the minimum key, by full scan.
    fn min_index(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (k, _))| *k)
            .map(|(i, _)| i)
    }

    fn take(&mut self, i: usize) -> (Cycles, u64, T) {
        // `remove` (not `swap_remove`): keeps insertion order, which is
        // the most literal reading of "no clever layout tricks".
        let (key, payload) = self.entries.remove(i);
        self.popped += 1;
        (Cycles((key >> 64) as u64), key as u64, payload)
    }
}

impl<T> SimQueue<T> for OracleQueue<T> {
    const NAIVE: bool = true;

    fn fresh(_cap: usize) -> Self {
        // The oracle does not even pre-allocate.
        OracleQueue::default()
    }

    fn schedule(&mut self, time: Cycles, payload: T) -> ScheduledAt {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((pack(time, seq), payload));
        ScheduledAt { time, seq }
    }

    fn pop(&mut self) -> Option<(Cycles, u64, T)> {
        let i = self.min_index()?;
        Some(self.take(i))
    }

    fn pop_before(&mut self, deadline: Cycles) -> Option<(Cycles, u64, T)> {
        let i = self.min_index()?;
        if self.entries[i].0 > pack(deadline, u64::MAX) {
            return None;
        }
        Some(self.take(i))
    }

    fn peek_time(&self) -> Option<Cycles> {
        let i = self.min_index()?;
        Some(Cycles((self.entries[i].0 >> 64) as u64))
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    fn popped_total(&self) -> u64 {
        self.popped
    }

    fn audit_check(&self) {
        for (i, (k, _)) in self.entries.iter().enumerate() {
            for (j, (k2, _)) in self.entries.iter().enumerate().skip(i + 1) {
                assert_ne!(k, k2, "oracle queue: duplicate key at {i} and {j}");
            }
        }
        assert_eq!(
            self.next_seq,
            self.popped + self.entries.len() as u64,
            "oracle queue: scheduled != popped + pending"
        );
    }

    fn fold_state(&self, h: &mut Fnv, enc: &mut dyn FnMut(&T, &mut Fnv)) {
        h.write_u64(self.next_seq);
        h.write_u64(self.popped);
        h.write_usize(self.entries.len());
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_unstable_by_key(|&i| self.entries[i].0);
        for i in order {
            let (key, val) = &self.entries[i];
            h.write_u128(*key);
            enc(val, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG so the tests need no external RNG.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn oracle_pops_in_time_then_fifo_order() {
        let mut q: OracleQueue<u64> = OracleQueue::default();
        for &t in &[30u64, 10, 20, 10, 5] {
            SimQueue::schedule(&mut q, Cycles(t), t);
        }
        let mut seen = Vec::new();
        while let Some((t, _, p)) = SimQueue::pop(&mut q) {
            assert_eq!(t.as_u64(), p);
            seen.push(p);
        }
        assert_eq!(seen, vec![5, 10, 10, 20, 30]);
        q.audit_check();
    }

    /// The whole point of the oracle: under arbitrary churn it must pop
    /// the exact `(time, seq, payload)` sequence the optimized queue
    /// pops, including `pop_before` deadline handling.
    #[test]
    fn oracle_agrees_with_optimized_queue_under_churn() {
        let mut fast: EventQueue<u64> = SimQueue::fresh(64);
        let mut slow: OracleQueue<u64> = SimQueue::fresh(64);
        let mut state = 0x1234_5678_9abc_def0u64;
        for round in 0..60u64 {
            for _ in 0..25 {
                let t = lcg(&mut state) % 500;
                let a = SimQueue::schedule(&mut fast, Cycles(t), t);
                let b = SimQueue::schedule(&mut slow, Cycles(t), t);
                assert_eq!(a, b);
            }
            let deadline = Cycles(lcg(&mut state) % 500);
            loop {
                let a = fast.pop_before(deadline);
                let b = SimQueue::pop_before(&mut slow, deadline);
                assert_eq!(a, b, "divergence in round {round}");
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(SimQueue::len(&fast), SimQueue::len(&slow));
            assert_eq!(fast.peek_time(), SimQueue::peek_time(&slow));
            fast.audit_check();
            slow.audit_check();
        }
        // Drain to the end: both must agree on every remaining event.
        loop {
            let a = fast.pop();
            let b = SimQueue::pop(&mut slow);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(fast.scheduled_total(), SimQueue::scheduled_total(&slow));
        assert_eq!(fast.popped_total(), SimQueue::popped_total(&slow));
    }

    /// Both queue implementations must fold to the same fingerprint
    /// whenever their pending contents agree — the fingerprint is a
    /// property of the event set, not the layout.
    #[test]
    fn fold_state_agrees_across_implementations() {
        let mut fast: EventQueue<u64> = SimQueue::fresh(16);
        let mut slow: OracleQueue<u64> = SimQueue::fresh(16);
        let mut state = 0xfeed_beefu64;
        let digest_fast = |q: &EventQueue<u64>| {
            let mut h = Fnv::new();
            q.fold_state(&mut h, &mut |v, h| h.write_u64(*v));
            h.finish()
        };
        let digest_slow = |q: &OracleQueue<u64>| {
            let mut h = Fnv::new();
            SimQueue::fold_state(q, &mut h, &mut |v, h| h.write_u64(*v));
            h.finish()
        };
        for _ in 0..40 {
            let t = lcg(&mut state) % 100;
            SimQueue::schedule(&mut fast, Cycles(t), t);
            SimQueue::schedule(&mut slow, Cycles(t), t);
            if lcg(&mut state).is_multiple_of(3) {
                assert_eq!(fast.pop(), SimQueue::pop(&mut slow));
            }
            assert_eq!(digest_fast(&fast), digest_slow(&slow));
        }
    }

    #[test]
    fn optimized_queue_audit_check_passes_under_churn() {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut state = 7u64;
        for _ in 0..200 {
            q.schedule(Cycles(lcg(&mut state) % 100), 0);
            if lcg(&mut state).is_multiple_of(3) {
                q.pop();
            }
            q.audit_check();
        }
    }
}
