//! Streaming quantile estimation (the P² algorithm).
//!
//! Jain & Chlamtac's P² estimator maintains a target quantile of a
//! stream in O(1) space — used for wait-time percentiles where keeping
//! every sample (as [`crate::TraceBuffer`] does for the scatter figures)
//! would be wasteful.

use serde::{Deserialize, Serialize};

/// Streaming estimator of a single quantile `p` via the P² algorithm.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates of the quantile curve).
    q: [f64; 5],
    /// Marker positions (1-based sample ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    /// Observations so far. `u64` explicitly (not `usize`): soak runs
    /// observe billions of samples and the counter must not depend on
    /// the platform's pointer width.
    count: u64,
}

impl P2Quantile {
    /// Estimator for quantile `p` ∈ (0, 1).
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feed one observation. Non-finite samples (NaN, ±∞) are ignored:
    /// they carry no rank information, and letting one through would
    /// poison every later comparison against the marker heights.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            self.q[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.q.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;
        // Find the cell k such that q[k] <= x < q[k+1].
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            (0..4).find(|&i| x < self.q[i + 1]).unwrap_or(3)
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        // Adjust interior markers.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                let new_q = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                // The linear fallback can still overshoot a neighbour on
                // heavily duplicated streams (adjacent markers at equal
                // heights make the interpolation degenerate). Clamp to
                // keep the marker heights monotone — a P² invariant the
                // estimate and later updates rely on.
                self.q[i] = new_q.clamp(self.q[i - 1], self.q[i + 1]);
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, qi, qp) = (self.q[i - 1], self.q[i], self.q[i + 1]);
        let (nm, ni, np) = (self.n[i - 1], self.n[i], self.n[i + 1]);
        qi + d / (np - nm)
            * ((ni - nm + d) * (qp - qi) / (np - ni) + (np - ni - d) * (qi - qm) / (ni - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate of the quantile (`None` before any observation).
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            c if c < 5 => {
                // Exact small-sample quantile.
                let mut v = self.q[..c as usize].to_vec();
                v.sort_by(f64::total_cmp);
                let idx = ((c as f64 - 1.0) * self.p).round() as usize;
                Some(v[idx])
            }
            _ => Some(self.q[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn median_of_uniform_stream() {
        let mut est = P2Quantile::new(0.5);
        let mut rng = SimRng::new(1);
        for _ in 0..100_000 {
            est.observe(rng.f64());
        }
        let m = est.estimate().unwrap();
        assert!((m - 0.5).abs() < 0.02, "median estimate {m}");
    }

    #[test]
    fn p99_of_uniform_stream() {
        let mut est = P2Quantile::new(0.99);
        let mut rng = SimRng::new(2);
        for _ in 0..100_000 {
            est.observe(rng.f64());
        }
        let q = est.estimate().unwrap();
        assert!((q - 0.99).abs() < 0.02, "p99 estimate {q}");
    }

    #[test]
    fn small_samples_are_exact() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        est.observe(10.0);
        assert_eq!(est.estimate(), Some(10.0));
        est.observe(30.0);
        est.observe(20.0);
        // Median of {10,20,30}.
        assert_eq!(est.estimate(), Some(20.0));
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn exponential_tail_quantile() {
        let mut est = P2Quantile::new(0.9);
        let mut rng = SimRng::new(3);
        for _ in 0..200_000 {
            est.observe(rng.exp(1.0));
        }
        // True p90 of Exp(1) is ln(10) ≈ 2.3026.
        let q = est.estimate().unwrap();
        assert!((q - std::f64::consts::LN_10).abs() < 0.1, "p90 estimate {q}");
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_invalid_p() {
        let _ = P2Quantile::new(1.0);
    }

    /// Regression: an all-equal stream degenerates every marker gap to
    /// zero; the estimator must neither panic nor drift off the value.
    #[test]
    fn all_equal_stream_stays_exact() {
        for p in [0.5, 0.9, 0.99] {
            let mut est = P2Quantile::new(p);
            for _ in 0..10_000 {
                est.observe(5.0);
            }
            assert_eq!(est.estimate(), Some(5.0), "p={p}");
            assert_eq!(est.count(), 10_000);
        }
    }

    /// Regression: NaN (and ±∞) used to reach `partial_cmp().unwrap()`
    /// and panic. They are now ignored without disturbing the estimate.
    #[test]
    fn nan_and_inf_samples_are_ignored() {
        let mut est = P2Quantile::new(0.5);
        est.observe(f64::NAN); // before the init sort
        let mut rng = SimRng::new(11);
        for i in 0..50_000 {
            est.observe(rng.f64());
            if i % 97 == 0 {
                est.observe(f64::NAN);
                est.observe(f64::INFINITY);
                est.observe(f64::NEG_INFINITY);
            }
        }
        assert_eq!(est.count(), 50_000);
        let m = est.estimate().unwrap();
        assert!(m.is_finite());
        assert!((m - 0.5).abs() < 0.02, "median estimate {m}");
    }

    /// Regression: a two-value stream (heavy duplication) could push the
    /// interior marker heights out of monotone order via the linear
    /// fallback. The estimate must stay inside the observed range.
    #[test]
    fn two_value_stream_stays_in_range() {
        for p in [0.25, 0.5, 0.9] {
            let mut est = P2Quantile::new(p);
            let mut rng = SimRng::new(12);
            for _ in 0..20_000 {
                let x = if rng.f64() < 0.5 { 1.0 } else { 2.0 };
                est.observe(x);
            }
            let q = est.estimate().unwrap();
            assert!((1.0..=2.0).contains(&q), "p={p} estimate {q}");
        }
    }
}
