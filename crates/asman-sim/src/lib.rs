//! Discrete-event simulation substrate for the ASMan reproduction.
//!
//! This crate provides the timing, event-ordering, randomness and
//! statistics foundation that the guest-kernel model, the hypervisor model
//! and the adaptive scheduler are built on. Everything here is
//! **deterministic**: the event queue breaks timestamp ties by insertion
//! sequence number and the RNG is a self-contained xoshiro256\*\*
//! implementation, so a simulation with a fixed seed is bit-exact across
//! platforms and runs.
//!
//! # Modules
//!
//! * [`time`] — the [`Cycles`] clock domain (CPU cycles at a
//!   configurable frequency, default 2.33 GHz to match the paper's Xeon
//!   X5410 testbed).
//! * [`event`] — a deterministic calendar queue ([`EventQueue`]).
//! * [`rng`] — xoshiro256\*\* PRNG with distribution helpers.
//! * [`stats`] — log₂ histograms (the paper reports spinlock waits in
//!   powers-of-two cycle buckets) and online mean/variance.
//! * [`quantile`] — streaming percentile estimation (P² algorithm).
//! * [`trace`] — bounded trace recorder for per-event series such as the
//!   spinlock wait scatter plots of Figures 2 and 8.
//! * [`flight`] — the cross-layer flight recorder: typed scheduler/guest
//!   events in per-category bounded buffers with drop accounting.
//! * [`lhp`] — lock-holder-preemption episode detection over merged
//!   flight-recorder streams.
//! * [`fault`] — deterministic fault-injection plans (host crashes,
//!   slowdowns, migration aborts) drawn from their own forked RNG
//!   stream so faults never perturb workload draws.
//! * [`fnv`] — incremental FNV-1a hashing ([`Fnv`]) for the state
//!   fingerprints the checkpoint/restore subsystem compares.
//! * [`registry`] — a unified registry of named counters, gauges and
//!   quantile histograms serialized into per-run artifacts.
//! * [`telemetry`] — deterministic per-epoch time-series sampling
//!   ([`SeriesSampler`]) with trailing-window Nσ anomaly detection,
//!   captured in the cluster driver's serial barrier.
//! * [`audit`] — the [`SimQueue`] trait shared by the optimized queue
//!   and the naive [`OracleQueue`] used for differential auditing.
//! * [`exec`] — the [`SweepRunner`] scoped-thread pool that executes
//!   independent cells (figure sweeps, cluster host advancement) in
//!   parallel with results in deterministic cell order.

#![warn(missing_docs)]

pub mod audit;
pub mod event;
pub mod exec;
pub mod fault;
pub mod flight;
pub mod fnv;
pub mod lhp;
pub mod quantile;
pub mod registry;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use audit::{OracleQueue, SimQueue};
pub use event::{EventQueue, ScheduledAt};
pub use exec::SweepRunner;
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultSpec};
pub use flight::{
    merge_streams, CatMask, FlightEv, FlightEvent, FlightRecorder, StreamBudget, TraceCat,
};
pub use fnv::Fnv;
pub use lhp::{check_episode_invariants, detect_lhp, LhpEpisode, LhpSummary};
pub use quantile::P2Quantile;
pub use registry::{MetricsRegistry, QuantileHist};
pub use rng::SimRng;
pub use stats::{Log2Histogram, OnlineStats};
pub use telemetry::{
    detect_anomalies, sparkline, Anomaly, EpochSample, HostMetric, HostSample, SeriesSampler,
};
pub use time::{Clock, Cycles};
pub use trace::TraceBuffer;
