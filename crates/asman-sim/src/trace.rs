//! Bounded trace recording.
//!
//! Figures 2 and 8 of the paper are scatter plots of individual spinlock
//! waiting times over a fixed observation window. [`TraceBuffer`] records
//! timestamped samples up to a configurable cap (so pathological runs
//! cannot exhaust memory) while still counting everything it saw.

use std::sync::atomic::{AtomicBool, Ordering};

use serde::{Deserialize, Serialize};

use crate::time::Cycles;

/// Global gate for buffer-overflow warnings. Defaults to on; quiet modes
/// (e.g. `repro -q`) and tests that overflow buffers on purpose turn it
/// off.
static WARN_ON_OVERFLOW: AtomicBool = AtomicBool::new(true);

/// Enable or disable the once-per-buffer overflow warnings emitted by
/// [`TraceBuffer`] and the flight recorder.
pub fn set_overflow_warnings(on: bool) {
    WARN_ON_OVERFLOW.store(on, Ordering::Relaxed);
}

/// Emit a buffer-overflow warning to stderr, unless warnings are
/// suppressed via [`set_overflow_warnings`]. Callers are responsible for
/// the once-per-buffer latch.
pub fn overflow_warning(msg: &str) {
    if WARN_ON_OVERFLOW.load(Ordering::Relaxed) {
        eprintln!("warning: {msg}");
    }
}

/// A timestamped sample stream with a hard capacity limit.
///
/// Once `capacity` samples have been stored, further samples are counted
/// (`total_seen` keeps increasing) but not retained; `dropped()` reports how
/// many were discarded so analyses can detect truncation, and the first
/// drop emits a warning (gated by [`set_overflow_warnings`]) so truncation
/// is never silent.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceBuffer<T> {
    samples: Vec<(Cycles, T)>,
    capacity: usize,
    total_seen: u64,
    enabled: bool,
    warned: bool,
}

impl<T> TraceBuffer<T> {
    /// A trace that retains at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            samples: Vec::new(),
            capacity,
            total_seen: 0,
            enabled: true,
            warned: false,
        }
    }

    /// A disabled trace: records nothing, counts nothing. Useful as the
    /// default when an experiment does not need scatter data.
    pub fn disabled() -> Self {
        TraceBuffer {
            samples: Vec::new(),
            capacity: 0,
            total_seen: 0,
            enabled: false,
            warned: false,
        }
    }

    /// Enable or disable recording (e.g. to restrict the capture to the
    /// paper's 30-second observation window).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a sample at time `t`.
    pub fn record(&mut self, t: Cycles, sample: T) {
        if !self.enabled {
            return;
        }
        self.total_seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push((t, sample));
        } else if !self.warned {
            self.warned = true;
            overflow_warning(&format!(
                "trace buffer reached its capacity of {} samples; \
                 further samples are counted but not retained",
                self.capacity
            ));
        }
    }

    /// Retained samples in record order.
    pub fn samples(&self) -> &[(Cycles, T)] {
        &self.samples
    }

    /// Total samples offered while enabled (retained + dropped).
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// Samples that were offered but not retained due to the capacity cap.
    pub fn dropped(&self) -> u64 {
        self.total_seen - self.samples.len() as u64
    }

    /// Whether the buffer has overflowed (dropped at least one sample).
    pub fn overflowed(&self) -> bool {
        self.dropped() > 0
    }

    /// Discard retained samples and reset counters (capacity and enablement
    /// are preserved).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.total_seen = 0;
        self.warned = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_until_capacity_then_counts() {
        set_overflow_warnings(false);
        let mut t = TraceBuffer::new(3);
        assert!(!t.overflowed());
        for i in 0..5u64 {
            t.record(Cycles(i), i * 10);
        }
        assert_eq!(t.samples().len(), 3);
        assert_eq!(t.total_seen(), 5);
        assert_eq!(t.dropped(), 2);
        assert!(t.overflowed());
        assert_eq!(t.samples()[2], (Cycles(2), 20));
        set_overflow_warnings(true);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = TraceBuffer::disabled();
        t.record(Cycles(1), 1);
        assert_eq!(t.total_seen(), 0);
        assert!(t.samples().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn toggling_enablement_gates_recording() {
        let mut t = TraceBuffer::new(10);
        t.set_enabled(false);
        t.record(Cycles(1), 'a');
        t.set_enabled(true);
        t.record(Cycles(2), 'b');
        assert_eq!(t.total_seen(), 1);
        assert_eq!(t.samples(), &[(Cycles(2), 'b')]);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        set_overflow_warnings(false);
        let mut t = TraceBuffer::new(1);
        t.record(Cycles(1), ());
        t.record(Cycles(2), ());
        t.clear();
        assert_eq!(t.total_seen(), 0);
        assert!(!t.overflowed());
        t.record(Cycles(3), ());
        assert_eq!(t.samples().len(), 1);
        set_overflow_warnings(true);
    }
}
