//! Deterministic per-epoch time-series telemetry.
//!
//! The cluster driver advances every host to the epoch boundary and then
//! runs a serial barrier (delta collection, fault injection, balancing).
//! [`SeriesSampler`] captures one typed [`EpochSample`] per epoch *inside
//! that serial section*, so the recorded series is a pure function of the
//! simulation state and is bit-identical for every `--jobs` count. The
//! ring is fixed-capacity: once full, the oldest sample is evicted and
//! the drop is counted (with a once-per-ring stderr warning, mirroring
//! the flight recorder's accounting).
//!
//! [`detect_anomalies`] runs a trailing-window Nσ pass over the sampled
//! per-host metrics (wasted-spin delta, VCRD-HIGH delta), flagging the
//! epoch and host where a metric spiked above the recent baseline —
//! the "when did adaptation pressure emerge" question that end-of-run
//! aggregates cannot answer.

use std::collections::VecDeque;

use serde::Serialize;

use crate::trace::overflow_warning;

/// One host's slice of an epoch sample.
///
/// Field order is the serialized key order (the derive emits declared
/// order), so the artifact schema is stable and sorted comparisons like
/// `diff -r` never depend on map iteration order.
#[derive(Clone, Debug, Serialize)]
pub struct HostSample {
    /// Host index within the cluster.
    pub host: u32,
    /// VMs resident on the host at the barrier.
    pub resident_vms: u32,
    /// Total VCPUs of the resident VMs (the balancer's load notion).
    pub resident_vcpus: u32,
    /// VCPUs in the Runnable state at the epoch boundary (queued
    /// pressure; 0 for crashed hosts).
    pub runnable_vcpus: u32,
    /// Guest-online cycles accumulated by resident VMs this epoch.
    pub online_delta: u64,
    /// Wasted-spin cycles accumulated by resident VMs this epoch.
    pub spin_delta: u64,
    /// VCRD-HIGH raises observed across resident VMs this epoch.
    pub vcrd_high_delta: u64,
    /// Capacity derate in percent (0 = healthy full speed).
    pub derate_pct: u32,
    /// Whether the host has crashed (frozen, VMs evacuated).
    pub crashed: bool,
}

/// One epoch's cluster-wide telemetry sample.
#[derive(Clone, Debug, Serialize)]
pub struct EpochSample {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Live migration retry chains at the end of the barrier — a real
    /// count, bounded by the driver's per-epoch move budget
    /// (`--max-moves`).
    pub migrations_in_flight: u32,
    /// Fresh moves the balancer planned at this barrier (retry
    /// re-attempts not included).
    pub moves_planned: u32,
    /// Candidate moves the planner rejected at this barrier because a
    /// per-host send/receive cap was already claimed.
    pub moves_denied_conflict: u32,
    /// Cumulative committed migrations.
    pub migrations: u64,
    /// Cumulative aborted migration attempts.
    pub aborts: u64,
    /// Cumulative retries that eventually committed.
    pub retries_committed: u64,
    /// Cumulative VMs barred after exhausting their retry budget.
    pub gave_up: u64,
    /// Cumulative crash evacuations.
    pub evacuations: u64,
    /// Per-host slices, in host-index order.
    pub hosts: Vec<HostSample>,
}

/// Fixed-capacity ring of [`EpochSample`]s with drop accounting.
///
/// Keeps the most recent `capacity` samples; older samples are evicted
/// and counted. The first eviction emits a single stderr warning (via
/// [`crate::trace::overflow_warning`], so `-q` runs can suppress it).
#[derive(Clone, Debug)]
pub struct SeriesSampler {
    ring: VecDeque<EpochSample>,
    capacity: usize,
    seen: u64,
    warned: bool,
}

impl SeriesSampler {
    /// An empty sampler holding at most `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        SeriesSampler {
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            seen: 0,
            warned: false,
        }
    }

    /// Record one epoch sample, evicting the oldest if the ring is full.
    pub fn push(&mut self, sample: EpochSample) {
        self.seen += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            if !self.warned {
                self.warned = true;
                overflow_warning(&format!(
                    "telemetry series ring full ({} samples); dropping oldest epochs",
                    self.capacity
                ));
            }
        }
        self.ring.push_back(sample);
    }

    /// Samples currently retained, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &EpochSample> + '_ {
        self.ring.iter()
    }

    /// Total samples ever pushed.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Samples evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.seen - self.ring.len() as u64
    }

    /// Whether the once-per-ring overflow warning has fired.
    pub fn warned(&self) -> bool {
        self.warned
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// One flagged metric spike: `value` exceeded the trailing-window mean
/// by more than Nσ at (`epoch`, `host`).
#[derive(Clone, Debug, Serialize)]
pub struct Anomaly {
    /// Epoch where the spike was observed.
    pub epoch: u64,
    /// Host whose metric spiked.
    pub host: u32,
    /// Metric name (`"spin_delta"` or `"vcrd_high_delta"`).
    pub metric: String,
    /// Observed value at the flagged epoch.
    pub value: f64,
    /// Trailing-window mean the value was compared against.
    pub mean: f64,
    /// Trailing-window standard deviation.
    pub sigma: f64,
}

/// A named projection of one [`HostSample`] field onto `f64`.
pub type HostMetric = (&'static str, fn(&HostSample) -> f64);

/// Per-host metrics eligible for the anomaly pass.
const ANOMALY_METRICS: [HostMetric; 2] = [
    ("spin_delta", |h| h.spin_delta as f64),
    ("vcrd_high_delta", |h| h.vcrd_high_delta as f64),
];

/// Trailing-window Nσ anomaly pass over a sampled series.
///
/// For every host and every metric in the pass, an epoch is flagged when
/// at least `window` prior samples exist for that host and the value
/// exceeds `mean + nsigma * sigma` of the trailing `window` samples
/// (strictly above the mean when the window is flat, so a constant
/// series is never flagged). The trailing window must be
/// **epoch-contiguous** with the flagged sample: a host that is absent
/// from some epochs (ring eviction, partial series) resets its window
/// at the gap, so a value is never judged against a mean drawn from
/// non-adjacent history. Pure arithmetic over the samples —
/// deterministic given a deterministic series.
pub fn detect_anomalies(samples: &[EpochSample], window: usize, nsigma: f64) -> Vec<Anomaly> {
    let window = window.max(2);
    let mut anomalies = Vec::new();
    let hosts = samples.iter().map(|s| s.hosts.len()).max().unwrap_or(0);
    for (metric, extract) in ANOMALY_METRICS {
        for host in 0..hosts {
            let series: Vec<(u64, f64)> = samples
                .iter()
                .filter_map(|s| s.hosts.get(host).map(|h| (s.epoch, extract(h))))
                .collect();
            for i in window..series.len() {
                // Epochs are strictly increasing, so the window plus
                // the judged sample span exactly `window` consecutive
                // epochs iff the endpoints differ by exactly `window`.
                // A gap anywhere inside widens the difference and the
                // window is skipped until it refills past the gap.
                if series[i].0 != series[i - window].0 + window as u64 {
                    continue;
                }
                let trail = &series[i - window..i];
                let mean = trail.iter().map(|(_, v)| v).sum::<f64>() / window as f64;
                let var = trail.iter().map(|(_, v)| (v - mean) * (v - mean)).sum::<f64>()
                    / window as f64;
                let sigma = var.sqrt();
                let (epoch, value) = series[i];
                let threshold = mean + nsigma * sigma;
                let flagged = if sigma > 0.0 { value > threshold } else { value > mean };
                if flagged {
                    anomalies.push(Anomaly {
                        epoch,
                        host: host as u32,
                        metric: metric.to_string(),
                        value,
                        mean,
                        sigma,
                    });
                }
            }
        }
    }
    // Deterministic presentation order: by epoch, then host, then metric.
    anomalies.sort_by(|a, b| {
        (a.epoch, a.host, a.metric.as_str()).cmp(&(b.epoch, b.host, b.metric.as_str()))
    });
    anomalies
}

/// Render `values` as a fixed-palette ASCII sparkline (one char per
/// value, scaled to the series min..max; flat series render as all-low).
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: &[u8] = b" .:-=+*#@";
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    values
        .iter()
        .map(|&v| {
            let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
            let idx = (t * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)] as char
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64, spins: &[u64]) -> EpochSample {
        EpochSample {
            epoch,
            migrations_in_flight: 0,
            moves_planned: 0,
            moves_denied_conflict: 0,
            migrations: 0,
            aborts: 0,
            retries_committed: 0,
            gave_up: 0,
            evacuations: 0,
            hosts: spins
                .iter()
                .enumerate()
                .map(|(h, &s)| HostSample {
                    host: h as u32,
                    resident_vms: 1,
                    resident_vcpus: 2,
                    runnable_vcpus: 1,
                    online_delta: 100,
                    spin_delta: s,
                    vcrd_high_delta: 0,
                    derate_pct: 0,
                    crashed: false,
                })
                .collect(),
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut s = SeriesSampler::new(3);
        for e in 0..5 {
            s.push(sample(e, &[0]));
        }
        let kept: Vec<u64> = s.samples().map(|x| x.epoch).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest epochs evicted first");
        assert_eq!(s.seen(), 5);
        assert_eq!(s.dropped(), 2);
        assert!(s.warned(), "first eviction latches the warning");
    }

    #[test]
    fn ring_under_capacity_never_warns() {
        let mut s = SeriesSampler::new(8);
        for e in 0..8 {
            s.push(sample(e, &[0]));
        }
        assert_eq!(s.dropped(), 0);
        assert!(!s.warned());
    }

    #[test]
    fn anomaly_pass_flags_spike_with_epoch_and_host() {
        // Host 0 is flat; host 1 spikes at epoch 6.
        let mut samples = Vec::new();
        for e in 0..8u64 {
            let h1 = if e == 6 { 5000 } else { 100 + (e % 2) };
            samples.push(sample(e, &[100, h1]));
        }
        let found = detect_anomalies(&samples, 4, 3.0);
        assert_eq!(found.len(), 1, "exactly the spike: {found:?}");
        assert_eq!((found[0].epoch, found[0].host), (6, 1));
        assert_eq!(found[0].metric, "spin_delta");
        assert!(found[0].value > found[0].mean + 3.0 * found[0].sigma);
    }

    #[test]
    fn anomaly_pass_ignores_flat_series() {
        let samples: Vec<EpochSample> = (0..10).map(|e| sample(e, &[42, 42])).collect();
        assert!(detect_anomalies(&samples, 4, 3.0).is_empty());
    }

    /// Regression: a host absent from some epochs (ring eviction, a
    /// crashed host dropped from a partial series) used to have its
    /// trailing window silently straddle the gap — the spike right
    /// after the gap was judged against a mean drawn from epochs that
    /// are not its recent history. The window must reset at any gap.
    #[test]
    fn anomaly_window_resets_at_epoch_gaps() {
        // Host 1 is flat at 100 for epochs 0..=4, absent for epochs
        // 5..=19 (its sample row is missing entirely), then returns
        // with a big value at epoch 20. Pre-fix, the filter_map series
        // is [(0,100)..(4,100),(20,5000)]: the trailing window
        // [1,2,3,4] "precedes" epoch 20 positionally and the spike is
        // flagged against history from 16 epochs ago. Post-fix the
        // window straddling the gap is skipped.
        let mut samples = Vec::new();
        for e in 0..5u64 {
            samples.push(sample(e, &[100, 100]));
        }
        for e in 5..20u64 {
            samples.push(sample(e, &[100]));
        }
        samples.push(sample(20, &[100, 5000]));
        let found = detect_anomalies(&samples, 4, 3.0);
        assert!(
            found.is_empty(),
            "window straddling a sample gap must not judge the spike: {found:?}"
        );
        // The same spike with contiguous history is still caught: once
        // the host's samples refill past the gap, flagging resumes.
        for e in 21..27u64 {
            samples.push(sample(e, &[100, 100 + (e % 2)]));
        }
        samples.push(sample(27, &[100, 5000]));
        let found = detect_anomalies(&samples, 4, 3.0);
        assert_eq!(found.len(), 1, "contiguous spike still flagged: {found:?}");
        assert_eq!((found[0].epoch, found[0].host), (27, 1));
    }

    #[test]
    fn sparkline_scales_to_extremes() {
        let line = sparkline(&[0.0, 1.0, 0.5]);
        assert_eq!(line.len(), 3);
        assert_eq!(line.as_bytes()[0], b' ');
        assert_eq!(line.as_bytes()[1], b'@');
        assert_eq!(sparkline(&[7.0, 7.0]), "  ", "flat series renders all-low");
        assert_eq!(sparkline(&[]), "");
    }
}
