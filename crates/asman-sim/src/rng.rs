//! Deterministic pseudo-random number generation.
//!
//! The simulator needs bit-exact reproducibility across platforms and
//! toolchain versions (several tests assert exact simulation outcomes for a
//! fixed seed), so instead of depending on an external RNG crate whose
//! stream might change between releases, this module implements the
//! published xoshiro256\*\* algorithm (Blackman & Vigna) seeded through
//! SplitMix64 — the reference construction recommended by its authors.

/// xoshiro256\*\* PRNG with convenience distribution helpers.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream (for per-VM / per-thread RNGs) by
    /// mixing a stream index into the parent seed material.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// The generator's full internal state, for state fingerprinting.
    /// Two generators with equal state produce identical streams, so
    /// folding these four words into a checkpoint fingerprint captures
    /// every past and future draw of the stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`. Uses Lemire's multiply-shift rejection
    /// method for unbiased results. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        // 128-bit multiply-high with rejection of the biased zone.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[lo, hi)`; `lo < hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        // Avoid ln(0).
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// A value uniformly jittered within `±frac` of `base` (e.g.
    /// `jitter(1000, 0.2)` is uniform in `[800, 1200]`). Used to give
    /// workload segments realistic variability without heavy-tailed noise.
    /// The downward span is clamped to `base` (a `frac >= 1.0` cannot
    /// underflow below zero), and the band saturates at `u64::MAX`.
    pub fn jitter(&mut self, base: u64, frac: f64) -> u64 {
        if base == 0 || frac <= 0.0 {
            return base;
        }
        // A non-finite or huge frac saturates the cast at u64::MAX.
        let span = ((base as f64) * frac) as u64;
        if span == 0 {
            return base;
        }
        let lo = base - span.min(base);
        let hi = base.saturating_add(span).saturating_add(1);
        self.range(lo, hi)
    }

    /// Pick a uniformly random index into a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Sample an index according to the weights. Entries that are not
    /// finite and strictly positive are skipped (weight zero), so a NaN
    /// or negative weight can never be selected and can never poison
    /// the walk. Panics — in every build profile — when no usable
    /// weight remains: silently returning the last index in release
    /// builds hid exactly that bug for a while.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let usable = |w: f64| w.is_finite() && w > 0.0;
        let total: f64 = weights.iter().copied().filter(|&w| usable(w)).sum();
        assert!(
            total > 0.0,
            "weighted_index needs at least one finite positive weight, got {weights:?}"
        );
        let mut x = self.f64() * total;
        let mut last = 0;
        for (i, &w) in weights.iter().enumerate() {
            if !usable(w) {
                continue;
            }
            if x < w {
                return i;
            }
            x -= w;
            last = i;
        }
        // Rounding at the top of the walk: fall back to the last usable
        // index, never to a zero-weight one.
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_from_splitmix_seed() {
        // Determinism regression guard: these values pin the exact stream.
        let mut r = SimRng::new(42);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = SimRng::new(42);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        // Different seeds must diverge immediately.
        let mut r3 = SimRng::new(43);
        assert_ne!(first[0], r3.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SimRng::new(1);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(99);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let m = sum / n as f64;
        assert!(
            (m - mean).abs() < 0.1,
            "sample mean {m} too far from {mean}"
        );
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.jitter(1_000, 0.25);
            assert!((750..=1250).contains(&v), "jitter out of band: {v}");
        }
        assert_eq!(r.jitter(0, 0.5), 0);
        assert_eq!(r.jitter(100, 0.0), 100);
        assert_eq!(r.jitter(1, 0.001), 1);
    }

    #[test]
    fn jitter_frac_at_or_above_one_cannot_underflow() {
        // Regression: frac >= 1.0 made span > base, so `base - span`
        // panicked in debug builds and wrapped in release builds.
        let mut r = SimRng::new(17);
        for frac in [1.0, 1.5, 4.0, 1e9] {
            for _ in 0..2_000 {
                let v = r.jitter(1_000, frac);
                let span = ((1_000f64) * frac) as u64;
                assert!(
                    v <= 1_000u64.saturating_add(span),
                    "jitter({frac}) above band: {v}"
                );
            }
        }
        // Non-finite frac degrades to the full band, never panics.
        let _ = r.jitter(1_000, f64::INFINITY);
        assert_eq!(r.jitter(1_000, f64::NAN), 1_000, "NaN frac casts to span 0");
        // Saturation near the top of the u64 range.
        let _ = r.jitter(u64::MAX - 1, 2.0);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent_a = SimRng::new(1234);
        let mut parent_b = SimRng::new(1234);
        let mut c0 = parent_a.fork(0);
        let mut c0b = parent_b.fork(0);
        assert_eq!(c0.next_u64(), c0b.next_u64());
        let mut c1 = parent_a.fork(1);
        assert_ne!(c0.next_u64(), c1.next_u64());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::new(5);
        let w = [0.0, 1.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio} should be ~3");
    }

    #[test]
    fn weighted_index_skips_poisoned_weights() {
        // Regression: NaN / negative entries used to flow into the
        // total, and the release-mode fallback could return an index
        // whose weight was zero.
        let mut r = SimRng::new(23);
        let w = [f64::NAN, -2.0, 5.0, f64::INFINITY, 0.0, 1.0];
        for _ in 0..10_000 {
            let i = r.weighted_index(&w);
            assert!(i == 2 || i == 5, "picked unusable index {i}");
        }
    }

    #[test]
    fn weighted_index_trailing_zero_never_selected() {
        // The old fallback returned `weights.len() - 1` on rounding
        // overshoot — a zero-weight index if the last entry was 0.
        let mut r = SimRng::new(29);
        let w = [1.0, 0.0];
        for _ in 0..10_000 {
            assert_eq!(r.weighted_index(&w), 0);
        }
    }

    /// The guard is a real panic in *both* build profiles now — this
    /// test is meaningful precisely because the release-mode
    /// `debug_assert!` used to compile out.
    #[test]
    #[should_panic(expected = "weighted_index needs at least one finite positive weight")]
    fn weighted_index_all_zero_panics_in_every_profile() {
        let mut r = SimRng::new(31);
        r.weighted_index(&[0.0, 0.0, f64::NAN]);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(11);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }
}
