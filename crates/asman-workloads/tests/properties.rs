//! Property-based tests on workload generators: structural invariants
//! that the guest kernel depends on for liveness.

use asman_sim::Cycles;
use asman_workloads::{
    BackgroundConfig, BackgroundService, NasBenchmark, NasSpec, Op, PhasedProgram, ProblemClass,
    Program, SpecCpuKind, SpecCpuRate, SpecJbb, SpecJbbConfig,
};
use proptest::prelude::*;

/// Drain a finite thread's stream (bounded).
fn drain(p: &mut dyn Program, tid: usize, cap: usize) -> Vec<Op> {
    let mut out = Vec::new();
    for _ in 0..cap {
        let op = p.next_op(tid);
        if op == Op::Done {
            break;
        }
        out.push(op);
    }
    out
}

fn barrier_count(ops: &[Op]) -> usize {
    ops.iter()
        .filter(|o| matches!(o, Op::Barrier { .. }))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every NAS benchmark, at every class and seed: all threads emit the
    /// same number of barriers (otherwise the guest deadlocks), ops stay
    /// within declared resource bounds, and the stream terminates.
    #[test]
    fn nas_streams_are_deadlock_free_by_construction(
        bench_idx in 0usize..7,
        seed in 0u64..10_000,
        threads in 2usize..5,
    ) {
        let bench = NasBenchmark::ALL[bench_idx];
        let spec = NasSpec::new(bench, ProblemClass::S, threads);
        let mut p = spec.build(seed);
        let streams: Vec<Vec<Op>> = (0..threads).map(|t| drain(&mut p, t, 2_000_000)).collect();
        let b0 = barrier_count(&streams[0]);
        for (t, s) in streams.iter().enumerate() {
            prop_assert_eq!(
                barrier_count(s), b0,
                "thread {} barrier count mismatch for {}", t, bench.name()
            );
            for op in s {
                match *op {
                    Op::CriticalSection { lock, .. } => {
                        prop_assert!(lock < p.kernel_locks());
                    }
                    Op::Barrier { id } => prop_assert!(id < p.barriers()),
                    Op::WaitPeer { peer, target } => {
                        prop_assert!((peer as usize) < threads);
                        prop_assert!(target > 0);
                    }
                    Op::Compute(c) => prop_assert!(c > Cycles::ZERO),
                    _ => {}
                }
            }
        }
    }

    /// Pipeline WaitPeer targets never regress by more than the slack
    /// bound per (thread, peer) pair. (At a sweep-direction flip the same
    /// peer switches from data-dependency to buffer-bound role, which may
    /// lower the target by up to `pipeline_slack`; anything already
    /// awaited above the new target is trivially satisfied, so liveness
    /// holds.)
    #[test]
    fn pipeline_targets_never_regress_beyond_slack(seed in 0u64..10_000) {
        let spec = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4);
        let slack = spec.phased.pipeline_slack as u64;
        let mut p = spec.build(seed);
        for t in 0..4 {
            let ops = drain(&mut p, t, 2_000_000);
            let mut last: std::collections::HashMap<u32, u64> = Default::default();
            for op in ops {
                if let Op::WaitPeer { peer, target } = op {
                    let prev = last.insert(peer, target).unwrap_or(0);
                    prop_assert!(
                        target + slack >= prev,
                        "thread {t} target on peer {peer} regressed beyond slack: {prev} -> {target}"
                    );
                }
            }
        }
    }

    /// Bounded-slack safety: no thread's wait target on its downstream
    /// neighbour ever exceeds what that neighbour will have advanced by
    /// the time it reaches the same chunk (the classic bounded-buffer
    /// deadlock-freedom condition).
    #[test]
    fn pipeline_slack_waits_are_satisfiable(seed in 0u64..5_000) {
        let spec = NasSpec::new(NasBenchmark::SP, ProblemClass::S, 4);
        let mut p = spec.build(seed);
        // Count each thread's total advances.
        let advances: Vec<u64> = (0..4)
            .map(|t| {
                drain(&mut p, t, 2_000_000)
                    .iter()
                    .filter(|o| matches!(o, Op::Advance))
                    .count() as u64
            })
            .collect();
        // All threads advance the same number of times (same chunk grid),
        // so every target <= total advances is eventually satisfied.
        prop_assert!(advances.windows(2).all(|w| w[0] == w[1]));
        let mut p = spec.build(seed);
        for t in 0..4 {
            for op in drain(&mut p, t, 2_000_000) {
                if let Op::WaitPeer { target, .. } = op {
                    prop_assert!(target <= advances[0]);
                }
            }
        }
    }

    /// SPEC-rate rounds land within jitter of the nominal compute.
    #[test]
    fn spec_rate_round_totals_are_stable(seed in 0u64..10_000, kind_gcc in any::<bool>()) {
        let kind = if kind_gcc { SpecCpuKind::Gcc } else { SpecCpuKind::Bzip2 };
        let mut w = SpecCpuRate::new(kind, 1, seed);
        let target = kind.round_compute().as_u64() as f64;
        let mut compute = 0u64;
        for _ in 0..200_000 {
            match w.next_op(0) {
                Op::Compute(c) => compute += c.as_u64(),
                Op::CriticalSection { hold, .. } => compute += hold.as_u64(),
                Op::Mark(asman_workloads::Mark::RoundEnd) => break,
                _ => {}
            }
        }
        let ratio = compute as f64 / target;
        prop_assert!((0.90..=1.10).contains(&ratio), "round ratio {ratio}");
    }

    /// SPECjbb safepoints: every warehouse emits barriers in enter/exit
    /// pairs, so the global barrier can never half-complete.
    #[test]
    fn specjbb_barriers_come_in_pairs(seed in 0u64..10_000, w in 1usize..6) {
        let mut jbb = SpecJbb::new(
            SpecJbbConfig { warehouses: w, ..SpecJbbConfig::default() },
            seed,
        );
        for tid in 0..w {
            let mut barriers = 0u64;
            for _ in 0..5_000 {
                if let Op::Barrier { .. } = jbb.next_op(tid) {
                    barriers += 1;
                }
            }
            // Trailing odd barrier is possible mid-safepoint; allow 1.
            prop_assert!(barriers % 2 <= 1);
            prop_assert!(barriers > 0, "safepoints must occur");
        }
    }

    /// Background noise stays light for any seed: duty cycle in the
    /// sub-10% band that a real dom0 exhibits.
    #[test]
    fn background_duty_cycle_is_light(seed in 0u64..10_000) {
        let mut b = BackgroundService::new(BackgroundConfig::default(), 1, seed);
        let (mut sleep, mut busy) = (0u64, 0u64);
        for _ in 0..4_000 {
            match b.next_op(0) {
                Op::Sleep(c) => sleep += c.as_u64(),
                Op::Compute(c) => busy += c.as_u64(),
                Op::CriticalSection { hold, .. } => busy += hold.as_u64(),
                _ => {}
            }
        }
        let duty = busy as f64 / (busy + sleep) as f64;
        prop_assert!(duty < 0.12, "duty {duty}");
    }

    /// Identical (spec, seed) pairs produce identical streams even when
    /// threads are drained in different orders.
    #[test]
    fn phased_streams_are_order_independent(seed in 0u64..10_000) {
        let spec = NasSpec::new(NasBenchmark::CG, ProblemClass::S, 3).phased;
        let mut a = PhasedProgram::new(spec.clone(), seed);
        let mut b = PhasedProgram::new(spec, seed);
        let a2 = drain(&mut a, 2, 1_000_000);
        let a0 = drain(&mut a, 0, 1_000_000);
        let b0 = drain(&mut b, 0, 1_000_000);
        let b2 = drain(&mut b, 2, 1_000_000);
        prop_assert_eq!(a0, b0);
        prop_assert_eq!(a2, b2);
    }
}
