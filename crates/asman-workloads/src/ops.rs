//! The workload instruction set and the [`Program`] abstraction.
//!
//! Workloads describe *what a guest thread does next*; the guest-kernel
//! model (crate `asman-guest`) interprets these ops against simulated
//! synchronization primitives, and the hypervisor model charges the cycles
//! to whichever VCPU the thread happens to run on.

use asman_sim::Cycles;
use serde::{Deserialize, Serialize};

/// One step of a guest thread's program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Burn `0` cycles of pure user-space computation.
    Compute(Cycles),
    /// Enter a guest-kernel critical section: acquire kernel spinlock
    /// `lock`, hold it for `hold` cycles of work, release it.
    ///
    /// This models every kernel-mediated synchronization path the paper's
    /// Monitoring Module instruments: futex bucket locks, runqueue locks,
    /// and (for SPECjbb) contended JVM monitor inflation. Waiters **spin**:
    /// if the holder's VCPU is preempted, the waiters burn their whole
    /// timeslice — the lock-holder preemption phenomenon of §2.2.
    CriticalSection {
        /// VM-local kernel spinlock index (see [`Program::kernel_locks`]).
        lock: u32,
        /// Cycles of work performed while the lock is held.
        hold: Cycles,
    },
    /// Synchronize with all sibling threads of this program at barrier
    /// `id`. The guest implements the OpenMP/futex hybrid: brief kernel
    /// bookkeeping under a spinlock, bounded user-space spinning, then a
    /// blocking futex wait (semaphore-style, VCPU can go idle).
    Barrier {
        /// VM-local barrier index (see [`Program::barriers`]).
        id: u32,
    },
    /// Block (non-busy wait) for the given duration — models sleeps and
    /// I/O waits, during which the VCPU may be descheduled without cost.
    Sleep(Cycles),
    /// Publish progress: increment this thread's progress counter (e.g.
    /// "plane `k` of the sweep is done"). Zero cost; releases any peers
    /// spin-waiting on this thread via [`Op::WaitPeer`].
    Advance,
    /// Pipelined point-to-point synchronization (the wavefront pattern of
    /// NPB-LU's SSOR solver): wait until thread `peer`'s progress counter
    /// reaches `target`. The guest implements the producer–consumer flag
    /// wait the way OpenMP runtimes do: **user-space spinning** up to a
    /// budget, then a futex block. Under asynchronous VCPU scheduling the
    /// producer may be offline for entire scheduling slices, so this is
    /// the op that burns budget catastrophically — the headline LU
    /// behaviour of Figures 1–2.
    WaitPeer {
        /// Thread index whose progress is awaited.
        peer: u32,
        /// Progress value to wait for.
        target: u64,
    },
    /// Block on counting semaphore `id` until a token is available
    /// (non-busy waiting: the VCPU can be descheduled at no spin cost —
    /// the §2.2 contrast to spinlocks).
    SemWait {
        /// VM-local semaphore index (see [`Program::semaphores`]).
        id: u32,
    },
    /// Post one token to semaphore `id`, waking the oldest waiter.
    SemPost {
        /// VM-local semaphore index.
        id: u32,
    },
    /// Zero-duration progress marker for throughput accounting.
    Mark(Mark),
    /// The thread has finished; it will never be polled again.
    Done,
}

/// Progress markers emitted by workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mark {
    /// One unit of throughput work completed (e.g. a SPECjbb transaction).
    Transaction,
    /// One complete round of the benchmark finished on this thread. The
    /// multi-VM experiments (§5.3) time the first ten rounds of each
    /// benchmark; a VM-level round completes when all threads have passed
    /// the same round index.
    RoundEnd,
}

/// A deterministic multi-threaded workload generator.
///
/// The executor calls [`next_op`](Program::next_op) for a thread exactly
/// when that thread completed its previous op, so programs are simple
/// cursor state machines and never deal with simulated time. Programs own
/// their RNG (seeded at construction) which keeps runs reproducible.
pub trait Program: Send {
    /// Human-readable benchmark name (used in experiment tables).
    fn name(&self) -> &str;

    /// Number of guest threads this program drives.
    fn thread_count(&self) -> usize;

    /// Produce the next op for `tid` (`0..thread_count()`). Must keep
    /// returning [`Op::Done`] once the thread finished.
    fn next_op(&mut self, tid: usize) -> Op;

    /// How many distinct kernel spinlocks the program references. The
    /// guest pre-allocates this many locks per VM (ids `0..kernel_locks`).
    fn kernel_locks(&self) -> u32 {
        0
    }

    /// How many distinct barriers the program references.
    fn barriers(&self) -> u32 {
        0
    }

    /// How many distinct counting semaphores the program references
    /// (all start with zero tokens).
    fn semaphores(&self) -> u32 {
        0
    }

    /// Whether this program ever finishes (`false` for open-ended
    /// throughput workloads that run until the simulation horizon).
    fn finite(&self) -> bool {
        true
    }
}

impl Program for Box<dyn Program> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn thread_count(&self) -> usize {
        (**self).thread_count()
    }
    fn next_op(&mut self, tid: usize) -> Op {
        (**self).next_op(tid)
    }
    fn kernel_locks(&self) -> u32 {
        (**self).kernel_locks()
    }
    fn barriers(&self) -> u32 {
        (**self).barriers()
    }
    fn semaphores(&self) -> u32 {
        (**self).semaphores()
    }
    fn finite(&self) -> bool {
        (**self).finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoStep {
        emitted: Vec<u8>,
    }

    impl Program for TwoStep {
        fn name(&self) -> &str {
            "two-step"
        }
        fn thread_count(&self) -> usize {
            1
        }
        fn next_op(&mut self, tid: usize) -> Op {
            assert_eq!(tid, 0);
            self.emitted.push(1);
            if self.emitted.len() == 1 {
                Op::Compute(Cycles(10))
            } else {
                Op::Done
            }
        }
    }

    #[test]
    fn boxed_program_delegates() {
        let mut p: Box<dyn Program> = Box::new(TwoStep { emitted: vec![] });
        assert_eq!(p.name(), "two-step");
        assert_eq!(p.thread_count(), 1);
        assert_eq!(p.next_op(0), Op::Compute(Cycles(10)));
        assert_eq!(p.next_op(0), Op::Done);
        assert_eq!(p.kernel_locks(), 0);
        assert_eq!(p.barriers(), 0);
        assert!(p.finite());
    }
}
