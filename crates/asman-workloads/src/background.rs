//! Background service activity (Domain-0 model).
//!
//! On a real Xen host the administrator domain is never silent even when
//! "idle": its VCPUs wake for device interrupts, timekeeping, xenstore
//! transactions and console traffic — short bursts at irregular
//! intervals, amounting to a few percent of host CPU. These bursts arrive
//! with BOOST priority on whatever PCPU the dom0 VCPU is homed on, so
//! they randomly nick the guest VMs' scheduling windows. That ambient
//! perturbation is what keeps real sibling VCPUs from ever settling into
//! an accidentally-coscheduled lockstep — without it a clean-room
//! simulation reaches a symmetric fixed point that no physical host
//! exhibits.

use asman_sim::{Clock, Cycles, SimRng};
use serde::{Deserialize, Serialize};

use crate::ops::{Op, Program};

/// Parameters of the background service model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BackgroundConfig {
    /// Mean time between bursts per VCPU.
    pub mean_period: Cycles,
    /// Mean burst length.
    pub mean_burst: Cycles,
    /// Fraction of bursts that include a short kernel critical section
    /// (interrupt bookkeeping).
    pub kernel_frac: f64,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        let clk = Clock::default();
        BackgroundConfig {
            mean_period: clk.ms(5),
            mean_burst: clk.us(150),
            kernel_frac: 0.3,
        }
    }
}

/// Dom0-style background program: each thread sleeps ~exponentially, then
/// runs a short burst, forever.
pub struct BackgroundService {
    cfg: BackgroundConfig,
    threads: Vec<ThreadState>,
}

struct ThreadState {
    rng: SimRng,
    phase: u8,
}

impl BackgroundService {
    /// One background thread per VCPU, deterministic per `seed`.
    pub fn new(cfg: BackgroundConfig, vcpus: usize, seed: u64) -> Self {
        assert!(vcpus > 0);
        let mut root = SimRng::new(seed);
        let threads = (0..vcpus)
            .map(|t| ThreadState {
                rng: root.fork(t as u64),
                phase: 0,
            })
            .collect();
        BackgroundService { cfg, threads }
    }
}

impl Program for BackgroundService {
    fn name(&self) -> &str {
        "dom0-background"
    }

    fn thread_count(&self) -> usize {
        self.threads.len()
    }

    fn next_op(&mut self, tid: usize) -> Op {
        let st = &mut self.threads[tid];
        match st.phase {
            0 => {
                st.phase = 1;
                let gap = st.rng.exp(self.cfg.mean_period.as_u64() as f64).max(1.0);
                Op::Sleep(Cycles(gap as u64))
            }
            _ => {
                st.phase = 0;
                if st.rng.chance(self.cfg.kernel_frac) {
                    Op::CriticalSection {
                        lock: 0,
                        hold: Cycles(
                            st.rng
                                .jitter(self.cfg.mean_burst.as_u64() / 3, 0.5)
                                .max(200),
                        ),
                    }
                } else {
                    Op::Compute(Cycles(
                        st.rng.jitter(self.cfg.mean_burst.as_u64(), 0.8).max(500),
                    ))
                }
            }
        }
    }

    fn kernel_locks(&self) -> u32 {
        1
    }

    fn finite(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_sleep_and_burst() {
        let mut b = BackgroundService::new(BackgroundConfig::default(), 2, 1);
        for _ in 0..100 {
            assert!(matches!(b.next_op(0), Op::Sleep(_)));
            assert!(matches!(
                b.next_op(0),
                Op::Compute(_) | Op::CriticalSection { .. }
            ));
        }
    }

    #[test]
    fn duty_cycle_is_light() {
        let cfg = BackgroundConfig::default();
        let mut b = BackgroundService::new(cfg, 1, 9);
        let (mut sleep, mut busy) = (0u64, 0u64);
        for _ in 0..20_000 {
            match b.next_op(0) {
                Op::Sleep(c) => sleep += c.as_u64(),
                Op::Compute(c) => busy += c.as_u64(),
                Op::CriticalSection { hold, .. } => busy += hold.as_u64(),
                _ => {}
            }
        }
        let duty = busy as f64 / (busy + sleep) as f64;
        assert!(
            (0.005..0.15).contains(&duty),
            "background duty {duty} out of the few-percent band"
        );
    }

    #[test]
    fn never_finishes() {
        let b = BackgroundService::new(BackgroundConfig::default(), 3, 5);
        assert!(!b.finite());
        assert_eq!(b.thread_count(), 3);
    }
}
