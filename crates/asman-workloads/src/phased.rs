//! Generic phased-iteration program.
//!
//! All NAS-style concurrent workloads share one skeleton: `iterations` of
//! `chunks_per_iter` compute chunks per thread, with a synchronization
//! operation after each chunk — a barrier every `barrier_every`-th chunk
//! (modelling OpenMP `barrier`/allreduce points) and a kernel critical
//! section otherwise (modelling pipelined point-to-point sync and other
//! kernel-mediated operations). [`PhasedProgram`] interprets a
//! [`PhasedSpec`] into the per-thread op streams.

use std::collections::VecDeque;

use asman_sim::{Cycles, SimRng};
use serde::{Deserialize, Serialize};

use crate::ops::{Mark, Op, Program};

/// Parameters of a phased-iteration workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhasedSpec {
    /// Benchmark name for reporting.
    pub name: String,
    /// Number of guest threads (the paper runs 4, matching the VM's VCPUs).
    pub threads: usize,
    /// Outer iterations per round.
    pub iterations: u32,
    /// Compute chunks per iteration per thread; each ends in a sync op.
    pub chunks_per_iter: u32,
    /// Mean cycles of computation per chunk per thread.
    pub chunk_compute: Cycles,
    /// Load imbalance: each chunk is jittered uniformly within
    /// `±imbalance` of the mean, independently per thread.
    pub imbalance: f64,
    /// Every `barrier_every`-th sync point is a barrier (0 ⇒ no intra-
    /// iteration barriers). The remaining sync points are kernel critical
    /// sections.
    pub barrier_every: u32,
    /// Mean cycles held inside each kernel critical section (0 ⇒ none;
    /// the sync point degenerates to nothing).
    pub crit_hold: Cycles,
    /// Jitter fraction applied to `crit_hold`.
    pub crit_jitter: f64,
    /// Size of the kernel spinlock pool the critical sections pick from
    /// uniformly (models futex-bucket hashing across a few locks).
    pub kernel_locks: u32,
    /// Whether every iteration ends with a barrier (typical of OpenMP
    /// parallel-for based codes).
    pub end_of_iter_barrier: bool,
    /// Wavefront pipelining (NPB-LU's SSOR pattern): thread `t` spin-waits
    /// on thread `t−1`'s progress before each chunk and publishes its own
    /// progress after it. When set, the per-chunk sync point is the
    /// pipeline wait itself (plus any barriers from `barrier_every` /
    /// `end_of_iter_barrier`), and no per-chunk critical sections are
    /// generated.
    pub pipeline: bool,
    /// Maximum chunks a pipeline thread may run ahead of its downstream
    /// neighbour (bounded-buffer reuse: NPB codes recycle a couple of
    /// plane buffers, so the wavefront is a *tight* chain). 0 ⇒
    /// unbounded. Ignored unless `pipeline` is set.
    pub pipeline_slack: u32,
    /// `true` ⇒ restart after emitting the round marker (multi-VM repeated
    /// runs); `false` ⇒ finish after one round.
    pub repeat: bool,
}

#[derive(Clone)]
struct Cursor {
    iter: u32,
    chunk: u32,
    global_chunk: u64,
    finished: bool,
    queue: VecDeque<Op>,
    rng: SimRng,
}

/// Executable state of a [`PhasedSpec`] (implements [`Program`]).
pub struct PhasedProgram {
    spec: PhasedSpec,
    cursors: Vec<Cursor>,
}

impl PhasedProgram {
    /// Instantiate the program with a deterministic seed. Each thread gets
    /// an independent RNG stream so the op sequence of one thread does not
    /// depend on how the scheduler interleaves the others.
    pub fn new(spec: PhasedSpec, seed: u64) -> Self {
        assert!(spec.threads > 0, "a program needs at least one thread");
        assert!(spec.iterations > 0 && spec.chunks_per_iter > 0);
        let mut root = SimRng::new(seed);
        let cursors = (0..spec.threads)
            .map(|t| Cursor {
                iter: 0,
                chunk: 0,
                global_chunk: 0,
                finished: false,
                queue: VecDeque::new(),
                rng: root.fork(t as u64),
            })
            .collect();
        PhasedProgram { spec, cursors }
    }

    /// The spec this program was built from.
    pub fn spec(&self) -> &PhasedSpec {
        &self.spec
    }

    /// Total compute cycles a single thread will burn per round, on
    /// average (chunk mean × chunks × iterations). Sync costs come on top
    /// and depend on scheduling.
    pub fn nominal_compute_per_round(&self) -> Cycles {
        self.spec.chunk_compute * self.spec.chunks_per_iter as u64 * self.spec.iterations as u64
    }

    fn refill(&mut self, tid: usize) {
        let spec = &self.spec;
        let c = &mut self.cursors[tid];
        if c.finished {
            c.queue.push_back(Op::Done);
            return;
        }
        // One chunk: (pipeline wait,) compute(, advance,) then its
        // trailing sync op.
        if spec.pipeline {
            // SSOR-style alternating sweeps: forward (thread t waits on
            // t−1) on even iterations, backward (t waits on t+1) on odd
            // ones. The direction flip bounds the pipeline slack to one
            // iteration, so desynchronized VCPU duty cycles force a
            // window-handoff relay twice per iteration — the mechanism
            // behind LU's catastrophic sensitivity to asynchronous
            // scheduling.
            let backward = c.iter % 2 == 1;
            let (upstream, downstream) = if backward {
                (
                    (tid + 1 < spec.threads).then(|| tid as u32 + 1),
                    (tid > 0).then(|| tid as u32 - 1),
                )
            } else {
                (
                    (tid > 0).then(|| tid as u32 - 1),
                    (tid + 1 < spec.threads).then(|| tid as u32 + 1),
                )
            };
            // Data dependency: wait for the upstream neighbour's plane.
            if let Some(peer) = upstream {
                c.queue.push_back(Op::WaitPeer {
                    peer,
                    target: c.global_chunk + 1,
                });
            }
            // Buffer reuse: do not run more than `slack` chunks ahead of
            // the downstream neighbour.
            if spec.pipeline_slack > 0 {
                if let Some(peer) = downstream {
                    if c.global_chunk + 1 > spec.pipeline_slack as u64 {
                        c.queue.push_back(Op::WaitPeer {
                            peer,
                            target: c.global_chunk + 1 - spec.pipeline_slack as u64,
                        });
                    }
                }
            }
        }
        c.queue.push_back(Op::Compute(Cycles(
            c.rng.jitter(spec.chunk_compute.as_u64(), spec.imbalance),
        )));
        if spec.pipeline {
            c.queue.push_back(Op::Advance);
        }
        let at_barrier = spec.barrier_every > 0
            && (c.global_chunk + 1).is_multiple_of(spec.barrier_every as u64);
        c.global_chunk += 1;
        c.chunk += 1;
        let end_of_iter = c.chunk == spec.chunks_per_iter;
        if at_barrier || (end_of_iter && spec.end_of_iter_barrier) {
            c.queue.push_back(Op::Barrier { id: 0 });
        } else if !spec.pipeline && spec.crit_hold.as_u64() > 0 && spec.kernel_locks > 0 {
            c.queue.push_back(Op::CriticalSection {
                lock: c.rng.below(spec.kernel_locks as u64) as u32,
                hold: Cycles(c.rng.jitter(spec.crit_hold.as_u64(), spec.crit_jitter)),
            });
        }
        if end_of_iter {
            c.chunk = 0;
            c.iter += 1;
            if c.iter == spec.iterations {
                c.queue.push_back(Op::Mark(Mark::RoundEnd));
                if spec.repeat {
                    c.iter = 0;
                } else {
                    c.finished = true;
                }
            }
        }
    }
}

impl Program for PhasedProgram {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn thread_count(&self) -> usize {
        self.spec.threads
    }

    fn next_op(&mut self, tid: usize) -> Op {
        if self.cursors[tid].queue.is_empty() {
            self.refill(tid);
        }
        self.cursors[tid]
            .queue
            .pop_front()
            .expect("refill always enqueues at least one op")
    }

    fn kernel_locks(&self) -> u32 {
        self.spec.kernel_locks
    }

    fn barriers(&self) -> u32 {
        u32::from(self.spec.barrier_every > 0 || self.spec.end_of_iter_barrier)
    }

    fn finite(&self) -> bool {
        !self.spec.repeat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> PhasedSpec {
        PhasedSpec {
            name: "tiny".into(),
            threads: 2,
            iterations: 2,
            chunks_per_iter: 3,
            chunk_compute: Cycles(1_000),
            imbalance: 0.0,
            barrier_every: 2,
            crit_hold: Cycles(100),
            crit_jitter: 0.0,
            kernel_locks: 4,
            end_of_iter_barrier: true,
            pipeline: false,
            pipeline_slack: 0,
            repeat: false,
        }
    }

    /// Drain one thread's op stream to completion.
    fn drain(p: &mut PhasedProgram, tid: usize) -> Vec<Op> {
        let mut ops = Vec::new();
        loop {
            let op = p.next_op(tid);
            if op == Op::Done {
                break;
            }
            ops.push(op);
        }
        ops
    }

    #[test]
    fn structure_matches_spec() {
        let mut p = PhasedProgram::new(tiny_spec(), 1);
        let ops = drain(&mut p, 0);
        let computes = ops.iter().filter(|o| matches!(o, Op::Compute(_))).count();
        let barriers = ops
            .iter()
            .filter(|o| matches!(o, Op::Barrier { .. }))
            .count();
        let crits = ops
            .iter()
            .filter(|o| matches!(o, Op::CriticalSection { .. }))
            .count();
        let marks = ops.iter().filter(|o| matches!(o, Op::Mark(_))).count();
        // 2 iterations x 3 chunks.
        assert_eq!(computes, 6);
        // Global chunks 1..=6; barrier at even chunks (2,4,6) plus
        // end-of-iteration barriers at chunks 3 and 6 (6 already a
        // barrier): chunks 2,3,4,6 -> 4 barriers, crits at 1,5.
        assert_eq!(barriers, 4);
        assert_eq!(crits, 2);
        assert_eq!(marks, 1);
        // After Done, it keeps returning Done.
        assert_eq!(p.next_op(0), Op::Done);
        assert_eq!(p.next_op(0), Op::Done);
    }

    #[test]
    fn all_threads_emit_identical_sync_skeleton() {
        let mut p = PhasedProgram::new(tiny_spec(), 7);
        let shape = |ops: &[Op]| -> Vec<u8> {
            ops.iter()
                .map(|o| match o {
                    Op::Compute(_) => 0,
                    Op::CriticalSection { .. } => 1,
                    Op::Barrier { .. } => 2,
                    Op::Mark(_) => 3,
                    _ => 9,
                })
                .collect()
        };
        let a = shape(&drain(&mut p, 0));
        let b = shape(&drain(&mut p, 1));
        // Barriers must line up across threads or the guest would deadlock.
        assert_eq!(a, b);
    }

    #[test]
    fn repeat_spec_never_finishes() {
        let mut spec = tiny_spec();
        spec.repeat = true;
        let mut p = PhasedProgram::new(spec, 1);
        assert!(!p.finite());
        let mut rounds = 0;
        for _ in 0..10_000 {
            match p.next_op(0) {
                Op::Done => panic!("repeating program must not finish"),
                Op::Mark(Mark::RoundEnd) => rounds += 1,
                _ => {}
            }
        }
        assert!(rounds >= 2, "expected multiple rounds, got {rounds}");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = PhasedProgram::new(tiny_spec(), 99);
        let mut b = PhasedProgram::new(tiny_spec(), 99);
        // Interleave differently; per-thread streams must still agree.
        let ops_a0 = drain(&mut a, 0);
        let ops_a1 = drain(&mut a, 1);
        let ops_b1 = drain(&mut b, 1);
        let ops_b0 = drain(&mut b, 0);
        assert_eq!(ops_a0, ops_b0);
        assert_eq!(ops_a1, ops_b1);
        let mut c = PhasedProgram::new(tiny_spec(), 100);
        assert_ne!(drain(&mut c, 0), ops_a0, "different seed, different jitter");
    }

    #[test]
    fn pipeline_generates_wavefront_ops() {
        let mut spec = tiny_spec();
        spec.pipeline = true;
        spec.barrier_every = 0;
        let mut p = PhasedProgram::new(spec, 3);
        // Thread 0 leads the forward sweep (iteration 0) and follows
        // thread 1 in the backward sweep (iteration 1).
        let ops0 = drain(&mut p, 0);
        let waits0: Vec<(u32, u64)> = ops0
            .iter()
            .filter_map(|o| match o {
                Op::WaitPeer { peer, target } => Some((*peer, *target)),
                _ => None,
            })
            .collect();
        assert_eq!(waits0, vec![(1, 4), (1, 5), (1, 6)], "backward sweep waits");
        let advances0 = ops0.iter().filter(|o| matches!(o, Op::Advance)).count();
        assert_eq!(advances0, 6, "one advance per chunk");
        // Thread 1 waits on thread 0 in the forward sweep, leads the
        // backward one.
        let ops1 = drain(&mut p, 1);
        let targets: Vec<(u32, u64)> = ops1
            .iter()
            .filter_map(|o| match o {
                Op::WaitPeer { peer, target } => Some((*peer, *target)),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![(0, 1), (0, 2), (0, 3)]);
        // No per-chunk critical sections in pipeline mode.
        assert!(ops1
            .iter()
            .all(|o| !matches!(o, Op::CriticalSection { .. })));
        // End-of-iteration barriers remain (2 iterations).
        let barriers = ops1
            .iter()
            .filter(|o| matches!(o, Op::Barrier { .. }))
            .count();
        assert_eq!(barriers, 2);
    }

    #[test]
    fn nominal_compute_is_product() {
        let p = PhasedProgram::new(tiny_spec(), 1);
        assert_eq!(p.nominal_compute_per_round(), Cycles(6_000));
    }

    #[test]
    fn imbalance_jitters_within_band() {
        let mut spec = tiny_spec();
        spec.imbalance = 0.5;
        spec.iterations = 100;
        let mut p = PhasedProgram::new(spec, 5);
        let mut distinct = std::collections::HashSet::new();
        loop {
            match p.next_op(0) {
                Op::Compute(c) => {
                    assert!((500..=1500).contains(&c.as_u64()));
                    distinct.insert(c.as_u64());
                }
                Op::Done => break,
                _ => {}
            }
        }
        assert!(distinct.len() > 10, "jitter should vary chunk sizes");
    }
}
