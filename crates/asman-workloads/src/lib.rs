//! Synthetic workload models for the ASMan reproduction.
//!
//! The paper evaluates three benchmark families on guest VMs:
//!
//! * **NAS Parallel Benchmarks 2.3** (OpenMP C, Class A) as concurrent
//!   workloads — modelled in [`nas`] as phased iteration programs whose
//!   *synchronization structure* (sync interval, barrier/critical-section
//!   mix, load imbalance) matches each benchmark's published character.
//! * **SPECjbb2005** as a contended-throughput probe — modelled in
//!   [`specjbb`] as warehouse threads running transactions against a shared
//!   lock.
//! * **SPEC CPU2000 rate** (176.gcc, 256.bzip2) as synchronization-free
//!   high-throughput workloads — modelled in [`speccpu`].
//!
//! A workload is a [`Program`]: a deterministic per-thread generator of
//! [`Op`]s (compute bursts, kernel critical sections, barriers, sleeps,
//! progress marks). The guest-kernel model executes the ops; the program
//! never sees simulated time, which keeps workload logic independent of
//! scheduling behaviour.
//!
//! Only the *shape* of the computation matters to a CPU scheduler, so
//! compute content is opaque cycle counts. Nominal full-problem ("Class A")
//! run times are scaled about 10× below the paper's wall-clock numbers so
//! the complete evaluation suite simulates quickly; every ratio the paper
//! reports (slowdowns, savings) is unit-free and survives the scaling.

#![warn(missing_docs)]

pub mod background;
pub mod nas;
pub mod ops;
pub mod phased;
pub mod speccpu;
pub mod specjbb;
pub mod synthetic;

pub use background::{BackgroundConfig, BackgroundService};
pub use nas::{NasBenchmark, NasSpec, ProblemClass};
pub use ops::{Mark, Op, Program};
pub use phased::PhasedProgram;
pub use speccpu::{SpecCpuKind, SpecCpuRate};
pub use specjbb::{SpecJbb, SpecJbbConfig};
pub use synthetic::ScriptProgram;
