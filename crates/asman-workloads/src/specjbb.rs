//! SPECjbb2005-like throughput workload.
//!
//! SPECjbb2005 emulates a 3-tier Java business system entirely inside one
//! JVM: `W` warehouse threads execute a transaction mix against
//! district/warehouse tables, with no I/O or network traffic. The paper
//! uses it to measure how scheduling affects a *contended* throughput
//! workload on a 4-VCPU VM while the warehouse count ramps from 1 to 8.
//!
//! The model: each warehouse thread loops over transactions consisting of
//! local computation plus, with some probability, a critical section on a
//! shared structure (stock/order tables guarded by JVM monitors). A
//! contended JVM monitor inflates through the kernel futex path, which is
//! exactly what the paper's Monitoring Module instruments — so the model
//! folds the monitor acquisition into an instrumented kernel critical
//! section. Throughput is counted via [`Mark::Transaction`]
//! (`bops` ≈ transactions/second in the measurement window).

use asman_sim::{Clock, Cycles, SimRng};
use serde::{Deserialize, Serialize};

use crate::ops::{Mark, Op, Program};

/// Tunables for the SPECjbb-like model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpecJbbConfig {
    /// Number of warehouse threads (the paper sweeps 1..=8).
    pub warehouses: usize,
    /// Mean computation per transaction.
    pub tx_compute: Cycles,
    /// Jitter fraction on transaction compute.
    pub tx_jitter: f64,
    /// Probability that a transaction touches a shared table (takes the
    /// global lock).
    pub shared_access_prob: f64,
    /// Mean hold time of the shared lock.
    pub shared_hold: Cycles,
    /// Number of distinct shared locks (lock striping across tables).
    pub shared_locks: u32,
    /// Transactions per warehouse between JVM stop-the-world safepoints
    /// (GC / deoptimization). Every warehouse thread must reach its next
    /// safepoint poll before the VM proceeds — a global barrier, which is
    /// what couples SPECjbb's otherwise independent warehouses to the
    /// scheduler. 0 disables safepoints.
    pub gc_every_tx: u64,
    /// Parallel GC work per thread inside the safepoint.
    pub gc_work: Cycles,
}

impl Default for SpecJbbConfig {
    fn default() -> Self {
        let clk = Clock::default();
        SpecJbbConfig {
            warehouses: 4,
            tx_compute: clk.us(900),
            tx_jitter: 0.5,
            shared_access_prob: 0.45,
            shared_hold: clk.us(60),
            shared_locks: 1,
            gc_every_tx: 40,
            gc_work: clk.ms(3),
        }
    }
}

/// SPECjbb-like program: open-ended transaction streams per warehouse.
pub struct SpecJbb {
    cfg: SpecJbbConfig,
    name: String,
    /// Per-thread: RNG + whether the pending op is the tail of a
    /// transaction (so we interleave compute → [lock] → mark).
    threads: Vec<WarehouseState>,
}

struct WarehouseState {
    rng: SimRng,
    stage: Stage,
    tx_done: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Stage {
    Compute,
    MaybeLock,
    Mark,
    /// Entering the stop-the-world safepoint (barrier in).
    GcEnter,
    /// Parallel GC work inside the pause.
    GcWork,
    /// Leaving the safepoint (barrier out).
    GcExit,
}

impl SpecJbb {
    /// Create the workload with `cfg` and a deterministic seed.
    pub fn new(cfg: SpecJbbConfig, seed: u64) -> Self {
        assert!(cfg.warehouses > 0);
        let mut root = SimRng::new(seed);
        let threads = (0..cfg.warehouses)
            .map(|t| WarehouseState {
                rng: root.fork(t as u64),
                stage: Stage::Compute,
                tx_done: 0,
            })
            .collect();
        SpecJbb {
            name: format!("SPECjbb(w={})", cfg.warehouses),
            cfg,
            threads,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SpecJbbConfig {
        &self.cfg
    }
}

impl Program for SpecJbb {
    fn name(&self) -> &str {
        &self.name
    }

    fn thread_count(&self) -> usize {
        self.cfg.warehouses
    }

    fn next_op(&mut self, tid: usize) -> Op {
        let st = &mut self.threads[tid];
        match st.stage {
            Stage::Compute => {
                st.stage = Stage::MaybeLock;
                Op::Compute(Cycles(
                    st.rng
                        .jitter(self.cfg.tx_compute.as_u64(), self.cfg.tx_jitter),
                ))
            }
            Stage::MaybeLock => {
                st.stage = Stage::Mark;
                if st.rng.chance(self.cfg.shared_access_prob) {
                    Op::CriticalSection {
                        lock: st.rng.below(self.cfg.shared_locks as u64) as u32,
                        hold: Cycles(st.rng.jitter(self.cfg.shared_hold.as_u64(), 0.4)),
                    }
                } else {
                    // No shared access this transaction; fall through with
                    // a tiny bookkeeping compute so every stage yields an op.
                    Op::Compute(Cycles(200))
                }
            }
            Stage::Mark => {
                st.tx_done += 1;
                st.stage = if self.cfg.gc_every_tx > 0
                    && st.tx_done.is_multiple_of(self.cfg.gc_every_tx)
                {
                    Stage::GcEnter
                } else {
                    Stage::Compute
                };
                Op::Mark(Mark::Transaction)
            }
            Stage::GcEnter => {
                st.stage = Stage::GcWork;
                Op::Barrier { id: 0 }
            }
            Stage::GcWork => {
                st.stage = Stage::GcExit;
                Op::Compute(Cycles(st.rng.jitter(self.cfg.gc_work.as_u64(), 0.3)))
            }
            Stage::GcExit => {
                st.stage = Stage::Compute;
                Op::Barrier { id: 0 }
            }
        }
    }

    fn kernel_locks(&self) -> u32 {
        self.cfg.shared_locks
    }

    fn barriers(&self) -> u32 {
        u32::from(self.cfg.gc_every_tx > 0)
    }

    fn finite(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_cycle_repeats() {
        let mut jbb = SpecJbb::new(SpecJbbConfig::default(), 1);
        let mut marks = 0u64;
        let mut locks = 0u64;
        let mut barriers = 0u64;
        let mut ops = 0u64;
        while marks < 1_050 {
            ops += 1;
            match jbb.next_op(0) {
                Op::Mark(Mark::Transaction) => marks += 1,
                Op::CriticalSection { .. } => locks += 1,
                Op::Barrier { .. } => barriers += 1,
                Op::Done => panic!("SPECjbb never finishes"),
                _ => {}
            }
        }
        // Three ops per transaction plus three per safepoint.
        assert_eq!(ops, 3 * marks + 3 * (barriers / 2));
        // ~45% of transactions take the shared lock.
        assert!((380..560).contains(&locks), "lock count {locks}");
        // A stop-the-world safepoint (two barriers) every gc_every_tx.
        assert_eq!(barriers, 2 * (1_050 / SpecJbbConfig::default().gc_every_tx));
    }

    #[test]
    fn warehouses_set_thread_count() {
        for w in 1..=8 {
            let jbb = SpecJbb::new(
                SpecJbbConfig {
                    warehouses: w,
                    ..SpecJbbConfig::default()
                },
                9,
            );
            assert_eq!(jbb.thread_count(), w);
            assert!(!jbb.finite());
        }
    }

    #[test]
    fn per_thread_streams_are_independent() {
        let mut a = SpecJbb::new(SpecJbbConfig::default(), 5);
        let mut b = SpecJbb::new(SpecJbbConfig::default(), 5);
        // Pull thread 1 in a first, thread 0 in b first; streams per thread
        // must be identical regardless of interleaving.
        let a1: Vec<Op> = (0..30).map(|_| a.next_op(1)).collect();
        let _b0: Vec<Op> = (0..30).map(|_| b.next_op(0)).collect();
        let b1: Vec<Op> = (0..30).map(|_| b.next_op(1)).collect();
        assert_eq!(a1, b1);
    }
}
