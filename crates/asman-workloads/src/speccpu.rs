//! SPEC CPU2000-rate-like high-throughput workloads.
//!
//! The paper measures the impact of coscheduling on non-concurrent
//! workloads by running 4 simultaneous copies of 176.gcc or 256.bzip2 in a
//! VM (the SPEC *rate* metric) in a batch loop, and averaging the run
//! times of the first ten rounds. The copies share nothing: the model is
//! pure computation in preemptible chunks with light jitter, plus the
//! occasional short syscall-ish kernel critical section (negligible
//! contention, present so the workload exercises the same guest paths).

use asman_sim::{Clock, Cycles, SimRng};
use serde::{Deserialize, Serialize};

use crate::ops::{Mark, Op, Program};

/// Which SPEC CPU2000 benchmark to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecCpuKind {
    /// 176.gcc — shorter rounds.
    Gcc,
    /// 256.bzip2 — longer rounds.
    Bzip2,
}

impl SpecCpuKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SpecCpuKind::Gcc => "176.gcc",
            SpecCpuKind::Bzip2 => "256.bzip2",
        }
    }

    /// Nominal single-copy round length (scaled ~10× below wall clock,
    /// like the NAS models).
    pub fn round_compute(self) -> Cycles {
        let clk = Clock::default();
        match self {
            SpecCpuKind::Gcc => clk.ms(11_000),   // ~11 s
            SpecCpuKind::Bzip2 => clk.ms(13_500), // ~13.5 s
        }
    }
}

/// SPEC-rate style program: `copies` independent compute streams, each
/// repeatedly running rounds and emitting [`Mark::RoundEnd`].
pub struct SpecCpuRate {
    kind: SpecCpuKind,
    copies: usize,
    chunk: Cycles,
    syscall_every: u32,
    threads: Vec<CopyState>,
}

struct CopyState {
    rng: SimRng,
    remaining: Cycles,
    chunks_done: u32,
    pending_mark: bool,
}

impl SpecCpuRate {
    /// `copies` simultaneous copies of `kind` (the paper uses 4) with a
    /// deterministic seed.
    pub fn new(kind: SpecCpuKind, copies: usize, seed: u64) -> Self {
        assert!(copies > 0);
        let clk = Clock::default();
        let mut root = SimRng::new(seed);
        let threads = (0..copies)
            .map(|t| CopyState {
                rng: root.fork(t as u64),
                remaining: kind.round_compute(),
                chunks_done: 0,
                pending_mark: false,
            })
            .collect();
        SpecCpuRate {
            kind,
            copies,
            chunk: clk.ms(10),
            syscall_every: 8,
            threads,
        }
    }

    /// Which benchmark this models.
    pub fn kind(&self) -> SpecCpuKind {
        self.kind
    }
}

impl Program for SpecCpuRate {
    fn name(&self) -> &str {
        self.kind.name()
    }

    fn thread_count(&self) -> usize {
        self.copies
    }

    fn next_op(&mut self, tid: usize) -> Op {
        let chunk = self.chunk;
        let kind = self.kind;
        let syscall_every = self.syscall_every;
        let st = &mut self.threads[tid];
        if st.pending_mark {
            st.pending_mark = false;
            st.remaining = kind.round_compute();
            return Op::Mark(Mark::RoundEnd);
        }
        if st.remaining.is_zero() {
            st.pending_mark = false;
            st.remaining = kind.round_compute();
            return Op::Mark(Mark::RoundEnd);
        }
        st.chunks_done += 1;
        // Occasional short syscall (page fault, brk, write) — a kernel
        // critical section with negligible hold time on a per-copy lock.
        if st.chunks_done.is_multiple_of(syscall_every) {
            return Op::CriticalSection {
                lock: tid as u32,
                hold: Cycles(st.rng.jitter(800, 0.5)),
            };
        }
        let step = chunk.min(st.remaining);
        st.remaining -= step;
        if st.remaining.is_zero() {
            st.pending_mark = true;
        }
        Op::Compute(Cycles(st.rng.jitter(step.as_u64(), 0.05)))
    }

    fn kernel_locks(&self) -> u32 {
        self.copies as u32
    }

    fn finite(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_emit_marks_with_expected_compute() {
        let mut w = SpecCpuRate::new(SpecCpuKind::Gcc, 1, 4);
        let target = SpecCpuKind::Gcc.round_compute().as_u64() as f64;
        let mut compute = 0u64;
        let mut marks = 0;
        for _ in 0..20_000 {
            match w.next_op(0) {
                Op::Compute(c) => compute += c.as_u64(),
                Op::Mark(Mark::RoundEnd) => {
                    marks += 1;
                    if marks == 1 {
                        // Jitter is ±5% per chunk; the round total must be
                        // within a few percent of nominal.
                        let ratio = compute as f64 / target;
                        assert!((0.93..=1.07).contains(&ratio), "ratio {ratio}");
                    }
                }
                _ => {}
            }
            if marks >= 2 {
                break;
            }
        }
        assert!(marks >= 2, "expected repeated rounds");
    }

    #[test]
    fn bzip2_rounds_are_longer_than_gcc() {
        assert!(SpecCpuKind::Bzip2.round_compute() > SpecCpuKind::Gcc.round_compute());
    }

    #[test]
    fn copies_are_independent_threads() {
        let w = SpecCpuRate::new(SpecCpuKind::Bzip2, 4, 7);
        assert_eq!(w.thread_count(), 4);
        assert_eq!(w.kernel_locks(), 4);
        assert!(!w.finite());
        assert_eq!(w.name(), "256.bzip2");
    }

    #[test]
    fn no_barriers_ever() {
        let mut w = SpecCpuRate::new(SpecCpuKind::Gcc, 2, 1);
        for _ in 0..5_000 {
            for tid in 0..2 {
                assert!(
                    !matches!(w.next_op(tid), Op::Barrier { .. }),
                    "SPEC rate copies never synchronize"
                );
            }
        }
        assert_eq!(w.barriers(), 0);
    }
}
