//! Scripted workloads for tests and microbenchmarks.
//!
//! [`ScriptProgram`] replays a fixed per-thread op list — the workload
//! equivalent of a unit-test fixture. The guest and hypervisor test suites
//! use it to construct exact interleavings (e.g. "thread 0 holds lock 0
//! while thread 1 contends").

use crate::ops::{Op, Program};

/// A workload defined by explicit per-thread op scripts.
pub struct ScriptProgram {
    name: String,
    scripts: Vec<Vec<Op>>,
    pos: Vec<usize>,
    looping: bool,
    kernel_locks: u32,
    barriers: u32,
    semaphores: u32,
}

impl ScriptProgram {
    /// One script per thread; each thread's script is played once and then
    /// the thread reports [`Op::Done`].
    pub fn new(name: impl Into<String>, scripts: Vec<Vec<Op>>) -> Self {
        assert!(!scripts.is_empty(), "need at least one thread");
        let kernel_locks = scripts
            .iter()
            .flatten()
            .filter_map(|op| match op {
                Op::CriticalSection { lock, .. } => Some(lock + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let barriers = scripts
            .iter()
            .flatten()
            .filter_map(|op| match op {
                Op::Barrier { id } => Some(id + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let semaphores = scripts
            .iter()
            .flatten()
            .filter_map(|op| match op {
                Op::SemWait { id } | Op::SemPost { id } => Some(id + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let pos = vec![0; scripts.len()];
        ScriptProgram {
            name: name.into(),
            scripts,
            pos,
            looping: false,
            kernel_locks,
            barriers,
            semaphores,
        }
    }

    /// Make the scripts repeat forever instead of finishing.
    pub fn looping(mut self) -> Self {
        self.looping = true;
        self
    }

    /// Convenience: the same script replicated across `threads` threads.
    pub fn homogeneous(name: impl Into<String>, threads: usize, script: Vec<Op>) -> Self {
        ScriptProgram::new(name, vec![script; threads])
    }
}

impl Program for ScriptProgram {
    fn name(&self) -> &str {
        &self.name
    }

    fn thread_count(&self) -> usize {
        self.scripts.len()
    }

    fn next_op(&mut self, tid: usize) -> Op {
        let script = &self.scripts[tid];
        if self.pos[tid] >= script.len() {
            if self.looping && !script.is_empty() {
                self.pos[tid] = 0;
            } else {
                return Op::Done;
            }
        }
        let op = script[self.pos[tid]];
        self.pos[tid] += 1;
        op
    }

    fn kernel_locks(&self) -> u32 {
        self.kernel_locks
    }

    fn barriers(&self) -> u32 {
        self.barriers
    }

    fn semaphores(&self) -> u32 {
        self.semaphores
    }

    fn finite(&self) -> bool {
        !self.looping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_sim::Cycles;

    #[test]
    fn plays_script_then_done() {
        let mut p = ScriptProgram::new(
            "s",
            vec![vec![Op::Compute(Cycles(5)), Op::Barrier { id: 2 }]],
        );
        assert_eq!(p.next_op(0), Op::Compute(Cycles(5)));
        assert_eq!(p.next_op(0), Op::Barrier { id: 2 });
        assert_eq!(p.next_op(0), Op::Done);
        assert_eq!(p.next_op(0), Op::Done);
    }

    #[test]
    fn infers_resource_counts() {
        let p = ScriptProgram::new(
            "r",
            vec![
                vec![Op::CriticalSection {
                    lock: 3,
                    hold: Cycles(1),
                }],
                vec![Op::Barrier { id: 1 }],
            ],
        );
        assert_eq!(p.kernel_locks(), 4);
        assert_eq!(p.barriers(), 2);
        assert_eq!(p.thread_count(), 2);
    }

    #[test]
    fn looping_replays() {
        let mut p = ScriptProgram::homogeneous("l", 1, vec![Op::Compute(Cycles(1))]).looping();
        for _ in 0..10 {
            assert_eq!(p.next_op(0), Op::Compute(Cycles(1)));
        }
        assert!(!p.finite());
    }

    #[test]
    fn homogeneous_replicates() {
        let mut p = ScriptProgram::homogeneous("h", 3, vec![Op::Sleep(Cycles(2))]);
        for tid in 0..3 {
            assert_eq!(p.next_op(tid), Op::Sleep(Cycles(2)));
            assert_eq!(p.next_op(tid), Op::Done);
        }
    }
}
