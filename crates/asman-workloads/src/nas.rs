//! NAS Parallel Benchmark models (OpenMP C versions, NPB 2.3).
//!
//! The paper runs BT, CG, EP, FT, MG, SP and LU with 4 threads (Class A)
//! as the concurrent workloads. For a CPU scheduler the benchmarks differ
//! only in their *synchronization geometry*: how much computation happens
//! between synchronization points, what fraction of those points are full
//! barriers versus point-to-point/kernel synchronization, and how
//! imbalanced the chunks are. Those geometries are well documented
//! (Feitelson & Rudolph's fine-grain sync studies, the NPB reports, and
//! the paper's own Figure 2/9 orderings) and are encoded below:
//!
//! | bench | sync interval | character |
//! |-------|---------------|-----------|
//! | LU    | ~1.2 ms       | pipelined SSOR sweeps: very fine-grain, mixed point-to-point + barriers — most scheduler-sensitive |
//! | SP    | ~2.2 ms       | ADI sweeps with frequent barriers |
//! | CG    | ~1.5 ms       | dot-product allreduces every few matrix-vector products |
//! | MG    | ~1.0 ms       | V-cycle levels with barriers, short total run |
//! | BT    | ~5 ms         | coarser block-tridiagonal sweeps |
//! | FT    | ~8 ms         | few large all-to-all transposes |
//! | EP    | none          | embarrassingly parallel, one final reduction |
//!
//! Nominal single-round run times are ~10× below the paper's wall clock
//! (see crate docs); `ProblemClass` scales them further for tests/benches.

use asman_sim::{Clock, Cycles};
use serde::{Deserialize, Serialize};

use crate::phased::{PhasedProgram, PhasedSpec};

/// The seven NAS kernels/pseudo-apps used in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum NasBenchmark {
    BT,
    CG,
    EP,
    FT,
    MG,
    SP,
    LU,
}

impl NasBenchmark {
    /// All benchmarks in the order the paper's Figure 9 lists them.
    pub const ALL: [NasBenchmark; 7] = [
        NasBenchmark::BT,
        NasBenchmark::CG,
        NasBenchmark::EP,
        NasBenchmark::FT,
        NasBenchmark::MG,
        NasBenchmark::SP,
        NasBenchmark::LU,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NasBenchmark::BT => "BT",
            NasBenchmark::CG => "CG",
            NasBenchmark::EP => "EP",
            NasBenchmark::FT => "FT",
            NasBenchmark::MG => "MG",
            NasBenchmark::SP => "SP",
            NasBenchmark::LU => "LU",
        }
    }
}

/// Problem-size classes in NPB style. `A` is the paper's configuration
/// (scaled as described in the crate docs); `W` and `S` shrink the
/// iteration counts for benchmarks and unit tests respectively.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProblemClass {
    /// Tiny: for unit tests (seconds of simulated time).
    S,
    /// Workstation: for Criterion benches.
    W,
    /// The full evaluation size.
    A,
}

impl ProblemClass {
    /// Iteration-count divisor for this class.
    pub fn divisor(self) -> u32 {
        match self {
            ProblemClass::S => 50,
            ProblemClass::W => 8,
            ProblemClass::A => 1,
        }
    }
}

/// Fully resolved parameters for one NAS benchmark instance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NasSpec {
    /// The underlying phased-iteration parameters.
    pub phased: PhasedSpec,
    /// Which benchmark this models.
    pub benchmark: NasBenchmark,
    /// The problem class it was scaled for.
    pub class: ProblemClass,
}

impl NasSpec {
    /// Build the spec for `bench` at `class` with `threads` OpenMP threads
    /// (the paper always uses 4, one per VCPU).
    pub fn new(bench: NasBenchmark, class: ProblemClass, threads: usize) -> NasSpec {
        let clk = Clock::default();
        let us = |n: u64| clk.us(n);
        // (iterations, chunks/iter, chunk compute, imbalance,
        //  barrier_every, end_of_iter_barrier, pipeline)
        let (iters, chunks, chunk, imb, bar_every, eob, pipe) = match bench {
            // ~40 s round, wavefront-pipelined SSOR sweeps: thread t
            // spin-waits on thread t−1 every ~1.2 ms, global barrier per
            // iteration. The most scheduler-sensitive code in the suite.
            NasBenchmark::LU => (250, 132, us(1_200), 0.12, 0, false, true),
            // ~35 s round, ADI sweeps: pipelined line solves every
            // ~2.2 ms plus barriers between directions.
            NasBenchmark::SP => (400, 40, us(2_200), 0.10, 13, true, true),
            // ~30 s round, coarser block-tridiagonal sweeps.
            NasBenchmark::BT => (200, 30, us(5_000), 0.08, 3, true, false),
            // ~12 s round, allreduce (barrier) at every sync point.
            NasBenchmark::CG => (375, 21, us(1_500), 0.10, 1, true, false),
            // ~9 s round, fine sync, barrier every 2nd.
            NasBenchmark::MG => (20, 450, us(1_000), 0.15, 2, true, false),
            // ~13 s round, few large transposes.
            NasBenchmark::FT => (6, 270, us(8_000), 0.06, 9, true, false),
            // ~15 s round, no synchronization until the final reduction.
            NasBenchmark::EP => (1, 300, us(50_000), 0.02, 0, true, false),
        };
        let iters = (iters / class.divisor()).max(2);
        let crit_hold = match bench {
            NasBenchmark::EP => Cycles(0),
            _ => Cycles(2_000), // ~0.86 µs kernel critical sections
        };
        NasSpec {
            phased: PhasedSpec {
                name: bench.name().to_string(),
                threads,
                iterations: iters,
                chunks_per_iter: chunks,
                chunk_compute: chunk,
                imbalance: imb,
                barrier_every: bar_every,
                crit_hold,
                crit_jitter: 0.5,
                kernel_locks: 4,
                end_of_iter_barrier: eob,
                pipeline: pipe,
                pipeline_slack: if pipe { 2 } else { 0 },
                repeat: false,
            },
            benchmark: bench,
            class,
        }
    }

    /// Switch the spec into repeated-round mode (for the multi-VM
    /// experiments where each benchmark reruns in a batch loop).
    pub fn repeating(mut self) -> NasSpec {
        self.phased.repeat = true;
        self
    }

    /// Instantiate the program with a deterministic seed.
    pub fn build(&self, seed: u64) -> PhasedProgram {
        PhasedProgram::new(self.phased.clone(), seed)
    }

    /// Expected round time in seconds with no scheduler interference
    /// (compute only) — a lower bound used by tests and calibration.
    pub fn ideal_round_secs(&self) -> f64 {
        let clk = Clock::default();
        clk.to_secs(
            self.phased.chunk_compute
                * self.phased.chunks_per_iter as u64
                * self.phased.iterations as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Op, Program};

    #[test]
    fn class_a_round_times_are_in_band() {
        // Single-round ideal times should sit in the tens of seconds, with
        // LU the longest sync-heavy code.
        for b in NasBenchmark::ALL {
            let s = NasSpec::new(b, ProblemClass::A, 4);
            let t = s.ideal_round_secs();
            assert!(
                (5.0..=60.0).contains(&t),
                "{} ideal round {t:.1}s out of band",
                b.name()
            );
        }
    }

    #[test]
    fn lu_is_most_sync_intensive() {
        let sync_rate = |b: NasBenchmark| {
            let s = NasSpec::new(b, ProblemClass::A, 4);
            let total_syncs = (s.phased.iterations as u64) * (s.phased.chunks_per_iter as u64);
            total_syncs as f64 / s.ideal_round_secs()
        };
        let lu = sync_rate(NasBenchmark::LU);
        for b in [NasBenchmark::BT, NasBenchmark::FT, NasBenchmark::EP] {
            assert!(
                lu > sync_rate(b) * 2.0,
                "LU must sync much more often than {}",
                b.name()
            );
        }
    }

    #[test]
    fn ep_has_no_critical_sections_and_one_barrier() {
        let s = NasSpec::new(NasBenchmark::EP, ProblemClass::S, 2);
        let mut p = s.build(3);
        let mut barriers = 0;
        loop {
            match p.next_op(0) {
                Op::CriticalSection { .. } => panic!("EP must not take kernel locks"),
                Op::Barrier { .. } => barriers += 1,
                Op::Done => break,
                _ => {}
            }
        }
        // One barrier per iteration only (end-of-iteration reduction).
        assert_eq!(barriers as u32, s.phased.iterations);
    }

    #[test]
    fn class_scaling_shrinks_iterations() {
        let a = NasSpec::new(NasBenchmark::LU, ProblemClass::A, 4);
        let w = NasSpec::new(NasBenchmark::LU, ProblemClass::W, 4);
        let s = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4);
        assert!(a.phased.iterations > w.phased.iterations);
        assert!(w.phased.iterations > s.phased.iterations);
        assert!(s.phased.iterations >= 2);
    }

    #[test]
    fn repeating_flips_finiteness() {
        let spec = NasSpec::new(NasBenchmark::SP, ProblemClass::S, 4);
        assert!(spec.build(1).finite());
        assert!(!spec.repeating().build(1).finite());
    }
}
