//! Deterministic VM-churn plans for the cluster layer.
//!
//! A [`ChurnPlan`] schedules VM arrivals and departures at cluster
//! epoch boundaries, the workload counterpart of the fault layer's
//! `FaultPlan`. The same two properties make churn safe to mix into a
//! reproducible simulation:
//!
//! * **Determinism** — a plan is a plain sorted list of events; the
//!   cluster driver consumes it with no further randomness, so a
//!   churned run is exactly as replayable as a static-population one.
//! * **Stream isolation** — randomly generated plans draw from their
//!   own forked RNG stream ([`ChurnPlan::generate`]), never from the
//!   workload or fault streams. Arming churn therefore cannot perturb
//!   a single workload or fault draw.
//!
//! Plans are written in a tiny comma-separated DSL, one token per
//! event:
//!
//! ```text
//! arrive@3:gang3        a 3-VCPU gang VM arrives at the epoch-3 boundary
//! arrive@5:bg2:w384     a 2-VCPU background VM with weight 384 at epoch 5
//! depart@8:h0:v1        the second live VM on host 0 departs at epoch 8
//! rand:42:5             seed-generated plan, ~5% arrival + ~5% departure
//!                       chance per epoch (whole spec, no commas;
//!                       `churn:42:5` is an accepted alias)
//! ```
//!
//! A departure names its victim *positionally*: `v`V selects the V-th
//! live (non-departed) VM resident on the host at that boundary, in
//! cluster-id order, wrapping modulo the count. Positional selection is
//! what lets a generated plan stay valid no matter how earlier events
//! reshaped the population; a departure aimed at a host with no live
//! VMs is skipped (and counted) rather than failing the run.

use asman_sim::SimRng;
use serde::Serialize;

/// Stream index mixed into [`SimRng::fork`] for churn draws. Distinct
/// from the workload streams and the fault layer's `FAULT_STREAM`.
const CHURN_STREAM: u64 = 0xC4A2_7002;

/// Workload shape of an arriving VM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ShapeKind {
    /// A concurrent (gang) VM: spinlock-coupled VCPUs that want
    /// coscheduling (the scenario layer's gang program).
    Gang,
    /// A quiet background service: compute bursts between long sleeps.
    Background,
}

impl ShapeKind {
    /// Stable name prefix for VMs created from this shape.
    pub fn prefix(self) -> &'static str {
        match self {
            ShapeKind::Gang => "gang",
            ShapeKind::Background => "bg",
        }
    }
}

/// Full shape of an arriving VM: what it runs and how big it is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct VmShape {
    /// Workload kind.
    pub kind: ShapeKind,
    /// VCPU count (must fit the destination host's PCPUs to be
    /// admitted).
    pub vcpus: usize,
    /// Proportional-share weight.
    pub weight: u32,
}

/// One kind of churn event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ChurnKind {
    /// A VM of the given shape arrives and is admission-placed on the
    /// least-loaded healthy host that fits it.
    Arrive {
        /// What arrives.
        shape: VmShape,
    },
    /// The `slot`-th live VM on `host` (cluster-id order, wrapping
    /// modulo the live count) shuts down and leaves the cluster.
    Depart {
        /// Host the victim resides on.
        host: usize,
        /// Positional index into the host's live VMs.
        slot: usize,
    },
}

/// One scheduled churn event: `kind` fires at the boundary of `epoch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct ChurnEvent {
    /// Cluster epoch (0-based) at whose boundary the event fires.
    pub epoch: u64,
    /// What happens.
    pub kind: ChurnKind,
}

/// A deterministic schedule of arrivals and departures, sorted by
/// epoch (stable: same-epoch events keep their written order).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ChurnPlan {
    /// Events in nondecreasing epoch order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// The empty plan (a static population).
    pub fn empty() -> ChurnPlan {
        ChurnPlan { events: Vec::new() }
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parse the explicit DSL: comma-separated `arrive@E:gangN[:wW]`,
    /// `arrive@E:bgN[:wW]` and `depart@E:hH:vV` tokens.
    pub fn parse(s: &str) -> Result<ChurnPlan, String> {
        let mut events = Vec::new();
        for tok in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            events.push(parse_token(tok)?);
        }
        if events.is_empty() {
            return Err(format!("churn plan '{s}' contains no events"));
        }
        let mut plan = ChurnPlan { events };
        plan.normalize();
        Ok(plan)
    }

    /// Generate a plan from a seed, drawing only from a forked churn
    /// stream. Each epoch independently has a `rate_pct`% chance of one
    /// arrival (random shape: 2–3 VCPU gang or 1–2 VCPU background,
    /// random weight) and a `rate_pct`% chance of one departure
    /// (random host, positional victim). Expected population drift is
    /// zero, so a long soak neither empties nor floods the cluster.
    pub fn generate(seed: u64, rate_pct: u32, epochs: u64, hosts: usize) -> ChurnPlan {
        assert!((1..=100).contains(&rate_pct), "churn rate must be 1..=100");
        let mut rng = SimRng::new(seed).fork(CHURN_STREAM);
        let p = rate_pct as f64 / 100.0;
        let mut events = Vec::new();
        for epoch in 0..epochs {
            if rng.chance(p) {
                let kind = if rng.chance(0.5) {
                    ShapeKind::Gang
                } else {
                    ShapeKind::Background
                };
                let vcpus = match kind {
                    ShapeKind::Gang => 2 + rng.index(2),
                    ShapeKind::Background => 1 + rng.index(2),
                };
                let weight = rng.range(128, 513) as u32;
                events.push(ChurnEvent {
                    epoch,
                    kind: ChurnKind::Arrive {
                        shape: VmShape {
                            kind,
                            vcpus,
                            weight,
                        },
                    },
                });
            }
            if rng.chance(p) {
                events.push(ChurnEvent {
                    epoch,
                    kind: ChurnKind::Depart {
                        host: rng.index(hosts.max(1)),
                        slot: rng.index(8),
                    },
                });
            }
        }
        let mut plan = ChurnPlan { events };
        plan.normalize();
        plan
    }

    /// Churn events firing at this epoch boundary, in plan order.
    pub fn events_at(&self, epoch: u64) -> impl Iterator<Item = ChurnKind> + '_ {
        self.events
            .iter()
            .filter(move |e| e.epoch == epoch)
            .map(|e| e.kind)
    }

    /// Scheduled arrivals over the whole plan.
    pub fn arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, ChurnKind::Arrive { .. }))
            .count()
    }

    /// Scheduled departures over the whole plan.
    pub fn departures(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, ChurnKind::Depart { .. }))
            .count()
    }

    /// Largest host index any departure names (for CLI validation;
    /// arrivals are placed by admission control and name no host).
    pub fn max_host(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                ChurnKind::Depart { host, .. } => Some(host),
                ChurnKind::Arrive { .. } => None,
            })
            .max()
    }

    fn normalize(&mut self) {
        // Stable: same-epoch events keep their written order.
        self.events.sort_by_key(|e| e.epoch);
    }
}

/// A churn specification as given on the command line: either an
/// explicit plan or a seed + rate to generate one from. Resolution is
/// deferred so the generated plan can scale with the run's epoch and
/// host counts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum ChurnSpec {
    /// A plan written out in the DSL.
    Explicit(ChurnPlan),
    /// `rand:SEED:RATE` — generate with [`ChurnPlan::generate`].
    Random {
        /// Seed for the (forked) churn stream.
        seed: u64,
        /// Per-epoch arrival and departure chance in percent.
        rate_pct: u32,
    },
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec::Explicit(ChurnPlan::empty())
    }
}

impl ChurnSpec {
    /// Parse a `--churn` argument.
    pub fn parse(s: &str) -> Result<ChurnSpec, String> {
        let tail = s.strip_prefix("rand:").or_else(|| s.strip_prefix("churn:"));
        if let Some(tail) = tail {
            let (seed, rate) = tail
                .split_once(':')
                .ok_or_else(|| format!("bad churn spec '{s}' (want rand:SEED:RATE)"))?;
            let seed: u64 = seed
                .parse()
                .map_err(|_| format!("bad churn seed '{seed}' (want rand:SEED:RATE)"))?;
            let rate_pct: u32 = rate
                .parse()
                .map_err(|_| format!("bad churn rate '{rate}' (want rand:SEED:RATE)"))?;
            if !(1..=100).contains(&rate_pct) {
                return Err(format!("churn rate must be 1..=100, got {rate_pct}"));
            }
            return Ok(ChurnSpec::Random { seed, rate_pct });
        }
        ChurnPlan::parse(s).map(ChurnSpec::Explicit)
    }

    /// Resolve to a concrete plan for a run of the given shape.
    pub fn resolve(&self, epochs: u64, hosts: usize) -> ChurnPlan {
        match self {
            ChurnSpec::Explicit(plan) => plan.clone(),
            ChurnSpec::Random { seed, rate_pct } => {
                ChurnPlan::generate(*seed, *rate_pct, epochs, hosts)
            }
        }
    }

    /// True when no churn event can ever fire.
    pub fn is_empty(&self) -> bool {
        match self {
            ChurnSpec::Explicit(plan) => plan.is_empty(),
            ChurnSpec::Random { .. } => false,
        }
    }
}

fn parse_token(tok: &str) -> Result<ChurnEvent, String> {
    let (kind, rest) = tok
        .split_once('@')
        .ok_or_else(|| format!("bad churn token '{tok}' (want kind@epoch:args)"))?;
    let mut parts = rest.split(':');
    let epoch: u64 = parts
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| format!("bad epoch in churn token '{tok}'"))?;
    let ev = match kind {
        "arrive" => {
            let shape = parts
                .next()
                .ok_or_else(|| format!("arrive token '{tok}' needs a shape (gangN or bgN)"))?;
            let (kind, vcpus) = if let Some(v) = shape.strip_prefix("gang") {
                (ShapeKind::Gang, v)
            } else if let Some(v) = shape.strip_prefix("bg") {
                (ShapeKind::Background, v)
            } else {
                return Err(format!(
                    "bad shape '{shape}' in churn token '{tok}' (want gangN or bgN)"
                ));
            };
            let vcpus: usize = vcpus
                .parse()
                .map_err(|_| format!("bad VCPU count in churn token '{tok}'"))?;
            if vcpus == 0 {
                return Err(format!("arriving VM needs at least 1 VCPU in '{tok}'"));
            }
            let weight = match parts.next() {
                Some(w) => w
                    .strip_prefix('w')
                    .and_then(|w| w.parse().ok())
                    .filter(|&w| w > 0)
                    .ok_or_else(|| {
                        format!("bad weight in churn token '{tok}' (want w1, w256, ...)")
                    })?,
                None => 256,
            };
            if parts.next().is_some() {
                return Err(format!(
                    "arrive takes shape and optional weight, got '{tok}'"
                ));
            }
            ChurnEvent {
                epoch,
                kind: ChurnKind::Arrive {
                    shape: VmShape {
                        kind,
                        vcpus,
                        weight,
                    },
                },
            }
        }
        "depart" => {
            let host = parts
                .next()
                .and_then(|p| p.strip_prefix('h'))
                .and_then(|h| h.parse().ok())
                .ok_or_else(|| format!("bad host in churn token '{tok}' (want h0, h1, ...)"))?;
            let slot = parts
                .next()
                .and_then(|p| p.strip_prefix('v'))
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("bad victim in churn token '{tok}' (want v0, v1, ...)"))?;
            if parts.next().is_some() {
                return Err(format!("depart takes host and victim, got '{tok}'"));
            }
            ChurnEvent {
                epoch,
                kind: ChurnKind::Depart { host, slot },
            }
        }
        _ => {
            return Err(format!(
                "unknown churn kind '{kind}' (known: arrive, depart)"
            ))
        }
    };
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsl_round_trip() {
        let plan = ChurnPlan::parse("depart@8:h0:v1, arrive@3:gang3 ,arrive@5:bg2:w384").unwrap();
        assert_eq!(plan.events.len(), 3);
        // Sorted by epoch.
        assert_eq!(
            plan.events[0].kind,
            ChurnKind::Arrive {
                shape: VmShape {
                    kind: ShapeKind::Gang,
                    vcpus: 3,
                    weight: 256
                }
            }
        );
        assert_eq!(
            plan.events[1].kind,
            ChurnKind::Arrive {
                shape: VmShape {
                    kind: ShapeKind::Background,
                    vcpus: 2,
                    weight: 384
                }
            }
        );
        assert_eq!(plan.events[2].kind, ChurnKind::Depart { host: 0, slot: 1 });
        assert_eq!(plan.max_host(), Some(0));
        assert_eq!((plan.arrivals(), plan.departures()), (2, 1));
        assert_eq!(plan.events_at(8).count(), 1);
        assert_eq!(plan.events_at(9).count(), 0);
    }

    #[test]
    fn dsl_rejects_malformed_tokens() {
        for bad in [
            "",
            "boom@1:gang2",
            "arrive@x:gang2",
            "arrive@1",
            "arrive@1:vm2",
            "arrive@1:gang0",
            "arrive@1:gangx",
            "arrive@1:gang2:384",
            "arrive@1:gang2:w0",
            "arrive@1:gang2:w256:extra",
            "depart@1",
            "depart@1:h0",
            "depart@1:0:v1",
            "depart@1:h0:1",
            "depart@1:h0:v1:extra",
        ] {
            assert!(ChurnPlan::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn spec_parses_random_aliases_and_explicit() {
        assert_eq!(
            ChurnSpec::parse("rand:77:5").unwrap(),
            ChurnSpec::Random {
                seed: 77,
                rate_pct: 5
            }
        );
        assert_eq!(
            ChurnSpec::parse("churn:77:5").unwrap(),
            ChurnSpec::Random {
                seed: 77,
                rate_pct: 5
            }
        );
        assert!(ChurnSpec::parse("rand:77").is_err());
        assert!(ChurnSpec::parse("rand:x:5").is_err());
        assert!(ChurnSpec::parse("rand:77:0").is_err());
        assert!(ChurnSpec::parse("rand:77:101").is_err());
        let spec = ChurnSpec::parse("arrive@0:bg1").unwrap();
        assert!(!spec.is_empty());
        assert!(ChurnSpec::default().is_empty());
        assert_eq!(
            ChurnSpec::Random {
                seed: 9,
                rate_pct: 10
            }
            .resolve(50, 3),
            ChurnPlan::generate(9, 10, 50, 3)
        );
    }

    #[test]
    fn generated_plans_are_deterministic_and_in_range() {
        let a = ChurnPlan::generate(9, 10, 200, 4);
        let b = ChurnPlan::generate(9, 10, 200, 4);
        assert_eq!(a, b, "same seed, same plan");
        let c = ChurnPlan::generate(10, 10, 200, 4);
        assert_ne!(a, c, "different seed must perturb the plan");
        assert!(
            !a.is_empty(),
            "10% over 200 epochs fires essentially always"
        );
        for e in &a.events {
            assert!(e.epoch < 200);
            match e.kind {
                ChurnKind::Arrive { shape } => {
                    match shape.kind {
                        ShapeKind::Gang => assert!((2..=3).contains(&shape.vcpus)),
                        ShapeKind::Background => assert!((1..=2).contains(&shape.vcpus)),
                    }
                    assert!((128..=512).contains(&shape.weight));
                }
                ChurnKind::Depart { host, slot } => {
                    assert!(host < 4);
                    assert!(slot < 8);
                }
            }
        }
        assert!(a.events.windows(2).all(|w| w[0].epoch <= w[1].epoch));
        // Zero expected drift: arrivals and departures are drawn at the
        // same rate, so neither count dwarfs the other.
        let (arr, dep) = (a.arrivals() as f64, a.departures() as f64);
        assert!(arr > 0.0 && dep > 0.0);
        assert!((arr / dep) < 3.0 && (dep / arr) < 3.0);
    }
}
