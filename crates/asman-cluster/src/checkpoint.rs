//! Epoch-boundary checkpoint capture, validation and authoritative
//! restore for the cluster driver.
//!
//! The simulator is deterministic, so a checkpoint does not need to
//! serialize the machine microstate (event queues, guest kernels, RNG
//! words, telemetry rings): replaying epochs `0..E` from the recorded
//! configuration reconstructs all of it bit-exactly. What the artifact
//! *does* carry, exactly and authoritatively, is:
//!
//! * the **configuration** needed to rebuild the cluster — scenario
//!   shape, policy, cost model, and the fault/churn plans already
//!   *resolved* to explicit event lists (a `rand:SEED` spec resolved
//!   against a different horizon would silently change the schedule);
//! * the **cluster control state** at epoch `E` — every registry entry,
//!   host health, the ordered set of live retry chains (each with its
//!   due epoch and attempt count), migration/abort/evacuation records,
//!   churn and recovery counters, and the span allocator;
//! * per-host **state fingerprints** ([`Machine::state_fingerprint`])
//!   plus a combined [`Cluster::state_digest`], so restore can *prove*
//!   the replay reconverged before continuing.
//!
//! Restore = rebuild from the configuration, replay to `E`, validate
//! the replayed state against the artifact field-by-field
//! ([`Checkpoint::validate`]), then **apply** the artifact's control
//! state over the replayed one ([`Checkpoint::apply`]). Applying makes
//! every serialized field load-bearing: a checkpoint that dropped (or
//! corrupted) a field produces a continuation that diverges from the
//! straight-through run, which is exactly what the round-trip test
//! battery asserts. The same field-by-field comparator doubles as the
//! divergence detector of the `repro bisect` driver.

use crate::balancer::Policy;
use crate::churn::{ChurnEvent, ChurnKind, ChurnPlan, ShapeKind, VmShape};
use crate::migration::{AbortRecord, MigrationModel, MigrationRecord};
use crate::scenario::{consolidation_cluster, ConsolidationSpec};
use crate::{Cluster, ClusterConfig, HostHealth, PendingRetry, VmEntry, VmRow};
use asman_sim::{Cycles, FaultEvent, FaultKind, FaultPlan, Fnv};
use serde::{Serialize, Value};

/// Artifact type tag (`"kind"` field of every checkpoint file).
pub const CKPT_KIND: &str = "asman-ckpt";

/// Current checkpoint schema version. Bump on any incompatible change
/// to the serialized form; [`Checkpoint::from_value`] reads versions
/// `1..=CKPT_VERSION` and rejects anything else with a clear error —
/// silent misinterpretation of state is strictly worse than a refusal.
///
/// Version history:
/// * **1** — `state.pending` is a single retry chain (object) or null;
///   the config carries no move budget.
/// * **2** — `state.pending` is the ordered array of live retry chains
///   (multi-move planning) and the config records `max_moves`. A
///   version-1 artifact decodes as a set of ≤ 1 chains with the budget
///   defaulting to 1, which reproduces its original semantics exactly.
pub const CKPT_VERSION: u64 = 2;

/// Everything needed to rebuild the cluster a checkpoint was taken
/// from: the consolidation scenario, the driver configuration, and the
/// fault/churn plans **resolved** to explicit event lists.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Scenario shape (hosts, gangs, PCPUs, seed).
    pub scenario: ConsolidationSpec,
    /// Epoch length in milliseconds.
    pub epoch_ms: u64,
    /// Run horizon the plans were resolved against.
    pub epochs: u64,
    /// Placement policy.
    pub policy: Policy,
    /// Post-migration cooldown in epochs.
    pub cooldown_epochs: u64,
    /// Retry-chain attempt cap.
    pub retry_cap: u32,
    /// Auditor cadence in epochs.
    pub audit_every: u64,
    /// Migration cost model.
    pub model: MigrationModel,
    /// Resolved fault schedule.
    pub faults: FaultPlan,
    /// Resolved churn schedule.
    pub churn: ChurnPlan,
    /// Whether tombstone slot reuse was enabled.
    pub slot_reuse: bool,
    /// Series-ring capacity; `0` means series sampling was off.
    pub series_capacity: usize,
    /// Per-epoch migration budget (version-1 artifacts, which predate
    /// multi-move planning, decode as 1).
    pub max_moves: usize,
}

impl CheckpointConfig {
    /// Rebuild a fresh cluster at epoch 0 from this configuration.
    /// `jobs` is deliberately *not* part of the checkpoint: results are
    /// bit-identical for every worker count, so the restoring side
    /// picks its own.
    pub fn build_cluster(&self, jobs: usize) -> Cluster {
        let cfg = ClusterConfig {
            epoch_ms: self.epoch_ms,
            epochs: self.epochs,
            policy: self.policy,
            model: self.model,
            cooldown_epochs: self.cooldown_epochs,
            faults: self.faults.clone(),
            retry_cap: self.retry_cap,
            churn: self.churn.clone(),
            audit_every: self.audit_every,
            jobs,
            max_moves: self.max_moves,
        };
        let mut c = consolidation_cluster(cfg, &self.scenario);
        if self.slot_reuse {
            c.enable_slot_reuse();
        }
        if self.series_capacity > 0 {
            c.enable_series(self.series_capacity);
        }
        c
    }

    /// Serialize to the artifact's `config` section.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("hosts".to_string(), self.scenario.hosts.to_value()),
            ("gangs".to_string(), self.scenario.gangs.to_value()),
            ("pcpus".to_string(), self.scenario.pcpus.to_value()),
            ("seed".to_string(), self.scenario.seed.to_value()),
            ("epoch_ms".to_string(), self.epoch_ms.to_value()),
            ("epochs".to_string(), self.epochs.to_value()),
            (
                "policy".to_string(),
                Value::Str(self.policy.label().to_string()),
            ),
            (
                "cooldown_epochs".to_string(),
                self.cooldown_epochs.to_value(),
            ),
            ("retry_cap".to_string(), self.retry_cap.to_value()),
            ("audit_every".to_string(), self.audit_every.to_value()),
            ("model".to_string(), self.model.to_value()),
            ("faults".to_string(), self.faults.to_value()),
            ("churn".to_string(), self.churn.to_value()),
            ("slot_reuse".to_string(), self.slot_reuse.to_value()),
            (
                "series_capacity".to_string(),
                self.series_capacity.to_value(),
            ),
            ("max_moves".to_string(), self.max_moves.to_value()),
        ])
    }

    /// Decode the artifact's `config` section.
    pub fn from_value(v: &Value) -> Result<CheckpointConfig, String> {
        let p = "config";
        let policy_label = get_str(v, "policy", p)?;
        let policy = Policy::parse(policy_label)
            .ok_or_else(|| format!("{p}.policy: unknown policy '{policy_label}'"))?;
        let model_v = need(v, "model", p)?;
        let model = MigrationModel {
            base_pages: get_u64(model_v, "base_pages", "config.model")?,
            dirty_pages_per_mcycle: get_u64(model_v, "dirty_pages_per_mcycle", "config.model")?,
            copy_cycles_per_page: get_u64(model_v, "copy_cycles_per_page", "config.model")?,
            downtime_base: Cycles(get_u64(model_v, "downtime_base", "config.model")?),
        };
        Ok(CheckpointConfig {
            scenario: ConsolidationSpec {
                hosts: get_usize(v, "hosts", p)?,
                gangs: get_usize(v, "gangs", p)?,
                pcpus: get_usize(v, "pcpus", p)?,
                seed: get_u64(v, "seed", p)?,
            },
            epoch_ms: get_u64(v, "epoch_ms", p)?,
            epochs: get_u64(v, "epochs", p)?,
            policy,
            cooldown_epochs: get_u64(v, "cooldown_epochs", p)?,
            retry_cap: get_u32(v, "retry_cap", p)?,
            audit_every: get_u64(v, "audit_every", p)?,
            model,
            faults: decode_fault_plan(need(v, "faults", p)?)?,
            churn: decode_churn_plan(need(v, "churn", p)?)?,
            slot_reuse: get_bool(v, "slot_reuse", p)?,
            series_capacity: get_usize(v, "series_capacity", p)?,
            // Absent in version-1 artifacts, which ran the historical
            // single-slot driver: default to a budget of 1.
            max_moves: match v.get("max_moves") {
                Some(_) => get_usize(v, "max_moves", p)?,
                None => 1,
            },
        })
    }
}

/// Registry entry of one VM as captured in the artifact — a one-to-one
/// mirror of the cluster's internal entry. Every field here is applied
/// authoritatively on restore, so dropping one from the schema makes
/// the continuation observably diverge (the round-trip battery tests
/// exactly that, field by field).
#[derive(Clone, Debug, PartialEq)]
pub struct VmEntryState {
    /// VM name.
    pub name: String,
    /// Current host.
    pub host: usize,
    /// Host-local slot.
    pub local: usize,
    /// VCPU count.
    pub vcpus: usize,
    /// Epoch of the last migration/arrival (cooldown anchor).
    pub last_migration: Option<u64>,
    /// Times the VM was live-migrated.
    pub migrations: u64,
    /// Spin-counter baseline of the delta pipeline.
    pub prev_spin: u64,
    /// VCRD-HIGH baseline.
    pub prev_vcrd_high: u64,
    /// Online-cycles baseline.
    pub prev_online: u64,
    /// Spin delta of the checkpoint epoch.
    pub spin_delta: u64,
    /// VCRD-HIGH delta of the checkpoint epoch.
    pub vcrd_high_delta: u64,
    /// Online delta of the checkpoint epoch.
    pub online_delta: u64,
    /// Attempts spent by the current (or last) retry chain.
    pub attempts: u32,
    /// The retry chain exhausted its cap.
    pub gave_up: bool,
    /// The VM left the cluster.
    pub departed: bool,
    /// Report row frozen at departure.
    pub final_row: Option<VmRow>,
}

/// One in-flight retry chain as captured in the artifact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PendingState {
    /// Cluster-wide VM id being moved.
    pub vm: usize,
    /// Destination host.
    pub to: usize,
    /// Epoch at whose boundary the retry may run (mid-countdown!).
    pub due: u64,
    /// Attempts already made.
    pub attempts: u32,
    /// Causal span id of the chain.
    pub span: u32,
}

/// The cluster's complete serial control state at an epoch boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterState {
    /// Epochs run (the checkpoint epoch `E`).
    pub epoch: u64,
    /// Health of every host.
    pub health: Vec<HostHealth>,
    /// Every registry entry, cluster-id order.
    pub vms: Vec<VmEntryState>,
    /// Live retry chains, FIFO by chain age (version-2 artifacts encode
    /// the ordered array; version-1 artifacts encode null or a single
    /// object and decode as a set of ≤ 1).
    pub pending: Vec<PendingState>,
    /// Migrations executed so far.
    pub records: Vec<MigrationRecord>,
    /// Aborted attempts so far.
    pub aborts: Vec<AbortRecord>,
    /// Crash evacuations so far.
    pub evacuations: Vec<MigrationRecord>,
    /// Retry chains that eventually committed.
    pub retries_committed: u64,
    /// Retry chains abandoned mid-flight.
    pub retries_abandoned: u64,
    /// VMs whose chains exhausted the cap.
    pub gave_up: u64,
    /// Churn arrivals admitted.
    pub arrivals: u64,
    /// Churn departures executed.
    pub departures: u64,
    /// Arrivals rejected by admission control.
    pub arrivals_rejected: u64,
    /// Departures skipped (no live VM on the named host).
    pub departures_skipped: u64,
    /// Departed VMs whose program had finished.
    pub departed_finished: u64,
    /// Next causal migration-span id.
    pub next_span: u32,
}

impl ClusterState {
    /// Serialize to the artifact's `state` section.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("epoch".to_string(), self.epoch.to_value()),
            ("health".to_string(), self.health.to_value()),
            (
                "vms".to_string(),
                Value::Array(self.vms.iter().map(vm_entry_to_value).collect()),
            ),
            (
                "pending".to_string(),
                Value::Array(self.pending.iter().map(pending_to_value).collect()),
            ),
            ("records".to_string(), self.records.to_value()),
            ("aborts".to_string(), self.aborts.to_value()),
            ("evacuations".to_string(), self.evacuations.to_value()),
            (
                "retries_committed".to_string(),
                self.retries_committed.to_value(),
            ),
            (
                "retries_abandoned".to_string(),
                self.retries_abandoned.to_value(),
            ),
            ("gave_up".to_string(), self.gave_up.to_value()),
            ("arrivals".to_string(), self.arrivals.to_value()),
            ("departures".to_string(), self.departures.to_value()),
            (
                "arrivals_rejected".to_string(),
                self.arrivals_rejected.to_value(),
            ),
            (
                "departures_skipped".to_string(),
                self.departures_skipped.to_value(),
            ),
            (
                "departed_finished".to_string(),
                self.departed_finished.to_value(),
            ),
            ("next_span".to_string(), self.next_span.to_value()),
        ])
    }

    /// Decode the artifact's `state` section.
    pub fn from_value(v: &Value) -> Result<ClusterState, String> {
        let p = "state";
        let health_v = need(v, "health", p)?
            .as_array()
            .ok_or_else(|| format!("{p}.health: not an array"))?;
        let health = health_v
            .iter()
            .enumerate()
            .map(|(i, h)| decode_health(h, &format!("{p}.health[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let vms_v = need(v, "vms", p)?
            .as_array()
            .ok_or_else(|| format!("{p}.vms: not an array"))?;
        let vms = vms_v
            .iter()
            .enumerate()
            .map(|(i, e)| decode_vm_entry(e, &format!("{p}.vms[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let pending_v = need(v, "pending", p)?;
        let pending = match pending_v {
            // Version 1: no chain backing off.
            Value::Null => Vec::new(),
            // Version 2: the ordered chain set.
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, x)| decode_pending(x, &format!("{p}.pending[{i}]")))
                .collect::<Result<Vec<_>, _>>()?,
            // Version 1: the single chain object.
            _ => vec![decode_pending(pending_v, &format!("{p}.pending"))?],
        };
        Ok(ClusterState {
            epoch: get_u64(v, "epoch", p)?,
            health,
            vms,
            pending,
            records: decode_migration_records(need(v, "records", p)?, "state.records")?,
            aborts: decode_abort_records(need(v, "aborts", p)?, "state.aborts")?,
            evacuations: decode_migration_records(
                need(v, "evacuations", p)?,
                "state.evacuations",
            )?,
            retries_committed: get_u64(v, "retries_committed", p)?,
            retries_abandoned: get_u64(v, "retries_abandoned", p)?,
            gave_up: get_u64(v, "gave_up", p)?,
            arrivals: get_u64(v, "arrivals", p)?,
            departures: get_u64(v, "departures", p)?,
            arrivals_rejected: get_u64(v, "arrivals_rejected", p)?,
            departures_skipped: get_u64(v, "departures_skipped", p)?,
            departed_finished: get_u64(v, "departed_finished", p)?,
            next_span: get_u32(v, "next_span", p)?,
        })
    }
}

/// One complete checkpoint: configuration, control state, per-host
/// machine fingerprints, and the combined state digest.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Rebuild configuration.
    pub config: CheckpointConfig,
    /// Cluster control state at the checkpoint epoch.
    pub state: ClusterState,
    /// Per-host [`Machine::state_fingerprint`] values at the boundary.
    pub hosts: Vec<u64>,
    /// [`Cluster::state_digest`] at the boundary.
    pub digest: u64,
}

impl Checkpoint {
    /// Capture a checkpoint of `c` at its current epoch boundary.
    /// `config` is supplied by the caller (the cluster does not know
    /// which scenario built it or which telemetry was enabled).
    pub fn capture(c: &Cluster, config: CheckpointConfig) -> Checkpoint {
        Checkpoint {
            config,
            state: c.checkpoint_state(),
            hosts: c.host_fingerprints(),
            digest: c.state_digest(),
        }
    }

    /// Compare `c`'s current state against this artifact, returning one
    /// human-readable line per mismatch (empty = states agree). Used by
    /// restore to prove the replay reconverged, and by the bisector as
    /// its divergence detector.
    pub fn validate(&self, c: &Cluster) -> Vec<String> {
        let mut out = diff_states(&self.state, &c.checkpoint_state());
        let live = c.host_fingerprints();
        if self.hosts.len() != live.len() {
            out.push(format!(
                "hosts: fingerprint count {} (artifact) vs {} (replayed)",
                self.hosts.len(),
                live.len()
            ));
        } else {
            for (h, (a, b)) in self.hosts.iter().zip(&live).enumerate() {
                if a != b {
                    out.push(format!(
                        "hosts[{h}]: machine fingerprint {a:016x} (artifact) vs {b:016x} (replayed)"
                    ));
                }
            }
        }
        let digest = c.state_digest();
        if self.digest != digest {
            out.push(format!(
                "digest: {:016x} (artifact) vs {digest:016x} (replayed)",
                self.digest
            ));
        }
        out
    }

    /// Overwrite `c`'s control state with the artifact's — the
    /// authoritative half of restore. Every serialized field lands here,
    /// which is what makes each of them load-bearing: corrupting one in
    /// the artifact observably changes the continuation.
    pub fn apply(&self, c: &mut Cluster) {
        c.apply_checkpoint_state(&self.state);
    }

    /// Serialize the whole artifact.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("kind".to_string(), Value::Str(CKPT_KIND.to_string())),
            ("version".to_string(), CKPT_VERSION.to_value()),
            ("config".to_string(), self.config.to_value()),
            ("epoch".to_string(), self.state.epoch.to_value()),
            ("state".to_string(), self.state.to_value()),
            ("hosts".to_string(), self.hosts.to_value()),
            ("digest".to_string(), self.digest.to_value()),
        ])
    }

    /// Decode an artifact, rejecting wrong kinds and versions.
    pub fn from_value(v: &Value) -> Result<Checkpoint, String> {
        let kind = get_str(v, "kind", "checkpoint")?;
        if kind != CKPT_KIND {
            return Err(format!(
                "checkpoint.kind: '{kind}' is not a checkpoint (expected '{CKPT_KIND}')"
            ));
        }
        let version = get_u64(v, "version", "checkpoint")?;
        if !(1..=CKPT_VERSION).contains(&version) {
            return Err(format!(
                "checkpoint.version: {version} unsupported (this build reads versions 1..={CKPT_VERSION})"
            ));
        }
        let config = CheckpointConfig::from_value(need(v, "config", "checkpoint")?)?;
        let state = ClusterState::from_value(need(v, "state", "checkpoint")?)?;
        let epoch = get_u64(v, "epoch", "checkpoint")?;
        if epoch != state.epoch {
            return Err(format!(
                "checkpoint.epoch: {epoch} disagrees with state.epoch {}",
                state.epoch
            ));
        }
        let hosts_v = need(v, "hosts", "checkpoint")?
            .as_array()
            .ok_or_else(|| "checkpoint.hosts: not an array".to_string())?;
        let hosts = hosts_v
            .iter()
            .enumerate()
            .map(|(i, f)| {
                f.as_u64()
                    .ok_or_else(|| format!("checkpoint.hosts[{i}]: not an unsigned integer"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Checkpoint {
            config,
            state,
            hosts,
            digest: get_u64(v, "digest", "checkpoint")?,
        })
    }
}

impl Cluster {
    /// Capture the cluster's serial control state (see [`ClusterState`]).
    pub fn checkpoint_state(&self) -> ClusterState {
        ClusterState {
            epoch: self.epochs_run,
            health: self.health.clone(),
            vms: self.vms.iter().map(vm_entry_state).collect(),
            pending: self
                .pending
                .iter()
                .map(|pd| PendingState {
                    vm: pd.vm,
                    to: pd.to,
                    due: pd.due,
                    attempts: pd.attempts,
                    span: pd.span,
                })
                .collect(),
            records: self.records.clone(),
            aborts: self.aborts.clone(),
            evacuations: self.evacuations.clone(),
            retries_committed: self.retries_committed,
            retries_abandoned: self.retries_abandoned,
            gave_up: self.gave_up,
            arrivals: self.arrivals,
            departures: self.departures,
            arrivals_rejected: self.arrivals_rejected,
            departures_skipped: self.departures_skipped,
            departed_finished: self.departed_finished,
            next_span: self.next_span,
        }
    }

    /// Overwrite the cluster's control state with `s` — restore's
    /// authoritative application step. The machine microstate is *not*
    /// touched: it was reconstructed by replay and verified against the
    /// artifact's host fingerprints before this is called.
    pub fn apply_checkpoint_state(&mut self, s: &ClusterState) {
        self.epochs_run = s.epoch;
        self.health = s.health.clone();
        self.vms = s
            .vms
            .iter()
            .map(|e| VmEntry {
                name: e.name.clone(),
                host: e.host,
                local: e.local,
                vcpus: e.vcpus,
                last_migration: e.last_migration,
                migrations: e.migrations,
                prev_spin: e.prev_spin,
                prev_vcrd_high: e.prev_vcrd_high,
                prev_online: e.prev_online,
                spin_delta: e.spin_delta,
                vcrd_high_delta: e.vcrd_high_delta,
                online_delta: e.online_delta,
                attempts: e.attempts,
                gave_up: e.gave_up,
                departed: e.departed,
                final_row: e.final_row.clone(),
            })
            .collect();
        self.pending = s
            .pending
            .iter()
            .map(|pd| PendingRetry {
                vm: pd.vm,
                to: pd.to,
                due: pd.due,
                attempts: pd.attempts,
                span: pd.span,
            })
            .collect();
        self.records = s.records.clone();
        self.aborts = s.aborts.clone();
        self.evacuations = s.evacuations.clone();
        self.retries_committed = s.retries_committed;
        self.retries_abandoned = s.retries_abandoned;
        self.gave_up = s.gave_up;
        self.arrivals = s.arrivals;
        self.departures = s.departures;
        self.arrivals_rejected = s.arrivals_rejected;
        self.departures_skipped = s.departures_skipped;
        self.departed_finished = s.departed_finished;
        self.next_span = s.next_span;
    }

    /// Per-host machine state fingerprints, host order.
    pub fn host_fingerprints(&self) -> Vec<u64> {
        self.hosts.iter().map(|m| m.state_fingerprint()).collect()
    }

    /// One `u64` summarizing the *entire* cluster state: the serial
    /// control state folded structurally, plus every host's machine
    /// fingerprint. Two runs with equal digests at an epoch boundary
    /// are (up to hash collision) in identical states and produce
    /// identical futures — the comparison handle the bisector
    /// binary-searches over.
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        fold_value(&self.checkpoint_state().to_value(), &mut h);
        for m in &self.hosts {
            h.write_u64(m.state_fingerprint());
        }
        h.finish()
    }
}

fn vm_entry_state(e: &VmEntry) -> VmEntryState {
    VmEntryState {
        name: e.name.clone(),
        host: e.host,
        local: e.local,
        vcpus: e.vcpus,
        last_migration: e.last_migration,
        migrations: e.migrations,
        prev_spin: e.prev_spin,
        prev_vcrd_high: e.prev_vcrd_high,
        prev_online: e.prev_online,
        spin_delta: e.spin_delta,
        vcrd_high_delta: e.vcrd_high_delta,
        online_delta: e.online_delta,
        attempts: e.attempts,
        gave_up: e.gave_up,
        departed: e.departed,
        final_row: e.final_row.clone(),
    }
}

fn vm_entry_to_value(e: &VmEntryState) -> Value {
    Value::Object(vec![
        ("name".to_string(), e.name.to_value()),
        ("host".to_string(), e.host.to_value()),
        ("local".to_string(), e.local.to_value()),
        ("vcpus".to_string(), e.vcpus.to_value()),
        ("last_migration".to_string(), e.last_migration.to_value()),
        ("migrations".to_string(), e.migrations.to_value()),
        ("prev_spin".to_string(), e.prev_spin.to_value()),
        ("prev_vcrd_high".to_string(), e.prev_vcrd_high.to_value()),
        ("prev_online".to_string(), e.prev_online.to_value()),
        ("spin_delta".to_string(), e.spin_delta.to_value()),
        ("vcrd_high_delta".to_string(), e.vcrd_high_delta.to_value()),
        ("online_delta".to_string(), e.online_delta.to_value()),
        ("attempts".to_string(), e.attempts.to_value()),
        ("gave_up".to_string(), e.gave_up.to_value()),
        ("departed".to_string(), e.departed.to_value()),
        ("final_row".to_string(), e.final_row.to_value()),
    ])
}

fn pending_to_value(pd: &PendingState) -> Value {
    Value::Object(vec![
        ("vm".to_string(), pd.vm.to_value()),
        ("to".to_string(), pd.to.to_value()),
        ("due".to_string(), pd.due.to_value()),
        ("attempts".to_string(), pd.attempts.to_value()),
        ("span".to_string(), pd.span.to_value()),
    ])
}

// ---- decoding helpers ------------------------------------------------

fn need<'a>(v: &'a Value, key: &str, path: &str) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("{path}: missing field '{key}'"))
}

fn get_u64(v: &Value, key: &str, path: &str) -> Result<u64, String> {
    need(v, key, path)?
        .as_u64()
        .ok_or_else(|| format!("{path}.{key}: not an unsigned integer"))
}

fn get_u32(v: &Value, key: &str, path: &str) -> Result<u32, String> {
    u32::try_from(get_u64(v, key, path)?)
        .map_err(|_| format!("{path}.{key}: does not fit in u32"))
}

fn get_usize(v: &Value, key: &str, path: &str) -> Result<usize, String> {
    usize::try_from(get_u64(v, key, path)?)
        .map_err(|_| format!("{path}.{key}: does not fit in usize"))
}

fn get_bool(v: &Value, key: &str, path: &str) -> Result<bool, String> {
    need(v, key, path)?
        .as_bool()
        .ok_or_else(|| format!("{path}.{key}: not a boolean"))
}

fn get_str<'a>(v: &'a Value, key: &str, path: &str) -> Result<&'a str, String> {
    need(v, key, path)?
        .as_str()
        .ok_or_else(|| format!("{path}.{key}: not a string"))
}

fn get_opt_u64(v: &Value, key: &str, path: &str) -> Result<Option<u64>, String> {
    let f = need(v, key, path)?;
    if f.is_null() {
        return Ok(None);
    }
    f.as_u64()
        .map(Some)
        .ok_or_else(|| format!("{path}.{key}: not null or an unsigned integer"))
}

/// Decode an enum encoded the way the vendored serde derive emits it:
/// unit variants as `"Name"`, struct variants as `{"Name": {...}}`.
fn variant<'a>(v: &'a Value, path: &str) -> Result<(&'a str, Option<&'a Value>), String> {
    if let Some(s) = v.as_str() {
        return Ok((s, None));
    }
    if let Some([(name, payload)]) = v.as_object() {
        return Ok((name, Some(payload)));
    }
    Err(format!("{path}: not an enum variant"))
}

fn decode_health(v: &Value, path: &str) -> Result<HostHealth, String> {
    match variant(v, path)? {
        ("Healthy", None) => Ok(HostHealth::Healthy),
        ("Crashed", None) => Ok(HostHealth::Crashed),
        ("Degraded", Some(p)) => Ok(HostHealth::Degraded {
            pct: get_u32(p, "pct", path)?,
        }),
        (other, _) => Err(format!("{path}: unknown host health '{other}'")),
    }
}

fn decode_fault_plan(v: &Value) -> Result<FaultPlan, String> {
    let events_v = need(v, "events", "config.faults")?
        .as_array()
        .ok_or_else(|| "config.faults.events: not an array".to_string())?;
    let mut events = Vec::with_capacity(events_v.len());
    for (i, e) in events_v.iter().enumerate() {
        let path = format!("config.faults.events[{i}]");
        let kind = match variant(need(e, "kind", &path)?, &path)? {
            ("Abort", None) => FaultKind::Abort,
            ("Crash", Some(p)) => FaultKind::Crash {
                host: get_usize(p, "host", &path)?,
            },
            ("Slow", Some(p)) => FaultKind::Slow {
                host: get_usize(p, "host", &path)?,
                derate_pct: get_u32(p, "derate_pct", &path)?,
            },
            (other, _) => return Err(format!("{path}: unknown fault kind '{other}'")),
        };
        events.push(FaultEvent {
            epoch: get_u64(e, "epoch", &path)?,
            kind,
        });
    }
    Ok(FaultPlan { events })
}

fn decode_churn_plan(v: &Value) -> Result<ChurnPlan, String> {
    let events_v = need(v, "events", "config.churn")?
        .as_array()
        .ok_or_else(|| "config.churn.events: not an array".to_string())?;
    let mut events = Vec::with_capacity(events_v.len());
    for (i, e) in events_v.iter().enumerate() {
        let path = format!("config.churn.events[{i}]");
        let kind = match variant(need(e, "kind", &path)?, &path)? {
            ("Arrive", Some(p)) => {
                let shape_v = need(p, "shape", &path)?;
                let kind = match variant(need(shape_v, "kind", &path)?, &path)? {
                    ("Gang", None) => ShapeKind::Gang,
                    ("Background", None) => ShapeKind::Background,
                    (other, _) => return Err(format!("{path}: unknown shape kind '{other}'")),
                };
                ChurnKind::Arrive {
                    shape: VmShape {
                        kind,
                        vcpus: get_usize(shape_v, "vcpus", &path)?,
                        weight: get_u32(shape_v, "weight", &path)?,
                    },
                }
            }
            ("Depart", Some(p)) => ChurnKind::Depart {
                host: get_usize(p, "host", &path)?,
                slot: get_usize(p, "slot", &path)?,
            },
            (other, _) => return Err(format!("{path}: unknown churn kind '{other}'")),
        };
        events.push(ChurnEvent {
            epoch: get_u64(e, "epoch", &path)?,
            kind,
        });
    }
    Ok(ChurnPlan { events })
}

fn decode_migration_records(v: &Value, path: &str) -> Result<Vec<MigrationRecord>, String> {
    let arr = v
        .as_array()
        .ok_or_else(|| format!("{path}: not an array"))?;
    arr.iter()
        .enumerate()
        .map(|(i, r)| {
            let p = format!("{path}[{i}]");
            Ok(MigrationRecord {
                epoch: get_u64(r, "epoch", &p)?,
                vm: get_usize(r, "vm", &p)?,
                name: get_str(r, "name", &p)?.to_string(),
                from: get_usize(r, "from", &p)?,
                to: get_usize(r, "to", &p)?,
                online_delta: get_u64(r, "online_delta", &p)?,
                dirty_pages: get_u64(r, "dirty_pages", &p)?,
                pause: get_u64(r, "pause", &p)?,
            })
        })
        .collect()
}

fn decode_abort_records(v: &Value, path: &str) -> Result<Vec<AbortRecord>, String> {
    let arr = v
        .as_array()
        .ok_or_else(|| format!("{path}: not an array"))?;
    arr.iter()
        .enumerate()
        .map(|(i, r)| {
            let p = format!("{path}[{i}]");
            Ok(AbortRecord {
                epoch: get_u64(r, "epoch", &p)?,
                vm: get_usize(r, "vm", &p)?,
                name: get_str(r, "name", &p)?.to_string(),
                from: get_usize(r, "from", &p)?,
                to: get_usize(r, "to", &p)?,
                attempt: get_u32(r, "attempt", &p)?,
                online_delta: get_u64(r, "online_delta", &p)?,
                dirty_pages: get_u64(r, "dirty_pages", &p)?,
                penalty: get_u64(r, "penalty", &p)?,
            })
        })
        .collect()
}

fn decode_vm_row(v: &Value, path: &str) -> Result<VmRow, String> {
    Ok(VmRow {
        name: get_str(v, "name", path)?.to_string(),
        host: get_usize(v, "host", path)?,
        vcpus: get_usize(v, "vcpus", path)?,
        migrations: get_u64(v, "migrations", path)?,
        spin_cycles: get_u64(v, "spin_cycles", path)?,
        useful_cycles: get_u64(v, "useful_cycles", path)?,
        vcrd_high_cycles: get_u64(v, "vcrd_high_cycles", path)?,
        online_cycles: get_u64(v, "online_cycles", path)?,
    })
}

fn decode_vm_entry(v: &Value, path: &str) -> Result<VmEntryState, String> {
    let final_row_v = need(v, "final_row", path)?;
    let final_row = if final_row_v.is_null() {
        None
    } else {
        Some(decode_vm_row(final_row_v, &format!("{path}.final_row"))?)
    };
    Ok(VmEntryState {
        name: get_str(v, "name", path)?.to_string(),
        host: get_usize(v, "host", path)?,
        local: get_usize(v, "local", path)?,
        vcpus: get_usize(v, "vcpus", path)?,
        last_migration: get_opt_u64(v, "last_migration", path)?,
        migrations: get_u64(v, "migrations", path)?,
        prev_spin: get_u64(v, "prev_spin", path)?,
        prev_vcrd_high: get_u64(v, "prev_vcrd_high", path)?,
        prev_online: get_u64(v, "prev_online", path)?,
        spin_delta: get_u64(v, "spin_delta", path)?,
        vcrd_high_delta: get_u64(v, "vcrd_high_delta", path)?,
        online_delta: get_u64(v, "online_delta", path)?,
        attempts: get_u32(v, "attempts", path)?,
        gave_up: get_bool(v, "gave_up", path)?,
        departed: get_bool(v, "departed", path)?,
        final_row,
    })
}

fn decode_pending(v: &Value, path: &str) -> Result<PendingState, String> {
    Ok(PendingState {
        vm: get_usize(v, "vm", path)?,
        to: get_usize(v, "to", path)?,
        due: get_u64(v, "due", path)?,
        attempts: get_u32(v, "attempts", path)?,
        span: get_u32(v, "span", path)?,
    })
}

// ---- structural comparison ------------------------------------------

/// Fold a [`Value`] tree structurally (variant tags, lengths, keys) so
/// the digest is a property of the data, not of any rendered text.
fn fold_value(v: &Value, h: &mut Fnv) {
    match v {
        Value::Null => h.write_u32(0),
        Value::Bool(b) => {
            h.write_u32(1);
            h.write_bool(*b);
        }
        Value::I64(i) => {
            h.write_u32(2);
            h.write_i64(*i);
        }
        Value::U64(u) => {
            h.write_u32(3);
            h.write_u64(*u);
        }
        Value::F64(f) => {
            h.write_u32(4);
            h.write_u64(f.to_bits());
        }
        Value::Str(s) => {
            h.write_u32(5);
            h.write_str(s);
        }
        Value::Array(a) => {
            h.write_u32(6);
            h.write_usize(a.len());
            for x in a {
                fold_value(x, h);
            }
        }
        Value::Object(o) => {
            h.write_u32(7);
            h.write_usize(o.len());
            for (k, x) in o {
                h.write_str(k);
                fold_value(x, h);
            }
        }
    }
}

/// Field-level diff between two captured states, one line per mismatch
/// with its full path (e.g. `state.vms[3].last_migration`). The first
/// state is rendered on the left of each line. Used by restore
/// validation (artifact vs replayed) and by the bisector (run A vs
/// run B).
pub fn diff_states(a: &ClusterState, b: &ClusterState) -> Vec<String> {
    let mut out = Vec::new();
    diff_value("state", &a.to_value(), &b.to_value(), &mut out);
    out
}

/// Recursively diff two [`Value`] trees, appending one line per
/// mismatch with its full path (e.g. `state.vms[3].last_migration`).
fn diff_value(path: &str, a: &Value, b: &Value, out: &mut Vec<String>) {
    match (a, b) {
        (Value::Object(ao), Value::Object(bo)) => {
            if ao.len() != bo.len() || ao.iter().zip(bo).any(|((ka, _), (kb, _))| ka != kb) {
                out.push(format!("{path}: object keys differ"));
                return;
            }
            for ((k, av), (_, bv)) in ao.iter().zip(bo) {
                diff_value(&format!("{path}.{k}"), av, bv, out);
            }
        }
        (Value::Array(aa), Value::Array(ba)) => {
            if aa.len() != ba.len() {
                out.push(format!(
                    "{path}: array length {} vs {}",
                    aa.len(),
                    ba.len()
                ));
                return;
            }
            for (i, (av, bv)) in aa.iter().zip(ba).enumerate() {
                diff_value(&format!("{path}[{i}]"), av, bv, out);
            }
        }
        _ => {
            if a != b {
                out.push(format!("{path}: {a:?} vs {b:?}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CheckpointConfig {
        CheckpointConfig {
            scenario: ConsolidationSpec::default(),
            epoch_ms: 50,
            epochs: 8,
            policy: Policy::VcrdAware,
            cooldown_epochs: 3,
            retry_cap: 3,
            audit_every: 1,
            model: MigrationModel::default(),
            faults: FaultPlan::empty(),
            churn: ChurnPlan::empty(),
            slot_reuse: false,
            series_capacity: 0,
            max_moves: 1,
        }
    }

    #[test]
    fn capture_value_round_trips_through_decode() {
        let mut c = small_config().build_cluster(1);
        for _ in 0..5 {
            c.run_epoch();
        }
        let ck = Checkpoint::capture(&c, small_config());
        let decoded = Checkpoint::from_value(&ck.to_value()).expect("decode");
        assert_eq!(decoded.state, ck.state);
        assert_eq!(decoded.hosts, ck.hosts);
        assert_eq!(decoded.digest, ck.digest);
        assert_eq!(decoded.config.to_value(), ck.config.to_value());
    }

    #[test]
    fn validate_passes_on_replay_and_names_a_corrupted_field() {
        let mut a = small_config().build_cluster(1);
        for _ in 0..5 {
            a.run_epoch();
        }
        let mut ck = Checkpoint::capture(&a, small_config());
        // An independent replay to the same epoch must validate clean.
        let mut b = small_config().build_cluster(2);
        for _ in 0..5 {
            b.run_epoch();
        }
        assert!(ck.validate(&b).is_empty(), "replay must reconverge");
        // Corrupt one field: validation must name it precisely.
        ck.state.vms[0].last_migration = Some(999);
        let errs = ck.validate(&b);
        assert!(
            errs.iter()
                .any(|e| e.contains("state.vms[0].last_migration")),
            "got {errs:?}"
        );
        // Corrupting the stored digest must flag too.
        ck.digest ^= 1;
        let errs = ck.validate(&b);
        assert!(
            errs.iter().any(|e| e.starts_with("digest:")),
            "digest must flag: {errs:?}"
        );
    }

    #[test]
    fn state_digest_tracks_epochs_and_matches_across_replays() {
        let mut a = small_config().build_cluster(1);
        let mut b = small_config().build_cluster(4);
        let mut last = a.state_digest();
        assert_eq!(last, b.state_digest(), "identical initial states");
        for _ in 0..4 {
            a.run_epoch();
            b.run_epoch();
            let d = a.state_digest();
            assert_eq!(d, b.state_digest(), "jobs must not perturb the digest");
            assert_ne!(d, last, "each epoch must move the digest");
            last = d;
        }
    }

    #[test]
    fn from_value_rejects_wrong_kind_and_version() {
        let c = small_config().build_cluster(1);
        let ck = Checkpoint::capture(&c, small_config());
        let mut v = ck.to_value();
        if let Value::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "version" {
                    *val = Value::U64(CKPT_VERSION + 1);
                }
            }
        }
        let err = Checkpoint::from_value(&v).unwrap_err();
        assert!(err.contains("version"), "got {err}");
        let not_ckpt = Value::Object(vec![
            ("kind".to_string(), Value::Str("something".to_string())),
            ("version".to_string(), Value::U64(1)),
        ]);
        assert!(Checkpoint::from_value(&not_ckpt).is_err());
    }

    /// A version-1 artifact — `pending` null or a single object, no
    /// `config.max_moves` — must load in this build with identical
    /// semantics: an empty (or single-entry) chain set and a move
    /// budget of 1.
    #[test]
    fn version_one_artifacts_still_load() {
        let mut c = small_config().build_cluster(1);
        for _ in 0..3 {
            c.run_epoch();
        }
        let ck = Checkpoint::capture(&c, small_config());
        assert!(ck.state.pending.is_empty(), "clean run has no chains");
        let mut v = ck.to_value();
        if let Value::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                match k.as_str() {
                    "version" => *val = Value::U64(1),
                    "state" => {
                        if let Value::Object(state) = val {
                            for (sk, sv) in state.iter_mut() {
                                if sk == "pending" {
                                    *sv = Value::Null;
                                }
                            }
                        }
                    }
                    "config" => {
                        if let Value::Object(cfg) = val {
                            cfg.retain(|(ck, _)| ck != "max_moves");
                        }
                    }
                    _ => {}
                }
            }
        }
        let back = Checkpoint::from_value(&v).expect("v1 artifact must decode");
        assert!(back.state.pending.is_empty());
        assert_eq!(back.config.max_moves, 1, "absent budget defaults to 1");
        assert_eq!(back.state, ck.state);
        // The single-object pending form decodes as a one-chain set.
        let one = PendingState {
            vm: 1,
            to: 2,
            due: 5,
            attempts: 1,
            span: 0,
        };
        if let Value::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "state" {
                    if let Value::Object(state) = val {
                        for (sk, sv) in state.iter_mut() {
                            if sk == "pending" {
                                *sv = pending_to_value(&one);
                            }
                        }
                    }
                }
            }
        }
        let back = Checkpoint::from_value(&v).expect("v1 single-chain artifact must decode");
        assert_eq!(back.state.pending, vec![one]);
    }

    #[test]
    fn apply_overwrites_control_state_authoritatively() {
        let mut c = small_config().build_cluster(1);
        for _ in 0..3 {
            c.run_epoch();
        }
        let mut ck = Checkpoint::capture(&c, small_config());
        ck.state.arrivals_rejected = 7;
        ck.state.next_span = 41;
        ck.apply(&mut c);
        let s = c.checkpoint_state();
        assert_eq!(s.arrivals_rejected, 7);
        assert_eq!(s.next_span, 41);
    }
}
