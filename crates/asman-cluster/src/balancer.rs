//! Global placement policies.
//!
//! The balancer runs at every epoch boundary over a [`Snapshot`] of
//! per-host and per-VM telemetry and proposes up to a bounded number of
//! non-overlapping migrations per epoch ([`plan`]). The per-epoch move
//! budget (`--max-moves`, default `max(1, hosts/8)`) together with the
//! per-VM cooldown is the anti-thrash hysteresis: a placement change
//! must prove itself for a few epochs before the next one from the same
//! endpoints is allowed. A budget of 1 reproduces the historical
//! one-move-per-epoch behaviour bit-for-bit.
//!
//! All arithmetic is integer and all tie-breaks are by lowest index, so
//! a plan is a pure deterministic function of the snapshot, the budget,
//! and the per-host endpoint caps.

use serde::Serialize;

/// Placement policy of the cluster balancer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Policy {
    /// Never migrate: VMs stay where they were placed.
    Static,
    /// Classic VCPU-count balancing, blind to what the VCPUs do: move a
    /// VM from the most- to the least-overcommitted host when that
    /// strictly narrows the spread.
    LeastLoaded,
    /// ASMan's cluster-level generalization: use the per-VM VCRD/spin
    /// telemetry to identify *concurrent* VMs (gangs) and separate them
    /// onto hosts where each gang can be coscheduled without fighting
    /// another gang for PCPUs.
    VcrdAware,
}

impl Policy {
    /// Stable CLI label.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Static => "static",
            Policy::LeastLoaded => "least-loaded",
            Policy::VcrdAware => "vcrd-aware",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<Policy> {
        match s {
            "static" => Some(Policy::Static),
            "least-loaded" => Some(Policy::LeastLoaded),
            "vcrd-aware" => Some(Policy::VcrdAware),
            _ => None,
        }
    }

    /// Every policy, in CLI order.
    pub const ALL: [Policy; 3] = [Policy::Static, Policy::LeastLoaded, Policy::VcrdAware];
}

/// Per-host facts the balancer sees.
#[derive(Clone, Debug)]
pub struct HostView {
    /// Physical CPUs *as advertised*: a degraded host reports its
    /// derated capacity, so placement math shrinks with the host.
    pub pcpus: usize,
    /// Whether admission control accepts new VMs. Degraded and crashed
    /// hosts do not admit; their resident VMs may still be moved *off*.
    pub admit: bool,
}

/// Per-VM facts the balancer sees (deltas are over the last epoch).
#[derive(Clone, Debug)]
pub struct VmView {
    /// Host the VM currently resides on.
    pub host: usize,
    /// VCPU count.
    pub vcpus: usize,
    /// Cycles burned busy-waiting in the guest kernel last epoch.
    pub spin_delta: u64,
    /// Cycles the VMM saw the VM's VCRD held HIGH last epoch.
    pub vcrd_high_delta: u64,
    /// Still inside the post-migration cooldown window.
    pub cooling: bool,
}

/// One epoch's telemetry: everything a policy may consult.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Hosts by index.
    pub hosts: Vec<HostView>,
    /// VMs by cluster-wide id.
    pub vms: Vec<VmView>,
    /// Epoch length in cycles (normalizes the delta thresholds).
    pub epoch_cycles: u64,
}

/// A proposed migration: move cluster VM `vm` to host `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Move {
    /// Cluster-wide VM id.
    pub vm: usize,
    /// Destination host.
    pub to: usize,
}

impl Snapshot {
    /// Whether a VM behaved as a concurrent gang last epoch: its VCRD
    /// was HIGH for a meaningful share of the epoch, or it burned a
    /// meaningful share busy-waiting in the kernel.
    fn concurrent(&self, vm: usize) -> bool {
        let v = &self.vms[vm];
        v.vcrd_high_delta >= self.epoch_cycles / 16 || v.spin_delta >= self.epoch_cycles / 32
    }
}

/// Per-host aggregates, folded from the per-VM deltas in one O(VMs)
/// pass per decision. The policies used to recompute these inside every
/// per-host comparator — O(hosts × VMs) at the epoch barrier, which is
/// the serial section of the (otherwise parallel) cluster driver — so
/// the fold keeps the barrier O(hosts + VMs). Same integer math, same
/// tie-breaks, bit-identical decisions.
struct Aggregates {
    /// Total resident VCPUs per host.
    load: Vec<u64>,
    /// Total VCPUs of concurrent (gang) VMs per host — the PCPU demand
    /// of its gangs. While this exceeds `pcpus`, the gangs cannot all
    /// be coscheduled cleanly.
    gang: Vec<u64>,
}

impl Aggregates {
    fn fold(snap: &Snapshot) -> Self {
        let mut load = vec![0u64; snap.hosts.len()];
        let mut gang = vec![0u64; snap.hosts.len()];
        for (i, v) in snap.vms.iter().enumerate() {
            load[v.host] += v.vcpus as u64;
            if snap.concurrent(i) {
                gang[v.host] += v.vcpus as u64;
            }
        }
        Aggregates { load, gang }
    }

    /// Overcommit ratio in milli-VCPUs-per-PCPU.
    fn overcommit(&self, snap: &Snapshot, host: usize) -> u64 {
        self.load[host] * 1000 / snap.hosts[host].pcpus as u64
    }
}

/// One epoch's planning round: the accepted moves (in planning order)
/// plus how many candidates the per-host endpoint caps vetoed.
#[derive(Clone, Debug, Default)]
pub struct Plan {
    /// Accepted moves, in the order they were planned. The driver
    /// executes them in this order inside the serial barrier.
    pub moves: Vec<Move>,
    /// Candidate moves rejected because their source or destination was
    /// already claimed this epoch — by a live retry chain or by an
    /// earlier move of the same plan.
    pub denied_conflict: u64,
}

/// A single balancer decision over a fresh snapshot: at most one move.
/// Equivalent to the first accepted move of a [`plan`] with budget 1
/// and no claimed endpoints.
pub fn decide(policy: Policy, snap: &Snapshot) -> Option<Move> {
    let bans = Bans::none(snap.hosts.len());
    decide_with(policy, snap, &Aggregates::fold(snap), &bans)
}

/// Hosts a planning round has ruled out as senders / receivers this
/// epoch. A denied candidate always blames a *host* (the endpoint caps
/// are per-host), so banning the endpoint — rather than the candidate
/// VM — lets the next decision fall through to the next-hottest source
/// or next-best destination instead of dead-ending on the claimed one.
struct Bans {
    src: Vec<bool>,
    dst: Vec<bool>,
}

impl Bans {
    fn none(hosts: usize) -> Bans {
        Bans {
            src: vec![false; hosts],
            dst: vec![false; hosts],
        }
    }
}

fn decide_with(policy: Policy, snap: &Snapshot, agg: &Aggregates, bans: &Bans) -> Option<Move> {
    match policy {
        Policy::Static => None,
        Policy::LeastLoaded => decide_least_loaded(snap, agg, bans),
        Policy::VcrdAware => decide_vcrd_aware(snap, agg, bans),
    }
}

/// Plan up to `budget` conflict-free moves for one epoch boundary.
///
/// `src_used[h]` / `dst_used[h]` say host `h` already sends / receives
/// a migration this epoch (a retry chain executed or still in flight);
/// the planner honours and extends them, so across chains and fresh
/// moves every host is the source of at most one migration and the
/// destination of at most one migration per epoch.
///
/// The planner iterates the single-move decision greedily: after each
/// accepted move the working snapshot re-homes the VM and marks it
/// cooling (so one VM is planned at most once), and the aggregates are
/// updated so later picks see the post-move shape. A candidate whose
/// endpoint is already claimed is counted in `denied_conflict`, the
/// claimed host is banned for the rest of the round (the caps are
/// per-host, so every other candidate through it would lose too), and
/// the search falls through to the next-hottest source or next-best
/// destination — the loop terminates because every iteration consumes
/// budget or bans a host. Pure integer math over a fixed iteration
/// order: the plan is bit-identical for every `--jobs` count.
pub fn plan(
    policy: Policy,
    snap: &Snapshot,
    budget: usize,
    src_used: &mut [bool],
    dst_used: &mut [bool],
) -> Plan {
    let mut out = Plan::default();
    if budget == 0 || policy == Policy::Static {
        return out;
    }
    let mut working = snap.clone();
    let mut agg = Aggregates::fold(&working);
    let mut bans = Bans::none(snap.hosts.len());
    while out.moves.len() < budget {
        let Some(mv) = decide_with(policy, &working, &agg, &bans) else {
            break;
        };
        let from = working.vms[mv.vm].host;
        if src_used[from] {
            out.denied_conflict += 1;
            bans.src[from] = true;
            continue;
        }
        if dst_used[mv.to] {
            out.denied_conflict += 1;
            bans.dst[mv.to] = true;
            continue;
        }
        src_used[from] = true;
        dst_used[mv.to] = true;
        let vcpus = working.vms[mv.vm].vcpus as u64;
        agg.load[from] -= vcpus;
        agg.load[mv.to] += vcpus;
        if working.concurrent(mv.vm) {
            agg.gang[from] -= vcpus;
            agg.gang[mv.to] += vcpus;
        }
        working.vms[mv.vm].host = mv.to;
        working.vms[mv.vm].cooling = true;
        out.moves.push(mv);
    }
    out
}

fn decide_least_loaded(snap: &Snapshot, agg: &Aggregates, bans: &Bans) -> Option<Move> {
    let n = snap.hosts.len();
    let hmax = (0..n)
        .filter(|&h| !bans.src[h])
        .max_by_key(|&h| (agg.overcommit(snap, h), std::cmp::Reverse(h)))?;
    // Only admitting hosts may receive; the source may be any host.
    let hmin = (0..n)
        .filter(|&h| snap.hosts[h].admit && !bans.dst[h])
        .min_by_key(|&h| (agg.overcommit(snap, h), h))?;
    if hmax == hmin {
        return None;
    }
    let spread = agg.overcommit(snap, hmax) - agg.overcommit(snap, hmin);
    // Largest movable VM on the hottest host (ties: lowest id).
    let vm = snap
        .vms
        .iter()
        .enumerate()
        .filter(|(_, v)| v.host == hmax && !v.cooling && v.vcpus <= snap.hosts[hmin].pcpus)
        .max_by_key(|(i, v)| (v.vcpus, std::cmp::Reverse(*i)))
        .map(|(i, _)| i)?;
    // Strict improvement only: simulate the move and demand the spread
    // narrows. Without this the balancer ping-pongs a VM between two
    // equally loaded hosts forever.
    let moved = snap.vms[vm].vcpus as u64 * 1000;
    let max_after = agg.overcommit(snap, hmax) - moved / snap.hosts[hmax].pcpus as u64;
    let min_after = agg.overcommit(snap, hmin) + moved / snap.hosts[hmin].pcpus as u64;
    let spread_after = max_after.abs_diff(min_after);
    if spread_after < spread {
        Some(Move { vm, to: hmin })
    } else {
        None
    }
}

fn decide_vcrd_aware(snap: &Snapshot, agg: &Aggregates, bans: &Bans) -> Option<Move> {
    let n = snap.hosts.len();
    // Hottest gang host: gangs demand more PCPUs than exist, so they
    // cannot co-run without lock-holder preemption.
    let src = (0..n)
        .filter(|&h| !bans.src[h] && agg.gang[h] > snap.hosts[h].pcpus as u64)
        .max_by_key(|&h| (agg.gang[h], std::cmp::Reverse(h)))?;
    // The most spin-burdened concurrent VM there (ties: lowest id).
    let vm = snap
        .vms
        .iter()
        .enumerate()
        .filter(|(i, v)| v.host == src && !v.cooling && snap.concurrent(*i))
        .max_by_key(|(i, v)| (v.spin_delta, v.vcrd_high_delta, std::cmp::Reverse(*i)))
        .map(|(i, _)| i)?;
    let need = snap.vms[vm].vcpus as u64;
    // Best destination: lowest gang pressure (then overcommit, then
    // index) among hosts where this gang still fits cleanly after the
    // move — its VCPUs must not push gang demand past the PCPUs.
    let dst = (0..n)
        .filter(|&h| {
            h != src
                && !bans.dst[h]
                && snap.hosts[h].admit
                && need as usize <= snap.hosts[h].pcpus
                && agg.gang[h] + need <= snap.hosts[h].pcpus as u64
        })
        .min_by_key(|&h| (agg.gang[h], agg.overcommit(snap, h), h))?;
    // Hysteresis margin: the move must genuinely relieve the source —
    // the destination's pressure (after the move) must stay below what
    // the source suffers now.
    if agg.gang[dst] + need < agg.gang[src] {
        Some(Move { vm, to: dst })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(hosts: Vec<usize>, vms: Vec<(usize, usize, u64, u64)>) -> Snapshot {
        Snapshot {
            hosts: hosts
                .into_iter()
                .map(|pcpus| HostView { pcpus, admit: true })
                .collect(),
            vms: vms
                .into_iter()
                .map(|(host, vcpus, spin, high)| VmView {
                    host,
                    vcpus,
                    spin_delta: spin,
                    vcrd_high_delta: high,
                    cooling: false,
                })
                .collect(),
            epoch_cycles: 1_000_000,
        }
    }

    #[test]
    fn static_never_moves() {
        let s = snap(vec![4, 4], vec![(0, 4, 999_999, 999_999), (0, 4, 0, 0)]);
        assert_eq!(decide(Policy::Static, &s), None);
    }

    #[test]
    fn least_loaded_balances_vcpu_counts_blindly() {
        // Host 0: 8 VCPUs, host 1: 2 — move the biggest VM over.
        let s = snap(
            vec![4, 4],
            vec![(0, 4, 0, 0), (0, 2, 0, 0), (0, 2, 0, 0), (1, 2, 0, 0)],
        );
        let mv = decide(Policy::LeastLoaded, &s).expect("should balance");
        assert_eq!(mv, Move { vm: 0, to: 1 });
    }

    #[test]
    fn least_loaded_holds_when_balanced() {
        let s = snap(vec![4, 4], vec![(0, 4, 0, 0), (1, 4, 0, 0)]);
        assert_eq!(decide(Policy::LeastLoaded, &s), None);
    }

    #[test]
    fn vcrd_aware_separates_fighting_gangs() {
        // Two spinning 3-VCPU gangs on a 4-PCPU host; a quiet big VM on
        // host 1. Least-loaded would move the big VM; vcrd-aware must
        // move the spinnier gang to the gang-free host.
        let s = snap(
            vec![4, 4],
            vec![(0, 3, 900_000, 0), (0, 3, 400_000, 0), (1, 4, 0, 0)],
        );
        let mv = decide(Policy::VcrdAware, &s).expect("should separate gangs");
        assert_eq!(mv, Move { vm: 0, to: 1 });
        // Least-loaded sees only VCPU counts: moving a 3-VCPU VM from
        // the 6-VCPU host to the 4-VCPU host would *widen* the spread,
        // so it refuses — and the spin persists.
        assert_eq!(decide(Policy::LeastLoaded, &s), None);
    }

    #[test]
    fn vcrd_aware_leaves_a_lone_gang_alone() {
        let s = snap(vec![4, 4], vec![(0, 3, 900_000, 0), (1, 4, 0, 0)]);
        assert_eq!(decide(Policy::VcrdAware, &s), None);
    }

    #[test]
    fn non_admitting_hosts_are_never_destinations() {
        // Same shape as the gang-separation test, but the would-be
        // destination no longer admits (degraded or crashed).
        let mut s = snap(
            vec![4, 4],
            vec![(0, 3, 900_000, 0), (0, 3, 400_000, 0), (1, 4, 0, 0)],
        );
        s.hosts[1].admit = false;
        assert_eq!(decide(Policy::VcrdAware, &s), None);
        // Least-loaded likewise: with every other host rejecting, the
        // overloaded host has nowhere to shed to.
        let mut s = snap(
            vec![4, 4],
            vec![(0, 4, 0, 0), (0, 2, 0, 0), (0, 2, 0, 0), (1, 2, 0, 0)],
        );
        s.hosts[1].admit = false;
        assert_eq!(decide(Policy::LeastLoaded, &s), None);
    }

    #[test]
    fn derated_capacity_shrinks_the_destination() {
        // A 4-PCPU host advertising only 2 effective PCPUs cannot take
        // a 3-VCPU gang even though it admits.
        let s = snap(vec![4, 2], vec![(0, 3, 900_000, 0), (0, 3, 400_000, 0)]);
        assert_eq!(decide(Policy::VcrdAware, &s), None);
    }

    #[test]
    fn plan_budget_one_matches_decide() {
        let s = snap(
            vec![4, 4],
            vec![(0, 3, 900_000, 0), (0, 3, 400_000, 0), (1, 4, 0, 0)],
        );
        for policy in Policy::ALL {
            let mut src = vec![false; 2];
            let mut dst = vec![false; 2];
            let p = plan(policy, &s, 1, &mut src, &mut dst);
            assert_eq!(p.moves.first().copied(), decide(policy, &s));
            assert_eq!(p.denied_conflict, 0);
        }
    }

    #[test]
    fn plan_picks_non_overlapping_moves_from_two_hot_hosts() {
        // Hosts 0 and 1 each carry two fighting gangs; hosts 2 and 3
        // are gang-free. One planning round should drain both hot
        // hosts, one gang each, to distinct destinations.
        let s = snap(
            vec![4, 4, 4, 4],
            vec![
                (0, 3, 900_000, 0),
                (0, 3, 400_000, 0),
                (1, 3, 800_000, 0),
                (1, 3, 300_000, 0),
                (2, 2, 0, 0),
                (3, 2, 0, 0),
            ],
        );
        let mut src = vec![false; 4];
        let mut dst = vec![false; 4];
        let p = plan(Policy::VcrdAware, &s, 4, &mut src, &mut dst);
        assert_eq!(p.moves.len(), 2, "one gang off each hot host: {:?}", p.moves);
        assert_eq!(p.denied_conflict, 0);
        let (srcs, dsts): (Vec<usize>, Vec<usize>) =
            p.moves.iter().map(|m| (s.vms[m.vm].host, m.to)).unzip();
        assert_eq!(srcs, vec![0, 1], "hotter host drains first");
        assert_eq!(dsts, vec![2, 3], "distinct destinations");
        assert!(src[0] && src[1] && dst[2] && dst[3], "caps claimed");
    }

    #[test]
    fn plan_spreads_destinations_via_working_aggregates() {
        // Both hot hosts would prefer host 2 (lowest index among the
        // empty hosts); after the first move re-homes a gang there, the
        // updated aggregates fail the fit check and the second move
        // falls through to host 3.
        let s = snap(
            vec![4, 4, 4, 4],
            vec![
                (0, 3, 900_000, 0),
                (0, 3, 400_000, 0),
                (1, 3, 800_000, 0),
                (1, 3, 300_000, 0),
            ],
        );
        let mut src = vec![false; 4];
        let mut dst = vec![false; 4];
        let p = plan(Policy::VcrdAware, &s, 4, &mut src, &mut dst);
        assert_eq!(p.moves.len(), 2, "got {:?}", p.moves);
        let dsts: Vec<usize> = p.moves.iter().map(|m| m.to).collect();
        assert_eq!(dsts, vec![2, 3]);
    }

    #[test]
    fn plan_honours_preclaimed_endpoint_caps() {
        let s = snap(
            vec![4, 4],
            vec![(0, 3, 900_000, 0), (0, 3, 400_000, 0), (1, 4, 0, 0)],
        );
        // A live chain already sends from host 0: nothing else may.
        let mut src = vec![true, false];
        let mut dst = vec![false, false];
        let p = plan(Policy::VcrdAware, &s, 4, &mut src, &mut dst);
        assert!(p.moves.is_empty(), "got {:?}", p.moves);
        assert!(p.denied_conflict >= 1);
        // A live chain already lands on host 1: the only viable
        // destination is claimed.
        let mut src = vec![false, false];
        let mut dst = vec![false, true];
        let p = plan(Policy::VcrdAware, &s, 4, &mut src, &mut dst);
        assert!(p.moves.is_empty(), "got {:?}", p.moves);
        assert!(p.denied_conflict >= 1);
    }

    #[test]
    fn cooldown_vetoes_a_repeat_move() {
        let mut s = snap(
            vec![4, 4],
            vec![(0, 3, 900_000, 0), (0, 3, 400_000, 0), (1, 4, 0, 0)],
        );
        s.vms[0].cooling = true;
        let mv = decide(Policy::VcrdAware, &s).expect("second gang still movable");
        assert_eq!(mv.vm, 1, "cooling VM must be skipped");
        s.vms[1].cooling = true;
        assert_eq!(decide(Policy::VcrdAware, &s), None);
    }
}
