//! Live-migration cost model.
//!
//! The simulator charges a stop-and-copy migration two ways:
//!
//! * a **copy cost** proportional to the pages dirtied since the last
//!   epoch — a VM that burned more CPU dirtied more memory, so busy VMs
//!   are more expensive to move (the classic pre-copy dirty-rate
//!   tradeoff collapsed to one deterministic term);
//! * a **downtime floor** for the final stop-and-copy handover.
//!
//! The resulting pause is injected as guest-visible dead time: the VM's
//! VCPUs wake on the destination only when the pause ends, and sleep
//! deadlines that expired mid-pause fire late.

use asman_sim::Cycles;
use serde::Serialize;

/// Deterministic integer cost model for one stop-and-copy migration.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MigrationModel {
    /// Pages always copied regardless of activity (the working set
    /// floor: kernel image, page tables, resident heap).
    pub base_pages: u64,
    /// Pages dirtied per million cycles of guest online time in the
    /// epoch before the move — the dirty rate.
    pub dirty_pages_per_mcycle: u64,
    /// Copy bandwidth, expressed as cycles of pause per page.
    pub copy_cycles_per_page: u64,
    /// Fixed stop-and-copy downtime floor in cycles.
    pub downtime_base: Cycles,
}

impl Default for MigrationModel {
    fn default() -> Self {
        MigrationModel {
            base_pages: 8_192,
            dirty_pages_per_mcycle: 48,
            copy_cycles_per_page: 1_500,
            // ~0.3 ms at the default 2 GHz-scale clock.
            downtime_base: Cycles(600_000),
        }
    }
}

impl MigrationModel {
    /// Pages that must be copied for a VM that was online for
    /// `online_delta` cycles in the last epoch.
    pub fn dirty_pages(&self, online_delta: Cycles) -> u64 {
        self.base_pages + (online_delta.as_u64() / 1_000_000) * self.dirty_pages_per_mcycle
    }

    /// Guest-visible pause for copying `dirty` pages.
    pub fn pause(&self, dirty: u64) -> Cycles {
        self.downtime_base + Cycles(dirty.saturating_mul(self.copy_cycles_per_page))
    }

    /// Guest-visible penalty for a migration that aborts mid-copy: the
    /// abort is detected halfway through the stop-and-copy, so the
    /// source guest ate half the full pause for nothing before it is
    /// rolled back. Deterministic so the cluster auditor can re-derive
    /// it from any [`AbortRecord`].
    pub fn abort_penalty(&self, dirty: u64) -> Cycles {
        Cycles(self.pause(dirty).as_u64() / 2)
    }
}

/// One executed live migration, as recorded by the cluster driver. The
/// cluster auditor recomputes `dirty_pages` and `pause` from
/// `online_delta` through the same model and panics on any mismatch.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MigrationRecord {
    /// Epoch (0-based) at whose boundary the move happened.
    pub epoch: u64,
    /// Cluster-wide VM id.
    pub vm: usize,
    /// VM name.
    pub name: String,
    /// Source host.
    pub from: usize,
    /// Destination host.
    pub to: usize,
    /// The VM's online cycles in the epoch before the move — the dirty
    /// model's input.
    pub online_delta: u64,
    /// Pages copied.
    pub dirty_pages: u64,
    /// Guest-visible dead time in cycles.
    pub pause: u64,
}

/// One *aborted* migration attempt: the VM was extracted, the copy
/// failed (per the fault plan), and the image was rolled back onto the
/// source with `penalty` cycles of guest-visible dead time. The cluster
/// auditor recomputes `dirty_pages` and `penalty` from `online_delta`
/// through the model and panics on any mismatch.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct AbortRecord {
    /// Epoch (0-based) at whose boundary the attempt was made.
    pub epoch: u64,
    /// Cluster-wide VM id.
    pub vm: usize,
    /// VM name.
    pub name: String,
    /// Source host (where the VM was rolled back to).
    pub from: usize,
    /// Intended destination host.
    pub to: usize,
    /// Attempt number in the retry chain, 1-based.
    pub attempt: u32,
    /// The VM's online cycles in the epoch before the attempt.
    pub online_delta: u64,
    /// Pages the copy would have moved.
    pub dirty_pages: u64,
    /// Guest-visible dead time of the failed attempt in cycles.
    pub penalty: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busier_vms_cost_more_to_move() {
        let m = MigrationModel::default();
        let idle = m.pause(m.dirty_pages(Cycles(0)));
        let busy = m.pause(m.dirty_pages(Cycles(200_000_000)));
        assert!(busy > idle);
        assert_eq!(m.dirty_pages(Cycles(0)), m.base_pages);
    }

    #[test]
    fn abort_penalty_is_half_the_pause() {
        let m = MigrationModel::default();
        let dirty = m.dirty_pages(Cycles(90_000_000));
        assert_eq!(m.abort_penalty(dirty).as_u64(), m.pause(dirty).as_u64() / 2);
        assert!(m.abort_penalty(dirty) < m.pause(dirty));
    }
}
