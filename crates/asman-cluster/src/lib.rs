//! Cluster layer: N simulated hosts advanced in lock-step epochs with a
//! global balancer and cost-modeled live migration.
//!
//! The single-machine model reproduces ASMan's *intra-host* adaptive
//! coscheduling; this crate asks the paper's natural follow-on question:
//! when the VCRD/spin telemetry is exported off-host, can a *cluster*
//! scheduler use it to fix placements that no per-host scheduler can?
//! A host whose resident gangs demand more PCPUs than exist will thrash
//! on lock-holder preemption no matter how cleverly it coschedules —
//! the only cure is moving a gang elsewhere.
//!
//! The driver is deterministic *and parallel*: hosts are advanced to
//! each epoch boundary on a bounded scoped-thread pool
//! ([`ClusterConfig::jobs`]; each host is itself a deterministic
//! event-driven simulation with its own seed and flight buffer, so no
//! RNG draw or recorded event can leak across workers), each worker
//! snapshots its host's per-VM telemetry counters before the barrier,
//! and then the serial section runs: deltas are formed from the
//! captured counters, a conflict-free multi-move plan is taken
//! ([`balancer::plan`], bounded by [`ClusterConfig::max_moves`]), and
//! the planned stop-and-copy migrations execute in plan order with
//! their pauses charged through the [`MigrationModel`].
//! Results are bit-identical for every worker count — `jobs == 1`
//! degenerates to the historical sequential loop, and any other count
//! only changes which thread advances which host, never what the host
//! computes. An always-on auditor re-derives every invariant it can
//! (VM conservation, registry/host agreement, migration-cost
//! conservation) each epoch.
//!
//! # Faults and recovery
//!
//! A [`FaultPlan`] in [`ClusterConfig::faults`] injects three failure
//! modes at epoch boundaries, and the driver must stay correct under
//! all of them:
//!
//! * **Migration aborts** — a move fails mid-copy: the extracted
//!   [`asman_hypervisor::VmImage`] is rolled back onto the source
//!   (tombstone cleared, counters monotone), the guest eats a modeled
//!   [`MigrationModel::abort_penalty`], and the balancer retries the
//!   same move with exponential backoff until
//!   [`ClusterConfig::retry_cap`] attempts are spent.
//! * **Host slowdowns** — the host advertises derated capacity and
//!   stops admitting new VMs; residents keep running.
//! * **Host crashes** — every resident VM is evacuated and re-placed
//!   deterministically (healthy hosts first, then least-loaded, then
//!   lowest index); the dead host admits nothing forever after.
//!
//! Because the plan is a pure data schedule (and randomly generated
//! plans draw from their own forked RNG stream), a faulted run is
//! exactly as replayable and `--jobs`-independent as a clean one.

#![warn(missing_docs)]

pub mod balancer;
pub mod checkpoint;
pub mod churn;
pub mod migration;
pub mod scenario;

pub use balancer::{decide, plan, HostView, Move, Plan, Policy, Snapshot, VmView};
pub use checkpoint::{diff_states, Checkpoint, CheckpointConfig, ClusterState};
pub use churn::{ChurnKind, ChurnPlan, ChurnSpec, ShapeKind, VmShape};
pub use migration::{AbortRecord, MigrationModel, MigrationRecord};

use asman_hypervisor::{Machine, VmCounters};
use asman_sim::{
    CatMask, Cycles, EpochSample, FaultKind, FaultPlan, FlightEv, FlightEvent, HostSample,
    MetricsRegistry, SeriesSampler, SweepRunner,
};
use serde::Serialize;
use std::time::Instant;

/// Cluster driver parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Lock-step epoch length in milliseconds (the balancer's cadence).
    pub epoch_ms: u64,
    /// Number of epochs to run.
    pub epochs: u64,
    /// Placement policy.
    pub policy: Policy,
    /// Migration cost model.
    pub model: MigrationModel,
    /// A migrated VM may not move again for this many epochs.
    pub cooldown_epochs: u64,
    /// Deterministic fault schedule (empty = clean run).
    pub faults: FaultPlan,
    /// Maximum migration attempts per retry chain before the balancer
    /// gives up on the VM for the rest of the run.
    pub retry_cap: u32,
    /// Deterministic VM arrival/departure schedule (empty = static
    /// population).
    pub churn: ChurnPlan,
    /// Run the (O(registry + records)) invariant auditor only every
    /// this many epochs. `1` (the default) audits every boundary; soak
    /// runs amortize it so the audit's record re-derivation does not
    /// dominate a 100k-epoch run. The end-of-run audit in
    /// [`Cluster::run`] is unconditional.
    pub audit_every: u64,
    /// Worker threads for intra-epoch host advancement; `0` selects
    /// [`std::thread::available_parallelism`] (the
    /// [`SweepRunner::new`] convention). Results are bit-identical for
    /// every value.
    pub jobs: usize,
    /// Per-epoch migration budget: how many migration chains (live
    /// retries plus freshly planned moves) the cluster may carry per
    /// epoch boundary. `1` reproduces the historical
    /// one-migration-per-epoch driver bit-for-bit; the CLI default is
    /// `max(1, hosts/8)`.
    pub max_moves: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            epoch_ms: 60,
            epochs: 10,
            policy: Policy::Static,
            model: MigrationModel::default(),
            cooldown_epochs: 3,
            faults: FaultPlan::empty(),
            retry_cap: 3,
            churn: ChurnPlan::empty(),
            audit_every: 1,
            jobs: 0,
            max_moves: 1,
        }
    }
}

/// Health of one host, as the cluster driver tracks it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum HostHealth {
    /// Fully operational; admits new VMs.
    Healthy,
    /// Advertising derated capacity; residents keep running but
    /// admission control rejects new VMs.
    Degraded {
        /// Capacity reduction in percent.
        pct: u32,
    },
    /// Dead: residents were evacuated, nothing runs or is admitted.
    Crashed,
}

/// An aborted migration waiting out its exponential backoff. The chain
/// holds one of the cluster's [`ClusterConfig::max_moves`] migration
/// slots — and its source/destination endpoint caps — until it
/// commits, is abandoned, or exhausts the attempt cap.
#[derive(Clone, Copy, Debug)]
struct PendingRetry {
    /// Cluster-wide VM id being moved.
    vm: usize,
    /// Destination of the original decision.
    to: usize,
    /// Epoch at whose boundary the retry may run.
    due: u64,
    /// Attempts already made (>= 1).
    attempts: u32,
    /// Causal span id minted at the chain's first `prepare`; every
    /// retry attempt reuses it so the flight stream ties the whole
    /// chain together.
    span: u32,
}

/// Wall-time attribution of one epoch of the parallel driver, captured
/// only when [`Cluster::enable_profiling`] was called. Wall-clock is
/// inherently non-deterministic, so this never feeds a digest-bearing
/// artifact — only `BENCH_cluster.json` and bench stdout.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct EpochProfile {
    /// Epoch index.
    pub epoch: u64,
    /// Wall time of the parallel host-advance phase.
    pub parallel_wall_ns: u64,
    /// Sum of per-host worker run times inside that phase.
    pub worker_busy_ns: u64,
    /// Idle worker-time at the barrier: `jobs * parallel_wall -
    /// worker_busy`, clamped at zero.
    pub barrier_stall_ns: u64,
    /// Wall time of the serial balancer section (delta collection,
    /// faults, audit, decision, migration, series sampling).
    pub serial_wall_ns: u64,
}

/// Memory-occupancy proxy of the cluster driver, from
/// [`Cluster::occupancy`]. Every component is a piece of state that
/// could silently grow with run length if a lifetime bug leaked it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct Occupancy {
    /// Registry entries (one per VM that ever lived; grows only with
    /// arrivals, never with epochs).
    pub registry: usize,
    /// Registered VMs currently resident.
    pub resident: usize,
    /// Host VM-slot tables, summed (with slot reuse, bounded by peak
    /// residency plus a few stranded shapes; without it, grows with
    /// every arrival).
    pub slots: usize,
    /// Evacuated slots awaiting reuse.
    pub tombstones: usize,
    /// In-flight migration retry chains (bounded by
    /// [`ClusterConfig::max_moves`]).
    pub pending_retries: usize,
    /// Epoch samples held by the series ring (bounded by its capacity).
    pub series_len: usize,
}

/// What the parallel advance hands back to the serial section: every
/// worker-captured per-host payload plus wall-time attribution. Only
/// `counters` and `runnable` are deterministic; the `*_ns` fields are
/// wall-clock and must never feed a digest-bearing artifact.
struct AdvanceOut {
    counters: Vec<Vec<VmCounters>>,
    runnable: Vec<u32>,
    parallel_wall_ns: u64,
    worker_busy_ns: u64,
}

/// Cluster-side registry entry for one VM. The cluster id is stable for
/// the whole run; `host`/`local` track where the VM currently lives.
#[derive(Clone, Debug)]
struct VmEntry {
    name: String,
    host: usize,
    local: usize,
    vcpus: usize,
    last_migration: Option<u64>,
    migrations: u64,
    prev_spin: u64,
    prev_vcrd_high: u64,
    prev_online: u64,
    spin_delta: u64,
    vcrd_high_delta: u64,
    online_delta: u64,
    /// Attempts spent by the current (or last) retry chain.
    attempts: u32,
    /// The retry chain exhausted its cap; the balancer leaves the VM
    /// alone for the rest of the run.
    gave_up: bool,
    /// The VM shut down and left the cluster. The entry stays in the
    /// registry (cluster ids are stable for the whole run) but is
    /// skipped by the balancer, delta collection, evacuation and the
    /// auditor; its `host`/`local` fields are frozen at the departure
    /// location and must not be dereferenced — with slot reuse enabled
    /// a later arrival may live there.
    departed: bool,
    /// Final report row, captured from the travelling counters at the
    /// moment of departure.
    final_row: Option<VmRow>,
}

/// Per-VM row of the final report.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct VmRow {
    /// VM name.
    pub name: String,
    /// Host the VM ended the run on.
    pub host: usize,
    /// VCPU count.
    pub vcpus: usize,
    /// Times the VM was live-migrated.
    pub migrations: u64,
    /// Total cycles burned spinning (kernel locks, barriers, pipeline
    /// flags) — the wasted-CPU metric the balancer tries to recover.
    pub spin_cycles: u64,
    /// Total cycles of useful guest work.
    pub useful_cycles: u64,
    /// Total cycles the VMM saw the VM's VCRD HIGH.
    pub vcrd_high_cycles: u64,
    /// Total VCPU-online cycles.
    pub online_cycles: u64,
}

/// Per-host row of the final report.
#[derive(Clone, Debug, Serialize)]
pub struct HostRow {
    /// Host index.
    pub host: usize,
    /// Physical CPUs.
    pub pcpus: usize,
    /// Names of the VMs resident at the end of the run.
    pub vms: Vec<String>,
    /// Total resident VCPUs at the end of the run.
    pub resident_vcpus: usize,
    /// Simulation events the host processed.
    pub events_processed: u64,
}

/// Serializable result of one cluster run.
///
/// `Serialize` is written by hand: the `recovery` section appears only
/// when a fault plan was armed, so the serialized form — and therefore
/// every golden digest — of a clean run is byte-identical to what it
/// was before faults existed.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Policy label.
    pub policy: &'static str,
    /// Host count.
    pub hosts: usize,
    /// Epochs run.
    pub epochs: u64,
    /// Epoch length in milliseconds.
    pub epoch_ms: u64,
    /// Final per-host placement.
    pub host_rows: Vec<HostRow>,
    /// Per-VM outcome (cluster id order).
    pub vm_rows: Vec<VmRow>,
    /// Every migration executed, in order.
    pub migrations: Vec<MigrationRecord>,
    /// Cluster-wide wasted spin cycles (sum over VMs).
    pub total_spin_cycles: u64,
    /// Cluster-wide useful cycles (sum over VMs).
    pub total_useful_cycles: u64,
    /// Total guest-visible migration dead time in cycles.
    pub total_pause_cycles: u64,
    /// Fault/recovery outcome; `None` for clean runs (and then omitted
    /// from serialization entirely).
    pub recovery: Option<RecoveryReport>,
    /// Churn outcome; `None` for static-population runs (and then
    /// omitted from serialization entirely, keeping churn-free digests
    /// byte-identical to the pre-churn format).
    pub churn: Option<ChurnReport>,
}

impl Serialize for ClusterReport {
    fn to_value(&self) -> serde::Value {
        // Field order mirrors the struct declaration, exactly as the
        // derive would emit it.
        let mut fields = vec![
            ("policy".to_string(), self.policy.to_value()),
            ("hosts".to_string(), self.hosts.to_value()),
            ("epochs".to_string(), self.epochs.to_value()),
            ("epoch_ms".to_string(), self.epoch_ms.to_value()),
            ("host_rows".to_string(), self.host_rows.to_value()),
            ("vm_rows".to_string(), self.vm_rows.to_value()),
            ("migrations".to_string(), self.migrations.to_value()),
            (
                "total_spin_cycles".to_string(),
                self.total_spin_cycles.to_value(),
            ),
            (
                "total_useful_cycles".to_string(),
                self.total_useful_cycles.to_value(),
            ),
            (
                "total_pause_cycles".to_string(),
                self.total_pause_cycles.to_value(),
            ),
        ];
        if let Some(rec) = &self.recovery {
            fields.push(("recovery".to_string(), rec.to_value()));
        }
        if let Some(ch) = &self.churn {
            fields.push(("churn".to_string(), ch.to_value()));
        }
        serde::Value::Object(fields)
    }
}

/// Churn outcome of a run with a non-empty [`ClusterConfig::churn`].
#[derive(Clone, Debug, Serialize)]
pub struct ChurnReport {
    /// The churn plan that was armed.
    pub plan: ChurnPlan,
    /// VMs that arrived and were admitted.
    pub arrivals: u64,
    /// VMs that departed.
    pub departures: u64,
    /// Arrivals rejected because no healthy host could fit them.
    pub arrivals_rejected: u64,
    /// Departures skipped because the named host held no live VM.
    pub departures_skipped: u64,
    /// VMs resident (live, non-departed) at the end of the run.
    pub resident_end: u64,
    /// Departed VMs whose guest program had run to completion.
    pub departed_finished: u64,
}

/// Fault and recovery outcome of a faulted run.
#[derive(Clone, Debug, Serialize)]
pub struct RecoveryReport {
    /// The fault plan that was armed.
    pub plan: FaultPlan,
    /// Final health of every host.
    pub host_health: Vec<HostHealth>,
    /// Every aborted migration attempt, in order.
    pub aborts: Vec<AbortRecord>,
    /// Every crash evacuation, in order (same cost model and record
    /// shape as a planned migration).
    pub evacuations: Vec<MigrationRecord>,
    /// Aborted-then-retried migrations that eventually committed.
    pub retries_committed: u64,
    /// Retry chains dropped because the destination stopped admitting
    /// (or the VM was evacuated onto it) mid-chain.
    pub retries_abandoned: u64,
    /// VMs whose retry chains exhausted [`ClusterConfig::retry_cap`].
    pub gave_up: u64,
    /// Total guest-visible dead time of failed attempts, in cycles.
    pub total_abort_penalty_cycles: u64,
    /// Total guest-visible dead time of evacuations, in cycles.
    pub total_evacuation_pause_cycles: u64,
}

/// N machines in lock-step plus the global balancer state.
pub struct Cluster {
    cfg: ClusterConfig,
    /// Scoped-thread pool advancing hosts within an epoch. Sized once
    /// from [`ClusterConfig::jobs`] at construction.
    runner: SweepRunner,
    hosts: Vec<Machine>,
    health: Vec<HostHealth>,
    vms: Vec<VmEntry>,
    records: Vec<MigrationRecord>,
    aborts: Vec<AbortRecord>,
    evacuations: Vec<MigrationRecord>,
    /// Live migration retry chains, FIFO by chain age. At most
    /// `cfg.max_moves` entries; each claims its endpoints' per-host
    /// send/receive caps while alive.
    pending: Vec<PendingRetry>,
    retries_committed: u64,
    retries_abandoned: u64,
    gave_up: u64,
    arrivals: u64,
    departures: u64,
    arrivals_rejected: u64,
    departures_skipped: u64,
    departed_finished: u64,
    epochs_run: u64,
    /// Per-epoch time-series sampler; `None` (zero cost, digest
    /// unchanged) unless [`Cluster::enable_series`] was called.
    series: Option<SeriesSampler>,
    /// Per-epoch wall-time attribution; `None` unless
    /// [`Cluster::enable_profiling`] was called.
    prof: Option<Vec<EpochProfile>>,
    /// Next causal migration-span id (minted at `prepare`).
    next_span: u32,
    #[cfg(feature = "audit")]
    fault_dirty_undercount: bool,
    #[cfg(feature = "audit")]
    fault_sticky_tombstone: bool,
}

impl Cluster {
    /// Assemble a cluster from pre-built hosts. Every VM currently
    /// resident on any host is registered with a cluster-wide id
    /// (host-major order).
    pub fn new(cfg: ClusterConfig, hosts: Vec<Machine>) -> Self {
        assert!(!hosts.is_empty(), "cluster needs at least one host");
        let mut vms = Vec::new();
        for (h, m) in hosts.iter().enumerate() {
            for local in 0..m.vm_count() {
                assert!(!m.vm_evacuated(local), "seed hosts must have no tombstones");
                vms.push(VmEntry {
                    name: m.vm_name(local).to_string(),
                    host: h,
                    local,
                    vcpus: m.vm_kernel(local).vcpu_count(),
                    last_migration: None,
                    migrations: 0,
                    prev_spin: 0,
                    prev_vcrd_high: 0,
                    prev_online: 0,
                    spin_delta: 0,
                    vcrd_high_delta: 0,
                    online_delta: 0,
                    attempts: 0,
                    gave_up: false,
                    departed: false,
                    final_row: None,
                });
            }
        }
        if let Some(h) = cfg.faults.max_host() {
            assert!(
                h < hosts.len(),
                "fault plan touches host {h} but the cluster has {}",
                hosts.len()
            );
        }
        if let Some(h) = cfg.churn.max_host() {
            assert!(
                h < hosts.len(),
                "churn plan departs from host {h} but the cluster has {}",
                hosts.len()
            );
        }
        assert!(cfg.audit_every >= 1, "audit_every must be at least 1");
        assert!(cfg.max_moves >= 1, "max_moves must be at least 1");
        let health = vec![HostHealth::Healthy; hosts.len()];
        let runner = SweepRunner::new(cfg.jobs);
        Cluster {
            cfg,
            runner,
            hosts,
            health,
            vms,
            records: Vec::new(),
            aborts: Vec::new(),
            evacuations: Vec::new(),
            pending: Vec::new(),
            retries_committed: 0,
            retries_abandoned: 0,
            gave_up: 0,
            arrivals: 0,
            departures: 0,
            arrivals_rejected: 0,
            departures_skipped: 0,
            departed_finished: 0,
            epochs_run: 0,
            series: None,
            prof: None,
            next_span: 0,
            #[cfg(feature = "audit")]
            fault_dirty_undercount: false,
            #[cfg(feature = "audit")]
            fault_sticky_tombstone: false,
        }
    }

    /// Epoch length in cycles (all hosts share host 0's clock).
    pub fn epoch_cycles(&self) -> Cycles {
        self.hosts[0].config().clock.ms(self.cfg.epoch_ms)
    }

    /// The hosts, for inspection.
    pub fn hosts(&self) -> &[Machine] {
        &self.hosts
    }

    /// Current host of cluster VM `vm`.
    pub fn vm_host(&self, vm: usize) -> usize {
        self.vms[vm].host
    }

    /// Registered VM count: every VM that ever lived in the cluster,
    /// including departed ones (cluster ids are stable for the run).
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// VMs currently resident (registered and not departed).
    pub fn resident_vm_count(&self) -> usize {
        self.vms.iter().filter(|e| !e.departed).count()
    }

    /// Enable tombstone slot reuse on every host: a departing VM's slot
    /// becomes eligible for a later arrival of the same VCPU count, and
    /// the slot's generation counter invalidates any stale timers or
    /// wakes armed for the previous occupant. Without this, a long
    /// churned run grows each host's slot table with every arrival.
    pub fn enable_slot_reuse(&mut self) {
        for m in &mut self.hosts {
            m.enable_slot_reuse();
        }
    }

    /// Point-in-time memory-occupancy proxy of the cluster driver. A
    /// soak run samples this at every audit checkpoint and asserts each
    /// component stays bounded — the cheap stand-in for "RSS does not
    /// grow with epochs".
    pub fn occupancy(&self) -> Occupancy {
        let slots: usize = self.hosts.iter().map(|m| m.vm_count()).sum();
        let live_slots: usize = self.hosts.iter().map(|m| m.active_vm_count()).sum();
        Occupancy {
            registry: self.vms.len(),
            resident: self.resident_vm_count(),
            slots,
            tombstones: slots - live_slots,
            pending_retries: self.pending.len(),
            series_len: self.series.as_ref().map_or(0, |s| s.samples().count()),
        }
    }

    /// Churn counters so far: `(arrivals, departures, arrivals_rejected,
    /// departures_skipped)`. Readable mid-run, unlike the end-of-run
    /// [`ChurnReport`], so a soak can cross-check the registry against
    /// the admitted population at every checkpoint.
    pub fn churn_counts(&self) -> (u64, u64, u64, u64) {
        (
            self.arrivals,
            self.departures,
            self.arrivals_rejected,
            self.departures_skipped,
        )
    }

    /// Migrations executed so far.
    pub fn records(&self) -> &[MigrationRecord] {
        &self.records
    }

    /// Aborted migration attempts so far.
    pub fn aborts(&self) -> &[AbortRecord] {
        &self.aborts
    }

    /// Crash evacuations so far.
    pub fn evacuations(&self) -> &[MigrationRecord] {
        &self.evacuations
    }

    /// Current health of every host.
    pub fn host_health(&self) -> &[HostHealth] {
        &self.health
    }

    /// Register the recovery counters into `reg` under `cluster.*`.
    /// Zero-valued counters are skipped so a clean run exports nothing.
    pub fn export_recovery_metrics(&self, reg: &mut MetricsRegistry) {
        let crashed = self
            .health
            .iter()
            .filter(|h| **h == HostHealth::Crashed)
            .count() as u64;
        let degraded = self
            .health
            .iter()
            .filter(|h| matches!(h, HostHealth::Degraded { .. }))
            .count() as u64;
        let penalty: u64 = self.aborts.iter().map(|a| a.penalty).sum();
        let evac_pause: u64 = self.evacuations.iter().map(|r| r.pause).sum();
        for (name, v) in [
            ("cluster.hosts.crashed", crashed),
            ("cluster.hosts.degraded", degraded),
            ("cluster.migration.aborts", self.aborts.len() as u64),
            (
                "cluster.migration.retries_committed",
                self.retries_committed,
            ),
            (
                "cluster.migration.retries_abandoned",
                self.retries_abandoned,
            ),
            ("cluster.migration.gave_up", self.gave_up),
            ("cluster.migration.abort_penalty_cycles", penalty),
            ("cluster.evacuations", self.evacuations.len() as u64),
            ("cluster.evacuation_pause_cycles", evac_pause),
        ] {
            if v > 0 {
                reg.inc(name, v);
            }
        }
    }

    /// Arm the dirty-page undercount fault: executed migrations copy
    /// only half the modeled dirty pages, so their records no longer
    /// satisfy the cost model. The cluster auditor must catch this at
    /// the next epoch boundary.
    #[cfg(feature = "audit")]
    pub fn audit_inject_dirty_undercount(&mut self) {
        self.fault_dirty_undercount = true;
    }

    /// Injected fault for auditor self-tests: abort rollbacks "forget"
    /// to clear the source tombstone, leaving the registry pointing at
    /// an evacuated slot. The auditor must catch it at the next epoch
    /// boundary.
    #[cfg(feature = "audit")]
    pub fn audit_inject_sticky_tombstone(&mut self) {
        self.fault_sticky_tombstone = true;
    }

    /// Injected mutation for the divergence bisector's self-tests:
    /// `host`'s scheduler silently skips the BOOST priority tier, a
    /// subtle behavioral change whose first observable divergence the
    /// bisector must pinpoint.
    #[cfg(feature = "audit")]
    pub fn audit_inject_boost_skip(&mut self, host: usize) {
        self.hosts[host].audit_inject_boost_skip();
    }

    /// Enable flight recording on every host (host streams are kept
    /// per-host; see [`Cluster::drain_flight`]).
    pub fn enable_flight(&mut self, mask: CatMask, capacity: usize) {
        for m in &mut self.hosts {
            m.enable_flight(mask, capacity);
        }
    }

    /// Drain each host's merged flight stream, tagged with its host id.
    pub fn drain_flight(&mut self) -> Vec<(usize, Vec<FlightEvent>)> {
        self.hosts
            .iter_mut()
            .enumerate()
            .map(|(h, m)| (h, m.flight_events()))
            .collect()
    }

    /// Enable per-epoch time-series sampling into a ring of `capacity`
    /// epochs. Sampling runs entirely inside the serial barrier section
    /// of [`Cluster::run_epoch`] and only *reads* host and registry
    /// state, so enabling it cannot change any simulation result for
    /// any worker count.
    pub fn enable_series(&mut self, capacity: usize) {
        self.series = Some(SeriesSampler::new(capacity));
    }

    /// The series sampler, if [`Cluster::enable_series`] was called.
    pub fn series(&self) -> Option<&SeriesSampler> {
        self.series.as_ref()
    }

    /// Enable scheduler-latency histograms (vCPU wakeup-to-dispatch and
    /// preemption-hold) and guest spin-episode distributions on every
    /// host.
    pub fn enable_sched_latency(&mut self) {
        for m in &mut self.hosts {
            m.enable_sched_latency();
        }
    }

    /// Enable per-epoch wall-time attribution of the parallel driver
    /// (worker run vs. barrier stall vs. serial balancer section).
    pub fn enable_profiling(&mut self) {
        self.prof = Some(Vec::new());
    }

    /// Per-epoch driver profile; empty unless
    /// [`Cluster::enable_profiling`] was called before running.
    pub fn profile(&self) -> &[EpochProfile] {
        self.prof.as_deref().unwrap_or(&[])
    }

    /// Run the configured number of epochs and produce the report.
    pub fn run(&mut self) -> ClusterReport {
        for _ in 0..self.cfg.epochs {
            self.run_epoch();
        }
        self.audit_check();
        self.report()
    }

    /// The effective intra-epoch worker count.
    pub fn jobs(&self) -> usize {
        self.runner.jobs()
    }

    /// Advance every live host to the next epoch boundary — in parallel
    /// on the worker pool — apply the epoch's scheduled faults, then
    /// balance. Crashed hosts stay frozen at the boundary where they
    /// died.
    ///
    /// Everything after the advance is deliberately serial: fault
    /// application, the balancer plan and the migrations all mutate
    /// cross-host state and happen at the barrier, in a fixed order, on
    /// the calling thread. Combined with per-host RNG streams, per-host
    /// flight buffers (merged later by stable `(time, host, seq)`
    /// order) and worker-side telemetry capture, this makes the run
    /// bit-identical for every worker count.
    pub fn run_epoch(&mut self) {
        let epoch = self.epochs_run;
        let end = self.epoch_cycles() * (epoch + 1);
        let adv = self.advance_hosts(end);
        let serial_t0 = Instant::now();
        self.collect_deltas(&adv.counters);
        // Churn runs right after delta collection: departures fold the
        // leaving VM's counter tail into this epoch's deltas (the slot
        // indices captured by the workers are still valid), and
        // arrivals are placed before faults can crash their host out of
        // the candidate set at this same boundary.
        self.apply_churn(epoch, end);
        self.apply_host_faults(epoch, end);
        if epoch.is_multiple_of(self.cfg.audit_every) {
            self.audit_check();
        }
        // Migration step. Retry chains go first, in FIFO chain order: a
        // due chain revalidates and re-attempts, one still backing off
        // keeps its slot. Every chain alive at the start of the step —
        // due, waiting, or abandoned at revalidation — consumes one
        // unit of this epoch's move budget, so at `max_moves == 1` a
        // live chain suppresses fresh planning exactly as the
        // historical single-slot driver did. Chains and executed
        // retries claim their endpoints' per-host send/receive caps;
        // the planner then fills the remaining budget with
        // conflict-free fresh moves.
        let chains_at_start = self.pending.len();
        let mut src_used = vec![false; self.hosts.len()];
        let mut dst_used = vec![false; self.hosts.len()];
        for p in std::mem::take(&mut self.pending) {
            if p.due <= epoch {
                if let Some((mv, attempt, span)) = self.revalidate_retry(p) {
                    let from = self.vms[mv.vm].host;
                    // Committed, re-queued, or given up: the attempt
                    // occupied both endpoints this epoch either way.
                    self.execute_migration(epoch, mv, end, attempt, span);
                    src_used[from] = true;
                    dst_used[mv.to] = true;
                }
            } else {
                src_used[self.vms[p.vm].host] = true;
                dst_used[p.to] = true;
                self.pending.push(p);
            }
        }
        let budget = self.cfg.max_moves.saturating_sub(chains_at_start);
        let (moves_planned, moves_denied_conflict) = if budget > 0 {
            let mut snap = self.snapshot(epoch);
            // VMs owned by a chain that is still alive (waiting, or
            // re-queued by an abort just now) are off-limits to the
            // planner regardless of endpoint caps.
            for p in &self.pending {
                snap.vms[p.vm].cooling = true;
            }
            let plan = balancer::plan(self.cfg.policy, &snap, budget, &mut src_used, &mut dst_used);
            let planned = plan.moves.len() as u32;
            for mv in plan.moves {
                self.execute_migration(epoch, mv, end, 1, None);
            }
            (planned, plan.denied_conflict as u32)
        } else {
            (0, 0)
        };
        self.sample_series(epoch, &adv.runnable, moves_planned, moves_denied_conflict);
        self.epochs_run = epoch + 1;
        if let Some(prof) = self.prof.as_mut() {
            let jobs = self.runner.jobs() as u64;
            prof.push(EpochProfile {
                epoch,
                parallel_wall_ns: adv.parallel_wall_ns,
                worker_busy_ns: adv.worker_busy_ns,
                barrier_stall_ns: jobs
                    .saturating_mul(adv.parallel_wall_ns)
                    .saturating_sub(adv.worker_busy_ns),
                serial_wall_ns: serial_t0.elapsed().as_nanos() as u64,
            });
        }
    }

    /// Parallel phase of an epoch: every live host runs to the boundary
    /// as one sweep cell, and the worker that advanced it snapshots its
    /// per-slot telemetry counters before returning — so the serial
    /// section never touches a guest kernel or accounting registry.
    /// Hosts share no state (the one cross-host operation, migration,
    /// happens serially at the barrier), so cell index `h` fully
    /// determines cell `h`'s result and the pool's claim order cannot
    /// matter. Crashed hosts are frozen and skipped; their telemetry
    /// slots stay empty, and the registry never points at them.
    fn advance_hosts(&mut self, end: Cycles) -> AdvanceOut {
        let mut counters: Vec<Vec<VmCounters>> = vec![Vec::new(); self.hosts.len()];
        let mut runnable = vec![0u32; self.hosts.len()];
        let runner = self.runner;
        let health = &self.health;
        let live: Vec<(usize, &mut Machine)> = self
            .hosts
            .iter_mut()
            .enumerate()
            .filter(|(h, _)| health[*h] != HostHealth::Crashed)
            .collect();
        let wall_t0 = Instant::now();
        let mut worker_busy_ns = 0u64;
        for (h, c, r, busy) in runner.map(live, |(h, m)| {
            let t0 = Instant::now();
            m.run_until(end);
            let busy = t0.elapsed().as_nanos() as u64;
            (h, m.all_vm_counters(), m.runnable_vcpus() as u32, busy)
        }) {
            counters[h] = c;
            runnable[h] = r;
            worker_busy_ns += busy;
        }
        AdvanceOut {
            counters,
            runnable,
            parallel_wall_ns: wall_t0.elapsed().as_nanos() as u64,
            worker_busy_ns,
        }
    }

    /// Build and push this epoch's series sample. Runs after the
    /// migration so placement counters reflect the epoch's outcome;
    /// reads only registry deltas, health, and the worker-captured
    /// runnable counts — never a guest kernel — so it is identical for
    /// every worker count.
    fn sample_series(
        &mut self,
        epoch: u64,
        runnable: &[u32],
        moves_planned: u32,
        moves_denied_conflict: u32,
    ) {
        if self.series.is_none() {
            return;
        }
        let mut hosts: Vec<HostSample> = (0..self.hosts.len())
            .map(|h| HostSample {
                host: h as u32,
                resident_vms: 0,
                resident_vcpus: 0,
                runnable_vcpus: runnable[h],
                online_delta: 0,
                spin_delta: 0,
                vcrd_high_delta: 0,
                derate_pct: match self.health[h] {
                    HostHealth::Degraded { pct } => pct,
                    _ => 0,
                },
                crashed: self.health[h] == HostHealth::Crashed,
            })
            .collect();
        for e in &self.vms {
            let hs = &mut hosts[e.host];
            // A VM that departed at this boundary still contributes its
            // final partial-epoch deltas (it burned them on this host),
            // but no longer counts as resident; entries departed in
            // earlier epochs carry zeroed deltas.
            if !e.departed {
                hs.resident_vms += 1;
                hs.resident_vcpus += e.vcpus as u32;
            }
            hs.online_delta += e.online_delta;
            hs.spin_delta += e.spin_delta;
            hs.vcrd_high_delta += e.vcrd_high_delta;
        }
        let sample = EpochSample {
            epoch,
            migrations_in_flight: self.pending.len() as u32,
            moves_planned,
            moves_denied_conflict,
            migrations: self.records.len() as u64,
            aborts: self.aborts.len() as u64,
            retries_committed: self.retries_committed,
            gave_up: self.gave_up,
            evacuations: self.evacuations.len() as u64,
            hosts,
        };
        self.series.as_mut().expect("checked above").push(sample);
    }

    /// Apply this epoch's scheduled host faults: derate slow hosts,
    /// crash and evacuate dead ones. Fault events land in the affected
    /// (or, for evacuations, receiving) host's flight stream.
    fn apply_host_faults(&mut self, epoch: u64, now: Cycles) {
        let faults: Vec<FaultKind> = self.cfg.faults.host_faults_at(epoch).collect();
        for kind in faults {
            match kind {
                FaultKind::Slow { host, derate_pct } => {
                    if self.health[host] == HostHealth::Crashed {
                        continue;
                    }
                    self.hosts[host].set_capacity_derate(derate_pct);
                    self.health[host] = HostHealth::Degraded { pct: derate_pct };
                    self.hosts[host].record_cluster_event(FlightEv::HostDerate {
                        host: host as u32,
                        pct: derate_pct,
                    });
                }
                FaultKind::Crash { host } => {
                    if self.health[host] == HostHealth::Crashed {
                        continue;
                    }
                    self.health[host] = HostHealth::Crashed;
                    self.hosts[host]
                        .record_cluster_event(FlightEv::HostCrash { host: host as u32 });
                    self.evacuate_host(host, epoch, now);
                }
                // host_faults_at never yields aborts; those are
                // consumed by execute_migration.
                FaultKind::Abort => unreachable!("abort is not a host fault"),
            }
        }
    }

    /// Apply this epoch's scheduled churn events in plan order.
    fn apply_churn(&mut self, epoch: u64, now: Cycles) {
        if self.cfg.churn.is_empty() {
            return;
        }
        let events: Vec<ChurnKind> = self.cfg.churn.events_at(epoch).collect();
        for kind in events {
            match kind {
                ChurnKind::Arrive { shape } => self.apply_arrival(epoch, shape, now),
                ChurnKind::Depart { host, slot } => self.apply_departure(host, slot),
            }
        }
    }

    /// Admit an arriving VM: place it on the healthy host with the
    /// fewest resident VCPUs that fits it (ties: lowest index), create
    /// it there and register it. Arrivals start their post-placement
    /// cooldown immediately so the balancer cannot bounce a VM that
    /// just landed. With no admitting host the arrival is rejected
    /// (counted, not fatal — a full cluster is a legitimate state).
    fn apply_arrival(&mut self, epoch: u64, shape: VmShape, now: Cycles) {
        let dest = (0..self.hosts.len())
            .filter(|&h| {
                self.health[h] == HostHealth::Healthy && shape.vcpus <= self.hosts[h].config().pcpus
            })
            .min_by_key(|&h| {
                let resident: usize = self
                    .vms
                    .iter()
                    .filter(|e| !e.departed && e.host == h)
                    .map(|e| e.vcpus)
                    .sum();
                (resident, h)
            });
        let Some(dest) = dest else {
            self.arrivals_rejected += 1;
            return;
        };
        // Names are minted from a global arrival sequence number, so
        // they are unique for the run and independent of placement.
        let name = format!("{}-c{}", shape.kind.prefix(), self.arrivals);
        self.arrivals += 1;
        let spec = scenario::arrival_spec(&shape, name.clone(), self.hosts[dest].config());
        let local = self.hosts[dest].create_vm(spec, now);
        self.vms.push(VmEntry {
            name,
            host: dest,
            local,
            vcpus: shape.vcpus,
            last_migration: Some(epoch),
            migrations: 0,
            prev_spin: 0,
            prev_vcrd_high: 0,
            prev_online: 0,
            spin_delta: 0,
            vcrd_high_delta: 0,
            online_delta: 0,
            attempts: 0,
            gave_up: false,
            departed: false,
            final_row: None,
        });
    }

    /// Depart the `slot`-th live VM on `host` (cluster-id order,
    /// wrapping modulo the live count): destroy it on its host, fold
    /// its counter tail into this epoch's deltas, finalize its report
    /// row, and abandon any retry chain that was moving it. A host with
    /// no live VM (empty, or crashed and already evacuated) skips the
    /// departure.
    fn apply_departure(&mut self, host: usize, slot: usize) {
        let candidates: Vec<usize> = (0..self.vms.len())
            .filter(|&id| !self.vms[id].departed && self.vms[id].host == host)
            .collect();
        if candidates.is_empty() {
            self.departures_skipped += 1;
            return;
        }
        let id = candidates[slot % candidates.len()];
        // A migration chain moving the departing VM has lost its
        // subject: the chain is abandoned, never retried against a VM
        // that no longer exists.
        let before = self.pending.len();
        self.pending.retain(|p| p.vm != id);
        self.retries_abandoned += (before - self.pending.len()) as u64;
        let local = self.vms[id].local;
        let ret = self.hosts[host].destroy_vm(local);
        // The travelling counters are final at destruction; reconcile
        // so the departure epoch's deltas (and this host's series
        // sample) cover the VM's last partial epoch.
        self.reconcile_extracted(id, ret.counters);
        self.departures += 1;
        if ret.finished {
            self.departed_finished += 1;
        }
        let e = &mut self.vms[id];
        e.departed = true;
        e.final_row = Some(VmRow {
            name: e.name.clone(),
            host,
            vcpus: e.vcpus,
            migrations: e.migrations,
            spin_cycles: ret.counters.spin,
            useful_cycles: ret.useful_cycles,
            vcrd_high_cycles: ret.counters.vcrd_high,
            online_cycles: ret.counters.online,
        });
    }

    /// Fold the counter tail of a just-extracted VM into its current
    /// epoch deltas and advance the baselines to the travelling image's
    /// values.
    ///
    /// The workers capture counters at the epoch boundary *before* the
    /// serial section runs; extraction then closes every in-progress
    /// accounting segment (a VCPU mid-spin is charged up to the
    /// boundary when the kernel preempts it), so the image's counters
    /// run ahead of the captured ones. Without this reconciliation the
    /// tail leaks into the *next* epoch's delta — under-counting the
    /// migration epoch (shrinking the dirty-page charge below what the
    /// guest really ran) and mis-attributing the spin to the
    /// destination host's series sample. On a departure the tail would
    /// be dropped entirely.
    fn reconcile_extracted(&mut self, vm: usize, c: VmCounters) {
        let e = &mut self.vms[vm];
        e.spin_delta += c.spin.saturating_sub(e.prev_spin);
        e.vcrd_high_delta += c.vcrd_high.saturating_sub(e.prev_vcrd_high);
        e.online_delta += c.online.saturating_sub(e.prev_online);
        e.prev_spin = c.spin;
        e.prev_vcrd_high = c.vcrd_high;
        e.prev_online = c.online;
    }

    /// Evacuate every VM registered on a crashed host and re-place it:
    /// healthy destinations before degraded ones, then fewest resident
    /// VCPUs, then lowest index. Each evacuation is charged like a
    /// stop-and-copy migration (the simulator restores the VM from its
    /// at-crash state; the full pause models the restore).
    fn evacuate_host(&mut self, host: usize, epoch: u64, now: Cycles) {
        let refugees: Vec<usize> = (0..self.vms.len())
            .filter(|&id| !self.vms[id].departed && self.vms[id].host == host)
            .collect();
        for id in refugees {
            let (local, vcpus, name) = {
                let e = &self.vms[id];
                (e.local, e.vcpus, e.name.clone())
            };
            let dest = (0..self.hosts.len())
                .filter(|&h| {
                    h != host
                        && self.health[h] != HostHealth::Crashed
                        && vcpus <= self.hosts[h].config().pcpus
                })
                .min_by_key(|&h| {
                    let degraded = self.health[h] != HostHealth::Healthy;
                    let resident: usize = self
                        .vms
                        .iter()
                        .filter(|e| !e.departed && e.host == h)
                        .map(|e| e.vcpus)
                        .sum();
                    (degraded, resident, h)
                })
                .unwrap_or_else(|| {
                    panic!("evacuation failed: no live host can take vm {id} ({name})")
                });
            let image = self.hosts[host].extract_vm(local);
            // Extraction closed the VM's in-progress accounting
            // segments; fold the tail into this epoch's deltas so the
            // evacuation is charged for everything the guest ran.
            self.reconcile_extracted(id, image.counters());
            let online_delta = self.vms[id].online_delta;
            let dirty = self.cfg.model.dirty_pages(Cycles(online_delta));
            let pause = self.cfg.model.pause(dirty);
            let new_local = self.hosts[dest].inject_vm(image, now + pause);
            self.hosts[dest].record_cluster_event(FlightEv::Evacuate {
                vm: id as u32,
                from: host as u32,
                to: dest as u32,
            });
            self.evacuations.push(MigrationRecord {
                epoch,
                vm: id,
                name,
                from: host,
                to: dest,
                online_delta,
                dirty_pages: dirty,
                pause: pause.as_u64(),
            });
            let e = &mut self.vms[id];
            e.host = dest;
            e.local = new_local;
            e.last_migration = Some(epoch);
            e.migrations += 1;
        }
        // Retry chains headed for (or rolling back onto) the dead host
        // cannot continue.
        let before = self.pending.len();
        self.pending.retain(|p| p.to != host);
        self.retries_abandoned += (before - self.pending.len()) as u64;
    }

    /// Re-check a due retry against the current cluster state: the VM
    /// must still exist (departures abandon their chains eagerly, but
    /// this is the backstop), the destination must still admit and must
    /// not have become the VM's home (a crash evacuation may have
    /// re-placed it meanwhile).
    fn revalidate_retry(&mut self, p: PendingRetry) -> Option<(Move, u32, Option<u32>)> {
        let stale = self.vms[p.vm].departed
            || self.health[p.to] != HostHealth::Healthy
            || self.vms[p.vm].host == p.to;
        if stale {
            self.retries_abandoned += 1;
            return None;
        }
        Some((Move { vm: p.vm, to: p.to }, p.attempts + 1, Some(p.span)))
    }

    /// Form epoch deltas from the telemetry the workers captured during
    /// the parallel advance — a pure array lookup per VM, so the serial
    /// section stays O(registry) with no host rescans. The counters
    /// travel with the VM (kernel stats move with the kernel,
    /// accounting moves with the image), so the deltas stay monotone
    /// across migrations.
    fn collect_deltas(&mut self, telemetry: &[Vec<VmCounters>]) {
        for e in &mut self.vms {
            // A departed entry's slot may belong to someone else now;
            // its deltas are zeroed so stale values cannot leak into a
            // later epoch's series sample.
            if e.departed {
                e.spin_delta = 0;
                e.vcrd_high_delta = 0;
                e.online_delta = 0;
                continue;
            }
            let c = telemetry[e.host][e.local];
            e.spin_delta = c.spin.saturating_sub(e.prev_spin);
            e.vcrd_high_delta = c.vcrd_high.saturating_sub(e.prev_vcrd_high);
            e.online_delta = c.online.saturating_sub(e.prev_online);
            e.prev_spin = c.spin;
            e.prev_vcrd_high = c.vcrd_high;
            e.prev_online = c.online;
        }
    }

    /// Build the balancer's view of this epoch. Hosts advertise their
    /// *effective* (derate-shrunk) capacity, and only healthy hosts
    /// admit; VMs that exhausted their retry cap read as cooling
    /// forever, so no policy re-proposes them.
    fn snapshot(&self, epoch: u64) -> Snapshot {
        Snapshot {
            hosts: self
                .hosts
                .iter()
                .enumerate()
                .map(|(h, m)| HostView {
                    pcpus: m.effective_pcpus(),
                    admit: self.health[h] == HostHealth::Healthy,
                })
                .collect(),
            vms: self
                .vms
                .iter()
                .map(|e| {
                    // Departed entries stay in the snapshot so cluster
                    // ids keep indexing it, but read as weightless and
                    // permanently cooling: no policy aggregates them
                    // into a host's load or proposes moving them.
                    if e.departed {
                        return VmView {
                            host: e.host,
                            vcpus: 0,
                            spin_delta: 0,
                            vcrd_high_delta: 0,
                            cooling: true,
                        };
                    }
                    VmView {
                        host: e.host,
                        vcpus: e.vcpus,
                        spin_delta: e.spin_delta,
                        vcrd_high_delta: e.vcrd_high_delta,
                        cooling: e.gave_up
                            || e.last_migration.is_some_and(|m| {
                                epoch.saturating_sub(m) < self.cfg.cooldown_epochs
                            }),
                    }
                })
                .collect(),
            epoch_cycles: self.epoch_cycles().as_u64(),
        }
    }

    /// Attempt to stop-and-copy `mv.vm` onto `mv.to` (attempt number
    /// `attempt` of its chain). The state machine:
    ///
    /// * **prepare** — extract the [`asman_hypervisor::VmImage`] at the
    ///   epoch boundary;
    /// * **copy** — charge the dirty-rate-proportional cost; if the
    ///   fault plan aborts this epoch, the copy fails here;
    /// * **commit** — inject on the destination, resuming after the
    ///   full pause; or
    /// * **abort** — roll the image back onto the source (tombstone
    ///   cleared, [`MigrationModel::abort_penalty`] of dead time) and
    ///   schedule a retry with exponential backoff (1, 2, 4… epochs)
    ///   until the per-VM attempt cap is spent.
    fn execute_migration(
        &mut self,
        epoch: u64,
        mv: Move,
        now: Cycles,
        attempt: u32,
        span: Option<u32>,
    ) {
        let (from, local, name) = {
            let e = &self.vms[mv.vm];
            (e.host, e.local, e.name.clone())
        };
        assert_ne!(from, mv.to, "balancer proposed a no-op move");
        // A fresh decision mints a new span; a retry inherits the
        // chain's span from its PendingRetry, so the whole
        // prepare/copy/abort/retry/commit lifecycle shares one causal
        // id in the flight stream.
        let span = span.unwrap_or_else(|| {
            let s = self.next_span;
            self.next_span += 1;
            s
        });
        if attempt > 1 {
            self.hosts[from].record_cluster_event(FlightEv::MigrateRetry {
                span,
                vm: mv.vm as u32,
                attempt,
            });
        }
        self.hosts[from].record_cluster_event(FlightEv::MigratePrepare {
            span,
            vm: mv.vm as u32,
            from: from as u32,
            to: mv.to as u32,
            attempt,
        });
        let image = self.hosts[from].extract_vm(local);
        // Extraction closes the VM's in-progress accounting segments, so
        // the travelling image's counters run ahead of the worker capture
        // this epoch's deltas were built from. Fold that tail in *before*
        // deriving the copy cost: the dirty-page charge (and the audit's
        // re-derivation of it) must see everything the guest ran online.
        self.reconcile_extracted(mv.vm, image.counters());
        let online_delta = self.vms[mv.vm].online_delta;
        #[allow(unused_mut)]
        let mut dirty = self.cfg.model.dirty_pages(Cycles(online_delta));
        #[cfg(feature = "audit")]
        if self.fault_dirty_undercount {
            dirty /= 2;
        }
        self.hosts[from].record_cluster_event(FlightEv::MigrateCopy {
            span,
            vm: mv.vm as u32,
            pages: dirty,
        });
        if self.cfg.faults.aborts_at(epoch) {
            // Abort with rollback: the image returns to its original
            // slot on the source, which eats the failed copy's penalty
            // as guest-visible dead time.
            let penalty = self.cfg.model.abort_penalty(dirty);
            self.hosts[from].undo_extract_vm(local, image, now + penalty);
            #[cfg(feature = "audit")]
            if self.fault_sticky_tombstone {
                self.hosts[from].audit_mark_evacuated(local);
            }
            // Stamped at the end of the penalty window so the span's
            // prepare->abort duration is the guest-visible dead time
            // (merge_streams restores time order).
            self.hosts[from].record_cluster_event_at(
                now + penalty,
                FlightEv::MigrateAbort {
                    span,
                    vm: mv.vm as u32,
                    attempt,
                },
            );
            self.aborts.push(AbortRecord {
                epoch,
                vm: mv.vm,
                name,
                from,
                to: mv.to,
                attempt,
                online_delta,
                dirty_pages: dirty,
                penalty: penalty.as_u64(),
            });
            self.vms[mv.vm].attempts = attempt;
            if attempt < self.cfg.retry_cap {
                self.pending.push(PendingRetry {
                    vm: mv.vm,
                    to: mv.to,
                    due: epoch + (1 << (attempt - 1)),
                    attempts: attempt,
                    span,
                });
            } else {
                self.vms[mv.vm].gave_up = true;
                self.gave_up += 1;
            }
            return;
        }
        let pause = self.cfg.model.pause(dirty);
        let new_local = self.hosts[mv.to].inject_vm(image, now + pause);
        // Commit lands on the destination stream, stamped when the
        // guest resumes (prepare->commit duration == injected pause).
        self.hosts[mv.to].record_cluster_event_at(
            now + pause,
            FlightEv::MigrateCommit {
                span,
                vm: mv.vm as u32,
                to: mv.to as u32,
                pause: pause.as_u64(),
            },
        );
        self.records.push(MigrationRecord {
            epoch,
            vm: mv.vm,
            name,
            from,
            to: mv.to,
            online_delta,
            dirty_pages: dirty,
            pause: pause.as_u64(),
        });
        if attempt > 1 {
            self.retries_committed += 1;
        }
        let e = &mut self.vms[mv.vm];
        e.host = mv.to;
        e.local = new_local;
        e.last_migration = Some(epoch);
        e.migrations += 1;
        e.attempts = 0;
    }

    /// Cluster invariant auditor (always on — it is cheap relative to
    /// an epoch of simulation):
    ///
    /// * **registry/host agreement** — every entry points at a live VM
    ///   on a live host, with the right name and VCPU count, and no
    ///   retry chain overran its attempt cap;
    /// * **VM conservation** — live VMs across hosts equal the registry;
    /// * **migration-cost conservation** — every migration and
    ///   evacuation record's `dirty_pages` and `pause`, and every abort
    ///   record's `penalty`, re-derive from `online_delta` through the
    ///   model (catches any path that charges less than the model
    ///   demands — e.g. the injected undercount fault — and any
    ///   rollback that forgot to clear the source tombstone).
    pub fn audit_check(&self) {
        for (id, e) in self.vms.iter().enumerate() {
            if e.departed {
                // A departed entry's host/local are frozen history; its
                // slot may have been reused. The only invariant left is
                // that departure captured its final accounting row.
                assert!(
                    e.final_row.is_some(),
                    "cluster audit: departed vm {} has no final row",
                    id
                );
                continue;
            }
            let m = &self.hosts[e.host];
            assert!(
                !m.vm_evacuated(e.local),
                "cluster audit: registry vm {} points at a tombstone",
                id
            );
            assert!(
                self.health[e.host] != HostHealth::Crashed,
                "cluster audit: registry vm {} resident on crashed host {}",
                id,
                e.host
            );
            assert_eq!(
                m.vm_name(e.local),
                e.name,
                "cluster audit: registry vm {} name mismatch",
                id
            );
            assert_eq!(
                m.vm_kernel(e.local).vcpu_count(),
                e.vcpus,
                "cluster audit: registry vm {} vcpu count mismatch",
                id
            );
            assert!(
                e.attempts <= self.cfg.retry_cap,
                "cluster audit: vm {} overran the retry cap ({} > {})",
                id,
                e.attempts,
                self.cfg.retry_cap
            );
        }
        let live: usize = self.hosts.iter().map(|m| m.active_vm_count()).sum();
        let resident = self.vms.iter().filter(|e| !e.departed).count();
        assert_eq!(
            live, resident,
            "cluster audit: VM count not conserved ({} live vs {} resident)",
            live, resident
        );
        for r in self.records.iter().chain(&self.evacuations) {
            let dirty = self.cfg.model.dirty_pages(Cycles(r.online_delta));
            assert_eq!(
                dirty, r.dirty_pages,
                "cluster audit: migration dirty pages not conserved (vm {} epoch {})",
                r.vm, r.epoch
            );
            assert_eq!(
                self.cfg.model.pause(r.dirty_pages).as_u64(),
                r.pause,
                "cluster audit: migration pause not conserved (vm {} epoch {})",
                r.vm,
                r.epoch
            );
        }
        for a in &self.aborts {
            let dirty = self.cfg.model.dirty_pages(Cycles(a.online_delta));
            assert_eq!(
                dirty, a.dirty_pages,
                "cluster audit: abort dirty pages not conserved (vm {} epoch {})",
                a.vm, a.epoch
            );
            assert_eq!(
                self.cfg.model.abort_penalty(a.dirty_pages).as_u64(),
                a.penalty,
                "cluster audit: abort penalty not conserved (vm {} epoch {})",
                a.vm,
                a.epoch
            );
            assert!(
                a.attempt >= 1 && a.attempt <= self.cfg.retry_cap,
                "cluster audit: abort attempt {} outside 1..={} (vm {})",
                a.attempt,
                self.cfg.retry_cap,
                a.vm
            );
        }
        #[cfg(feature = "audit")]
        for m in &self.hosts {
            m.check_invariants();
        }
    }

    /// Final report from the registry and host state.
    pub fn report(&self) -> ClusterReport {
        let vm_rows: Vec<VmRow> = self
            .vms
            .iter()
            .map(|e| {
                // Departed VMs report the row frozen at departure; a
                // live lookup would read a dead (or reused) slot.
                if let Some(row) = &e.final_row {
                    return row.clone();
                }
                let m = &self.hosts[e.host];
                let st = m.vm_kernel(e.local).stats();
                let acct = m.vm_accounting(e.local);
                VmRow {
                    name: e.name.clone(),
                    host: e.host,
                    vcpus: e.vcpus,
                    migrations: e.migrations,
                    spin_cycles: (st.spin_kernel_cycles
                        + st.spin_barrier_cycles
                        + st.spin_pipeline_cycles)
                        .as_u64(),
                    useful_cycles: st.useful_cycles.as_u64(),
                    vcrd_high_cycles: acct.vcrd_high_cycles.as_u64(),
                    online_cycles: acct.total_online().as_u64(),
                }
            })
            .collect();
        let host_rows = self
            .hosts
            .iter()
            .enumerate()
            .map(|(h, m)| HostRow {
                host: h,
                pcpus: m.config().pcpus,
                vms: self
                    .vms
                    .iter()
                    .filter(|e| !e.departed && e.host == h)
                    .map(|e| e.name.clone())
                    .collect(),
                resident_vcpus: self
                    .vms
                    .iter()
                    .filter(|e| !e.departed && e.host == h)
                    .map(|e| e.vcpus)
                    .sum(),
                events_processed: m.events_processed(),
            })
            .collect();
        let recovery = if self.cfg.faults.is_empty() {
            None
        } else {
            Some(RecoveryReport {
                plan: self.cfg.faults.clone(),
                host_health: self.health.clone(),
                aborts: self.aborts.clone(),
                evacuations: self.evacuations.clone(),
                retries_committed: self.retries_committed,
                retries_abandoned: self.retries_abandoned,
                gave_up: self.gave_up,
                total_abort_penalty_cycles: self.aborts.iter().map(|a| a.penalty).sum(),
                total_evacuation_pause_cycles: self.evacuations.iter().map(|r| r.pause).sum(),
            })
        };
        let churn = if self.cfg.churn.is_empty() {
            None
        } else {
            Some(ChurnReport {
                plan: self.cfg.churn.clone(),
                arrivals: self.arrivals,
                departures: self.departures,
                arrivals_rejected: self.arrivals_rejected,
                departures_skipped: self.departures_skipped,
                resident_end: self.resident_vm_count() as u64,
                departed_finished: self.departed_finished,
            })
        };
        ClusterReport {
            policy: self.cfg.policy.label(),
            hosts: self.hosts.len(),
            epochs: self.epochs_run,
            epoch_ms: self.cfg.epoch_ms,
            host_rows,
            total_spin_cycles: vm_rows.iter().map(|r| r.spin_cycles).sum(),
            total_useful_cycles: vm_rows.iter().map(|r| r.useful_cycles).sum(),
            total_pause_cycles: self.records.iter().map(|r| r.pause).sum(),
            vm_rows,
            migrations: self.records.clone(),
            recovery,
            churn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{consolidation_cluster, ConsolidationSpec};

    fn migrating_cfg() -> ClusterConfig {
        ClusterConfig {
            epoch_ms: 50,
            epochs: 20,
            policy: Policy::VcrdAware,
            ..ClusterConfig::default()
        }
    }

    /// Drive one epoch with the Static policy (so no spontaneous move
    /// competes with the forced one), then return the boundary time.
    /// At this boundary, gang1 on host 0 of the default consolidation
    /// scenario provably has an *open guest spin segment*: `settle()`
    /// closes online/VCRD accrual at the deadline, but an in-progress
    /// spin only reaches the kernel's cumulative stats when extraction
    /// preempts the spinning VCPU — so the travelling image's `spin`
    /// counter runs ahead of the worker-side barrier capture.
    fn one_epoch_with_spin_tail(c: &mut Cluster) -> Cycles {
        c.run_epoch();
        let end = c.epoch_cycles();
        let e = &c.vms[GANG1];
        let live = c.hosts[e.host].vm_counters(e.local);
        // Baseline sanity for the regression below: the tail exists at
        // this boundary only as an *open* segment — capture == stats.
        assert_eq!(e.prev_spin, live.spin, "capture should match lazy stats");
        end
    }

    /// Cluster id of host 0's second gang VM (registry order: gang0,
    /// gang1, bg0, bg1, bg2 for the default consolidation scenario).
    const GANG1: usize = 1;

    /// Regression (per-VM delta reconciliation, commit path): extraction
    /// closes the travelling VM's in-progress guest spin segment, so the
    /// image's `spin` counter runs *ahead* of the worker-side barrier
    /// capture this epoch's deltas came from. The migration must fold
    /// that tail into the current epoch's delta and advance the registry
    /// baseline to the image — otherwise `prev_spin` stays at the stale
    /// capture and the tail is smeared into the *next* epoch's delta,
    /// mis-attributed to the destination host's series sample.
    #[test]
    fn migration_reconciles_spin_tail_against_the_travelling_image() {
        let mut c = consolidation_cluster(migrating_cfg(), &ConsolidationSpec::default());
        let now = one_epoch_with_spin_tail(&mut c);
        let delta_before = c.vms[GANG1].spin_delta;
        c.execute_migration(1, Move { vm: GANG1, to: 1 }, now, 1, None);
        let e = &c.vms[GANG1];
        assert_eq!(e.host, 1, "forced move must have committed");
        let live = c.hosts[e.host].vm_counters(e.local);
        // Post-commit the destination slot holds exactly the image;
        // reconciliation must have advanced the baseline to it
        // (pre-fix: baseline == stale worker capture).
        assert_eq!(
            (e.prev_spin, e.prev_vcrd_high, e.prev_online),
            (live.spin, live.vcrd_high, live.online),
            "registry baseline diverges from the migrated VM's counters"
        );
        assert!(
            e.spin_delta > delta_before,
            "the extraction-closed spin tail must land in this epoch's delta"
        );
    }

    /// Regression (per-VM delta reconciliation, abort path): a rolled-back
    /// migration also extracts an image — the rollback restores it to the
    /// source slot with its spin segment closed, so the same
    /// baseline-equals-counters invariant must hold on the source.
    #[test]
    fn aborted_migration_reconciles_spin_tail_on_the_source() {
        let mut c = consolidation_cluster(
            ClusterConfig {
                faults: FaultPlan {
                    events: vec![asman_sim::FaultEvent {
                        epoch: 1,
                        kind: FaultKind::Abort,
                    }],
                },
                ..migrating_cfg()
            },
            &ConsolidationSpec::default(),
        );
        let now = one_epoch_with_spin_tail(&mut c);
        let delta_before = c.vms[GANG1].spin_delta;
        c.execute_migration(1, Move { vm: GANG1, to: 1 }, now, 1, None);
        let e = &c.vms[GANG1];
        assert_eq!(e.host, 0, "move must have aborted back to the source");
        assert_eq!(c.aborts.len(), 1);
        let live = c.hosts[e.host].vm_counters(e.local);
        assert_eq!(
            (e.prev_spin, e.prev_vcrd_high, e.prev_online),
            (live.spin, live.vcrd_high, live.online),
            "registry baseline diverges after rollback"
        );
        assert!(
            e.spin_delta > delta_before,
            "the extraction-closed spin tail must land in this epoch's delta"
        );
    }
}
