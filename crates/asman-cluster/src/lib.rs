//! Cluster layer: N simulated hosts advanced in lock-step epochs with a
//! global balancer and cost-modeled live migration.
//!
//! The single-machine model reproduces ASMan's *intra-host* adaptive
//! coscheduling; this crate asks the paper's natural follow-on question:
//! when the VCRD/spin telemetry is exported off-host, can a *cluster*
//! scheduler use it to fix placements that no per-host scheduler can?
//! A host whose resident gangs demand more PCPUs than exist will thrash
//! on lock-holder preemption no matter how cleverly it coschedules —
//! the only cure is moving a gang elsewhere.
//!
//! The driver is deterministic: hosts are advanced sequentially to each
//! epoch boundary (each host is itself a deterministic event-driven
//! simulation with its own seed), telemetry deltas are collected, one
//! balancer decision is taken ([`balancer::decide`]), and at most one
//! stop-and-copy migration executes with its pause charged through the
//! [`MigrationModel`]. An always-on auditor re-derives every invariant
//! it can (VM conservation, registry/host agreement, migration-cost
//! conservation) each epoch.

#![warn(missing_docs)]

pub mod balancer;
pub mod migration;
pub mod scenario;

pub use balancer::{decide, HostView, Move, Policy, Snapshot, VmView};
pub use migration::{MigrationModel, MigrationRecord};

use asman_hypervisor::Machine;
use asman_sim::{CatMask, Cycles, FlightEvent};
use serde::Serialize;

/// Cluster driver parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Lock-step epoch length in milliseconds (the balancer's cadence).
    pub epoch_ms: u64,
    /// Number of epochs to run.
    pub epochs: u64,
    /// Placement policy.
    pub policy: Policy,
    /// Migration cost model.
    pub model: MigrationModel,
    /// A migrated VM may not move again for this many epochs.
    pub cooldown_epochs: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            epoch_ms: 60,
            epochs: 10,
            policy: Policy::Static,
            model: MigrationModel::default(),
            cooldown_epochs: 3,
        }
    }
}

/// Cluster-side registry entry for one VM. The cluster id is stable for
/// the whole run; `host`/`local` track where the VM currently lives.
#[derive(Clone, Debug)]
struct VmEntry {
    name: String,
    host: usize,
    local: usize,
    vcpus: usize,
    last_migration: Option<u64>,
    migrations: u64,
    prev_spin: u64,
    prev_vcrd_high: u64,
    prev_online: u64,
    spin_delta: u64,
    vcrd_high_delta: u64,
    online_delta: u64,
}

/// Per-VM row of the final report.
#[derive(Clone, Debug, Serialize)]
pub struct VmRow {
    /// VM name.
    pub name: String,
    /// Host the VM ended the run on.
    pub host: usize,
    /// VCPU count.
    pub vcpus: usize,
    /// Times the VM was live-migrated.
    pub migrations: u64,
    /// Total cycles burned spinning (kernel locks, barriers, pipeline
    /// flags) — the wasted-CPU metric the balancer tries to recover.
    pub spin_cycles: u64,
    /// Total cycles of useful guest work.
    pub useful_cycles: u64,
    /// Total cycles the VMM saw the VM's VCRD HIGH.
    pub vcrd_high_cycles: u64,
    /// Total VCPU-online cycles.
    pub online_cycles: u64,
}

/// Per-host row of the final report.
#[derive(Clone, Debug, Serialize)]
pub struct HostRow {
    /// Host index.
    pub host: usize,
    /// Physical CPUs.
    pub pcpus: usize,
    /// Names of the VMs resident at the end of the run.
    pub vms: Vec<String>,
    /// Total resident VCPUs at the end of the run.
    pub resident_vcpus: usize,
    /// Simulation events the host processed.
    pub events_processed: u64,
}

/// Serializable result of one cluster run.
#[derive(Clone, Debug, Serialize)]
pub struct ClusterReport {
    /// Policy label.
    pub policy: &'static str,
    /// Host count.
    pub hosts: usize,
    /// Epochs run.
    pub epochs: u64,
    /// Epoch length in milliseconds.
    pub epoch_ms: u64,
    /// Final per-host placement.
    pub host_rows: Vec<HostRow>,
    /// Per-VM outcome (cluster id order).
    pub vm_rows: Vec<VmRow>,
    /// Every migration executed, in order.
    pub migrations: Vec<MigrationRecord>,
    /// Cluster-wide wasted spin cycles (sum over VMs).
    pub total_spin_cycles: u64,
    /// Cluster-wide useful cycles (sum over VMs).
    pub total_useful_cycles: u64,
    /// Total guest-visible migration dead time in cycles.
    pub total_pause_cycles: u64,
}

/// N machines in lock-step plus the global balancer state.
pub struct Cluster {
    cfg: ClusterConfig,
    hosts: Vec<Machine>,
    vms: Vec<VmEntry>,
    records: Vec<MigrationRecord>,
    epochs_run: u64,
    #[cfg(feature = "audit")]
    fault_dirty_undercount: bool,
}

impl Cluster {
    /// Assemble a cluster from pre-built hosts. Every VM currently
    /// resident on any host is registered with a cluster-wide id
    /// (host-major order).
    pub fn new(cfg: ClusterConfig, hosts: Vec<Machine>) -> Self {
        assert!(!hosts.is_empty(), "cluster needs at least one host");
        let mut vms = Vec::new();
        for (h, m) in hosts.iter().enumerate() {
            for local in 0..m.vm_count() {
                assert!(!m.vm_evacuated(local), "seed hosts must have no tombstones");
                vms.push(VmEntry {
                    name: m.vm_name(local).to_string(),
                    host: h,
                    local,
                    vcpus: m.vm_kernel(local).vcpu_count(),
                    last_migration: None,
                    migrations: 0,
                    prev_spin: 0,
                    prev_vcrd_high: 0,
                    prev_online: 0,
                    spin_delta: 0,
                    vcrd_high_delta: 0,
                    online_delta: 0,
                });
            }
        }
        Cluster {
            cfg,
            hosts,
            vms,
            records: Vec::new(),
            epochs_run: 0,
            #[cfg(feature = "audit")]
            fault_dirty_undercount: false,
        }
    }

    /// Epoch length in cycles (all hosts share host 0's clock).
    pub fn epoch_cycles(&self) -> Cycles {
        self.hosts[0].config().clock.ms(self.cfg.epoch_ms)
    }

    /// The hosts, for inspection.
    pub fn hosts(&self) -> &[Machine] {
        &self.hosts
    }

    /// Current host of cluster VM `vm`.
    pub fn vm_host(&self, vm: usize) -> usize {
        self.vms[vm].host
    }

    /// Registered VM count (conserved across migrations).
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Migrations executed so far.
    pub fn records(&self) -> &[MigrationRecord] {
        &self.records
    }

    /// Arm the dirty-page undercount fault: executed migrations copy
    /// only half the modeled dirty pages, so their records no longer
    /// satisfy the cost model. The cluster auditor must catch this at
    /// the next epoch boundary.
    #[cfg(feature = "audit")]
    pub fn audit_inject_dirty_undercount(&mut self) {
        self.fault_dirty_undercount = true;
    }

    /// Enable flight recording on every host (host streams are kept
    /// per-host; see [`Cluster::drain_flight`]).
    pub fn enable_flight(&mut self, mask: CatMask, capacity: usize) {
        for m in &mut self.hosts {
            m.enable_flight(mask, capacity);
        }
    }

    /// Drain each host's merged flight stream, tagged with its host id.
    pub fn drain_flight(&mut self) -> Vec<(usize, Vec<FlightEvent>)> {
        self.hosts
            .iter_mut()
            .enumerate()
            .map(|(h, m)| (h, m.flight_events()))
            .collect()
    }

    /// Run the configured number of epochs and produce the report.
    pub fn run(&mut self) -> ClusterReport {
        for _ in 0..self.cfg.epochs {
            self.run_epoch();
        }
        self.audit_check();
        self.report()
    }

    /// Advance every host to the next epoch boundary, then balance.
    pub fn run_epoch(&mut self) {
        let epoch = self.epochs_run;
        let end = self.epoch_cycles() * (epoch + 1);
        for m in &mut self.hosts {
            m.run_until(end);
        }
        self.collect_deltas();
        self.audit_check();
        if let Some(mv) = decide(self.cfg.policy, &self.snapshot(epoch)) {
            self.execute_migration(epoch, mv, end);
        }
        self.epochs_run = epoch + 1;
    }

    /// Pull cumulative per-VM counters from the hosts and form epoch
    /// deltas. The counters travel with the VM (kernel stats move with
    /// the kernel, accounting moves with the image), so the deltas stay
    /// monotone across migrations.
    fn collect_deltas(&mut self) {
        for e in &mut self.vms {
            let m = &self.hosts[e.host];
            let st = m.vm_kernel(e.local).stats();
            let spin = (st.spin_kernel_cycles + st.spin_barrier_cycles + st.spin_pipeline_cycles)
                .as_u64();
            let acct = m.vm_accounting(e.local);
            let high = acct.vcrd_high_cycles.as_u64();
            let online = acct.total_online().as_u64();
            e.spin_delta = spin.saturating_sub(e.prev_spin);
            e.vcrd_high_delta = high.saturating_sub(e.prev_vcrd_high);
            e.online_delta = online.saturating_sub(e.prev_online);
            e.prev_spin = spin;
            e.prev_vcrd_high = high;
            e.prev_online = online;
        }
    }

    /// Build the balancer's view of this epoch.
    fn snapshot(&self, epoch: u64) -> Snapshot {
        Snapshot {
            hosts: self
                .hosts
                .iter()
                .map(|m| HostView {
                    pcpus: m.config().pcpus,
                })
                .collect(),
            vms: self
                .vms
                .iter()
                .map(|e| VmView {
                    host: e.host,
                    vcpus: e.vcpus,
                    spin_delta: e.spin_delta,
                    vcrd_high_delta: e.vcrd_high_delta,
                    cooling: e
                        .last_migration
                        .is_some_and(|m| epoch.saturating_sub(m) < self.cfg.cooldown_epochs),
                })
                .collect(),
            epoch_cycles: self.epoch_cycles().as_u64(),
        }
    }

    /// Stop-and-copy `mv.vm` onto `mv.to`: extract at the epoch
    /// boundary, charge the dirty-rate-proportional pause, resume on
    /// the destination after the pause.
    fn execute_migration(&mut self, epoch: u64, mv: Move, now: Cycles) {
        let (from, local, online_delta, name) = {
            let e = &self.vms[mv.vm];
            (e.host, e.local, e.online_delta, e.name.clone())
        };
        assert_ne!(from, mv.to, "balancer proposed a no-op move");
        let image = self.hosts[from].extract_vm(local);
        #[allow(unused_mut)]
        let mut dirty = self.cfg.model.dirty_pages(Cycles(online_delta));
        #[cfg(feature = "audit")]
        if self.fault_dirty_undercount {
            dirty /= 2;
        }
        let pause = self.cfg.model.pause(dirty);
        let new_local = self.hosts[mv.to].inject_vm(image, now + pause);
        self.records.push(MigrationRecord {
            epoch,
            vm: mv.vm,
            name,
            from,
            to: mv.to,
            online_delta,
            dirty_pages: dirty,
            pause: pause.as_u64(),
        });
        let e = &mut self.vms[mv.vm];
        e.host = mv.to;
        e.local = new_local;
        e.last_migration = Some(epoch);
        e.migrations += 1;
    }

    /// Cluster invariant auditor (always on — it is cheap relative to
    /// an epoch of simulation):
    ///
    /// * **VM conservation** — live VMs across hosts equal the registry;
    /// * **registry/host agreement** — every entry points at a live VM
    ///   with the right name and VCPU count;
    /// * **migration-cost conservation** — every record's `dirty_pages`
    ///   and `pause` re-derive from its `online_delta` through the
    ///   model (catches any path that charges less than the model
    ///   demands, e.g. the injected undercount fault).
    pub fn audit_check(&self) {
        let live: usize = self.hosts.iter().map(|m| m.active_vm_count()).sum();
        assert_eq!(
            live,
            self.vms.len(),
            "cluster audit: VM count not conserved ({} live vs {} registered)",
            live,
            self.vms.len()
        );
        for (id, e) in self.vms.iter().enumerate() {
            let m = &self.hosts[e.host];
            assert!(
                !m.vm_evacuated(e.local),
                "cluster audit: registry vm {} points at a tombstone",
                id
            );
            assert_eq!(
                m.vm_name(e.local),
                e.name,
                "cluster audit: registry vm {} name mismatch",
                id
            );
            assert_eq!(
                m.vm_kernel(e.local).vcpu_count(),
                e.vcpus,
                "cluster audit: registry vm {} vcpu count mismatch",
                id
            );
        }
        for r in &self.records {
            let dirty = self.cfg.model.dirty_pages(Cycles(r.online_delta));
            assert_eq!(
                dirty, r.dirty_pages,
                "cluster audit: migration dirty pages not conserved (vm {} epoch {})",
                r.vm, r.epoch
            );
            assert_eq!(
                self.cfg.model.pause(r.dirty_pages).as_u64(),
                r.pause,
                "cluster audit: migration pause not conserved (vm {} epoch {})",
                r.vm, r.epoch
            );
        }
        #[cfg(feature = "audit")]
        for m in &self.hosts {
            m.check_invariants();
        }
    }

    /// Final report from the registry and host state.
    pub fn report(&self) -> ClusterReport {
        let vm_rows: Vec<VmRow> = self
            .vms
            .iter()
            .map(|e| {
                let m = &self.hosts[e.host];
                let st = m.vm_kernel(e.local).stats();
                let acct = m.vm_accounting(e.local);
                VmRow {
                    name: e.name.clone(),
                    host: e.host,
                    vcpus: e.vcpus,
                    migrations: e.migrations,
                    spin_cycles: (st.spin_kernel_cycles
                        + st.spin_barrier_cycles
                        + st.spin_pipeline_cycles)
                        .as_u64(),
                    useful_cycles: st.useful_cycles.as_u64(),
                    vcrd_high_cycles: acct.vcrd_high_cycles.as_u64(),
                    online_cycles: acct.total_online().as_u64(),
                }
            })
            .collect();
        let host_rows = self
            .hosts
            .iter()
            .enumerate()
            .map(|(h, m)| HostRow {
                host: h,
                pcpus: m.config().pcpus,
                vms: self
                    .vms
                    .iter()
                    .filter(|e| e.host == h)
                    .map(|e| e.name.clone())
                    .collect(),
                resident_vcpus: self
                    .vms
                    .iter()
                    .filter(|e| e.host == h)
                    .map(|e| e.vcpus)
                    .sum(),
                events_processed: m.events_processed(),
            })
            .collect();
        ClusterReport {
            policy: self.cfg.policy.label(),
            hosts: self.hosts.len(),
            epochs: self.epochs_run,
            epoch_ms: self.cfg.epoch_ms,
            host_rows,
            total_spin_cycles: vm_rows.iter().map(|r| r.spin_cycles).sum(),
            total_useful_cycles: vm_rows.iter().map(|r| r.useful_cycles).sum(),
            total_pause_cycles: self.records.iter().map(|r| r.pause).sum(),
            vm_rows,
            migrations: self.records.clone(),
        }
    }
}
