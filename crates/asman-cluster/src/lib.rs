//! Cluster layer: N simulated hosts advanced in lock-step epochs with a
//! global balancer and cost-modeled live migration.
//!
//! The single-machine model reproduces ASMan's *intra-host* adaptive
//! coscheduling; this crate asks the paper's natural follow-on question:
//! when the VCRD/spin telemetry is exported off-host, can a *cluster*
//! scheduler use it to fix placements that no per-host scheduler can?
//! A host whose resident gangs demand more PCPUs than exist will thrash
//! on lock-holder preemption no matter how cleverly it coschedules —
//! the only cure is moving a gang elsewhere.
//!
//! The driver is deterministic *and parallel*: hosts are advanced to
//! each epoch boundary on a bounded scoped-thread pool
//! ([`ClusterConfig::jobs`]; each host is itself a deterministic
//! event-driven simulation with its own seed and flight buffer, so no
//! RNG draw or recorded event can leak across workers), each worker
//! snapshots its host's per-VM telemetry counters before the barrier,
//! and then the serial section runs: deltas are formed from the
//! captured counters, one balancer decision is taken
//! ([`balancer::decide`]), and at most one stop-and-copy migration
//! executes with its pause charged through the [`MigrationModel`].
//! Results are bit-identical for every worker count — `jobs == 1`
//! degenerates to the historical sequential loop, and any other count
//! only changes which thread advances which host, never what the host
//! computes. An always-on auditor re-derives every invariant it can
//! (VM conservation, registry/host agreement, migration-cost
//! conservation) each epoch.
//!
//! # Faults and recovery
//!
//! A [`FaultPlan`] in [`ClusterConfig::faults`] injects three failure
//! modes at epoch boundaries, and the driver must stay correct under
//! all of them:
//!
//! * **Migration aborts** — a move fails mid-copy: the extracted
//!   [`asman_hypervisor::VmImage`] is rolled back onto the source
//!   (tombstone cleared, counters monotone), the guest eats a modeled
//!   [`MigrationModel::abort_penalty`], and the balancer retries the
//!   same move with exponential backoff until
//!   [`ClusterConfig::retry_cap`] attempts are spent.
//! * **Host slowdowns** — the host advertises derated capacity and
//!   stops admitting new VMs; residents keep running.
//! * **Host crashes** — every resident VM is evacuated and re-placed
//!   deterministically (healthy hosts first, then least-loaded, then
//!   lowest index); the dead host admits nothing forever after.
//!
//! Because the plan is a pure data schedule (and randomly generated
//! plans draw from their own forked RNG stream), a faulted run is
//! exactly as replayable and `--jobs`-independent as a clean one.

#![warn(missing_docs)]

pub mod balancer;
pub mod migration;
pub mod scenario;

pub use balancer::{decide, HostView, Move, Policy, Snapshot, VmView};
pub use migration::{AbortRecord, MigrationModel, MigrationRecord};

use asman_hypervisor::{Machine, VmCounters};
use asman_sim::{
    CatMask, Cycles, FaultKind, FaultPlan, FlightEv, FlightEvent, MetricsRegistry, SweepRunner,
};
use serde::Serialize;

/// Cluster driver parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Lock-step epoch length in milliseconds (the balancer's cadence).
    pub epoch_ms: u64,
    /// Number of epochs to run.
    pub epochs: u64,
    /// Placement policy.
    pub policy: Policy,
    /// Migration cost model.
    pub model: MigrationModel,
    /// A migrated VM may not move again for this many epochs.
    pub cooldown_epochs: u64,
    /// Deterministic fault schedule (empty = clean run).
    pub faults: FaultPlan,
    /// Maximum migration attempts per retry chain before the balancer
    /// gives up on the VM for the rest of the run.
    pub retry_cap: u32,
    /// Worker threads for intra-epoch host advancement; `0` selects
    /// [`std::thread::available_parallelism`] (the
    /// [`SweepRunner::new`] convention). Results are bit-identical for
    /// every value.
    pub jobs: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            epoch_ms: 60,
            epochs: 10,
            policy: Policy::Static,
            model: MigrationModel::default(),
            cooldown_epochs: 3,
            faults: FaultPlan::empty(),
            retry_cap: 3,
            jobs: 0,
        }
    }
}

/// Health of one host, as the cluster driver tracks it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum HostHealth {
    /// Fully operational; admits new VMs.
    Healthy,
    /// Advertising derated capacity; residents keep running but
    /// admission control rejects new VMs.
    Degraded {
        /// Capacity reduction in percent.
        pct: u32,
    },
    /// Dead: residents were evacuated, nothing runs or is admitted.
    Crashed,
}

/// An aborted migration waiting out its exponential backoff. The chain
/// holds the cluster's one-migration-per-epoch slot until it commits,
/// is abandoned, or exhausts the attempt cap.
#[derive(Clone, Copy, Debug)]
struct PendingRetry {
    /// Cluster-wide VM id being moved.
    vm: usize,
    /// Destination of the original decision.
    to: usize,
    /// Epoch at whose boundary the retry may run.
    due: u64,
    /// Attempts already made (>= 1).
    attempts: u32,
}

/// Cluster-side registry entry for one VM. The cluster id is stable for
/// the whole run; `host`/`local` track where the VM currently lives.
#[derive(Clone, Debug)]
struct VmEntry {
    name: String,
    host: usize,
    local: usize,
    vcpus: usize,
    last_migration: Option<u64>,
    migrations: u64,
    prev_spin: u64,
    prev_vcrd_high: u64,
    prev_online: u64,
    spin_delta: u64,
    vcrd_high_delta: u64,
    online_delta: u64,
    /// Attempts spent by the current (or last) retry chain.
    attempts: u32,
    /// The retry chain exhausted its cap; the balancer leaves the VM
    /// alone for the rest of the run.
    gave_up: bool,
}

/// Per-VM row of the final report.
#[derive(Clone, Debug, Serialize)]
pub struct VmRow {
    /// VM name.
    pub name: String,
    /// Host the VM ended the run on.
    pub host: usize,
    /// VCPU count.
    pub vcpus: usize,
    /// Times the VM was live-migrated.
    pub migrations: u64,
    /// Total cycles burned spinning (kernel locks, barriers, pipeline
    /// flags) — the wasted-CPU metric the balancer tries to recover.
    pub spin_cycles: u64,
    /// Total cycles of useful guest work.
    pub useful_cycles: u64,
    /// Total cycles the VMM saw the VM's VCRD HIGH.
    pub vcrd_high_cycles: u64,
    /// Total VCPU-online cycles.
    pub online_cycles: u64,
}

/// Per-host row of the final report.
#[derive(Clone, Debug, Serialize)]
pub struct HostRow {
    /// Host index.
    pub host: usize,
    /// Physical CPUs.
    pub pcpus: usize,
    /// Names of the VMs resident at the end of the run.
    pub vms: Vec<String>,
    /// Total resident VCPUs at the end of the run.
    pub resident_vcpus: usize,
    /// Simulation events the host processed.
    pub events_processed: u64,
}

/// Serializable result of one cluster run.
///
/// `Serialize` is written by hand: the `recovery` section appears only
/// when a fault plan was armed, so the serialized form — and therefore
/// every golden digest — of a clean run is byte-identical to what it
/// was before faults existed.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Policy label.
    pub policy: &'static str,
    /// Host count.
    pub hosts: usize,
    /// Epochs run.
    pub epochs: u64,
    /// Epoch length in milliseconds.
    pub epoch_ms: u64,
    /// Final per-host placement.
    pub host_rows: Vec<HostRow>,
    /// Per-VM outcome (cluster id order).
    pub vm_rows: Vec<VmRow>,
    /// Every migration executed, in order.
    pub migrations: Vec<MigrationRecord>,
    /// Cluster-wide wasted spin cycles (sum over VMs).
    pub total_spin_cycles: u64,
    /// Cluster-wide useful cycles (sum over VMs).
    pub total_useful_cycles: u64,
    /// Total guest-visible migration dead time in cycles.
    pub total_pause_cycles: u64,
    /// Fault/recovery outcome; `None` for clean runs (and then omitted
    /// from serialization entirely).
    pub recovery: Option<RecoveryReport>,
}

impl Serialize for ClusterReport {
    fn to_value(&self) -> serde::Value {
        // Field order mirrors the struct declaration, exactly as the
        // derive would emit it.
        let mut fields = vec![
            ("policy".to_string(), self.policy.to_value()),
            ("hosts".to_string(), self.hosts.to_value()),
            ("epochs".to_string(), self.epochs.to_value()),
            ("epoch_ms".to_string(), self.epoch_ms.to_value()),
            ("host_rows".to_string(), self.host_rows.to_value()),
            ("vm_rows".to_string(), self.vm_rows.to_value()),
            ("migrations".to_string(), self.migrations.to_value()),
            (
                "total_spin_cycles".to_string(),
                self.total_spin_cycles.to_value(),
            ),
            (
                "total_useful_cycles".to_string(),
                self.total_useful_cycles.to_value(),
            ),
            (
                "total_pause_cycles".to_string(),
                self.total_pause_cycles.to_value(),
            ),
        ];
        if let Some(rec) = &self.recovery {
            fields.push(("recovery".to_string(), rec.to_value()));
        }
        serde::Value::Object(fields)
    }
}

/// Fault and recovery outcome of a faulted run.
#[derive(Clone, Debug, Serialize)]
pub struct RecoveryReport {
    /// The fault plan that was armed.
    pub plan: FaultPlan,
    /// Final health of every host.
    pub host_health: Vec<HostHealth>,
    /// Every aborted migration attempt, in order.
    pub aborts: Vec<AbortRecord>,
    /// Every crash evacuation, in order (same cost model and record
    /// shape as a planned migration).
    pub evacuations: Vec<MigrationRecord>,
    /// Aborted-then-retried migrations that eventually committed.
    pub retries_committed: u64,
    /// Retry chains dropped because the destination stopped admitting
    /// (or the VM was evacuated onto it) mid-chain.
    pub retries_abandoned: u64,
    /// VMs whose retry chains exhausted [`ClusterConfig::retry_cap`].
    pub gave_up: u64,
    /// Total guest-visible dead time of failed attempts, in cycles.
    pub total_abort_penalty_cycles: u64,
    /// Total guest-visible dead time of evacuations, in cycles.
    pub total_evacuation_pause_cycles: u64,
}

/// N machines in lock-step plus the global balancer state.
pub struct Cluster {
    cfg: ClusterConfig,
    /// Scoped-thread pool advancing hosts within an epoch. Sized once
    /// from [`ClusterConfig::jobs`] at construction.
    runner: SweepRunner,
    hosts: Vec<Machine>,
    health: Vec<HostHealth>,
    vms: Vec<VmEntry>,
    records: Vec<MigrationRecord>,
    aborts: Vec<AbortRecord>,
    evacuations: Vec<MigrationRecord>,
    pending: Option<PendingRetry>,
    retries_committed: u64,
    retries_abandoned: u64,
    gave_up: u64,
    epochs_run: u64,
    #[cfg(feature = "audit")]
    fault_dirty_undercount: bool,
    #[cfg(feature = "audit")]
    fault_sticky_tombstone: bool,
}

impl Cluster {
    /// Assemble a cluster from pre-built hosts. Every VM currently
    /// resident on any host is registered with a cluster-wide id
    /// (host-major order).
    pub fn new(cfg: ClusterConfig, hosts: Vec<Machine>) -> Self {
        assert!(!hosts.is_empty(), "cluster needs at least one host");
        let mut vms = Vec::new();
        for (h, m) in hosts.iter().enumerate() {
            for local in 0..m.vm_count() {
                assert!(!m.vm_evacuated(local), "seed hosts must have no tombstones");
                vms.push(VmEntry {
                    name: m.vm_name(local).to_string(),
                    host: h,
                    local,
                    vcpus: m.vm_kernel(local).vcpu_count(),
                    last_migration: None,
                    migrations: 0,
                    prev_spin: 0,
                    prev_vcrd_high: 0,
                    prev_online: 0,
                    spin_delta: 0,
                    vcrd_high_delta: 0,
                    online_delta: 0,
                    attempts: 0,
                    gave_up: false,
                });
            }
        }
        if let Some(h) = cfg.faults.max_host() {
            assert!(
                h < hosts.len(),
                "fault plan touches host {h} but the cluster has {}",
                hosts.len()
            );
        }
        let health = vec![HostHealth::Healthy; hosts.len()];
        let runner = SweepRunner::new(cfg.jobs);
        Cluster {
            cfg,
            runner,
            hosts,
            health,
            vms,
            records: Vec::new(),
            aborts: Vec::new(),
            evacuations: Vec::new(),
            pending: None,
            retries_committed: 0,
            retries_abandoned: 0,
            gave_up: 0,
            epochs_run: 0,
            #[cfg(feature = "audit")]
            fault_dirty_undercount: false,
            #[cfg(feature = "audit")]
            fault_sticky_tombstone: false,
        }
    }

    /// Epoch length in cycles (all hosts share host 0's clock).
    pub fn epoch_cycles(&self) -> Cycles {
        self.hosts[0].config().clock.ms(self.cfg.epoch_ms)
    }

    /// The hosts, for inspection.
    pub fn hosts(&self) -> &[Machine] {
        &self.hosts
    }

    /// Current host of cluster VM `vm`.
    pub fn vm_host(&self, vm: usize) -> usize {
        self.vms[vm].host
    }

    /// Registered VM count (conserved across migrations).
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Migrations executed so far.
    pub fn records(&self) -> &[MigrationRecord] {
        &self.records
    }

    /// Aborted migration attempts so far.
    pub fn aborts(&self) -> &[AbortRecord] {
        &self.aborts
    }

    /// Crash evacuations so far.
    pub fn evacuations(&self) -> &[MigrationRecord] {
        &self.evacuations
    }

    /// Current health of every host.
    pub fn host_health(&self) -> &[HostHealth] {
        &self.health
    }

    /// Register the recovery counters into `reg` under `cluster.*`.
    /// Zero-valued counters are skipped so a clean run exports nothing.
    pub fn export_recovery_metrics(&self, reg: &mut MetricsRegistry) {
        let crashed = self
            .health
            .iter()
            .filter(|h| **h == HostHealth::Crashed)
            .count() as u64;
        let degraded = self
            .health
            .iter()
            .filter(|h| matches!(h, HostHealth::Degraded { .. }))
            .count() as u64;
        let penalty: u64 = self.aborts.iter().map(|a| a.penalty).sum();
        let evac_pause: u64 = self.evacuations.iter().map(|r| r.pause).sum();
        for (name, v) in [
            ("cluster.hosts.crashed", crashed),
            ("cluster.hosts.degraded", degraded),
            ("cluster.migration.aborts", self.aborts.len() as u64),
            ("cluster.migration.retries_committed", self.retries_committed),
            ("cluster.migration.retries_abandoned", self.retries_abandoned),
            ("cluster.migration.gave_up", self.gave_up),
            ("cluster.migration.abort_penalty_cycles", penalty),
            ("cluster.evacuations", self.evacuations.len() as u64),
            ("cluster.evacuation_pause_cycles", evac_pause),
        ] {
            if v > 0 {
                reg.inc(name, v);
            }
        }
    }

    /// Arm the dirty-page undercount fault: executed migrations copy
    /// only half the modeled dirty pages, so their records no longer
    /// satisfy the cost model. The cluster auditor must catch this at
    /// the next epoch boundary.
    #[cfg(feature = "audit")]
    pub fn audit_inject_dirty_undercount(&mut self) {
        self.fault_dirty_undercount = true;
    }

    /// Injected fault for auditor self-tests: abort rollbacks "forget"
    /// to clear the source tombstone, leaving the registry pointing at
    /// an evacuated slot. The auditor must catch it at the next epoch
    /// boundary.
    #[cfg(feature = "audit")]
    pub fn audit_inject_sticky_tombstone(&mut self) {
        self.fault_sticky_tombstone = true;
    }

    /// Enable flight recording on every host (host streams are kept
    /// per-host; see [`Cluster::drain_flight`]).
    pub fn enable_flight(&mut self, mask: CatMask, capacity: usize) {
        for m in &mut self.hosts {
            m.enable_flight(mask, capacity);
        }
    }

    /// Drain each host's merged flight stream, tagged with its host id.
    pub fn drain_flight(&mut self) -> Vec<(usize, Vec<FlightEvent>)> {
        self.hosts
            .iter_mut()
            .enumerate()
            .map(|(h, m)| (h, m.flight_events()))
            .collect()
    }

    /// Run the configured number of epochs and produce the report.
    pub fn run(&mut self) -> ClusterReport {
        for _ in 0..self.cfg.epochs {
            self.run_epoch();
        }
        self.audit_check();
        self.report()
    }

    /// The effective intra-epoch worker count.
    pub fn jobs(&self) -> usize {
        self.runner.jobs()
    }

    /// Advance every live host to the next epoch boundary — in parallel
    /// on the worker pool — apply the epoch's scheduled faults, then
    /// balance. Crashed hosts stay frozen at the boundary where they
    /// died.
    ///
    /// Everything after the advance is deliberately serial: fault
    /// application, the balancer decision and the migration all mutate
    /// cross-host state and happen at the barrier, in a fixed order, on
    /// the calling thread. Combined with per-host RNG streams, per-host
    /// flight buffers (merged later by stable `(time, host, seq)`
    /// order) and worker-side telemetry capture, this makes the run
    /// bit-identical for every worker count.
    pub fn run_epoch(&mut self) {
        let epoch = self.epochs_run;
        let end = self.epoch_cycles() * (epoch + 1);
        let telemetry = self.advance_hosts(end);
        self.collect_deltas(&telemetry);
        self.apply_host_faults(epoch, end);
        self.audit_check();
        let attempt = match self.pending {
            Some(p) if p.due <= epoch => {
                self.pending = None;
                self.revalidate_retry(p)
            }
            // A chain backing off holds the one-migration-per-epoch
            // slot: no fresh decision until it resolves.
            Some(_) => None,
            None => decide(self.cfg.policy, &self.snapshot(epoch)).map(|mv| (mv, 1)),
        };
        if let Some((mv, attempt)) = attempt {
            self.execute_migration(epoch, mv, end, attempt);
        }
        self.epochs_run = epoch + 1;
    }

    /// Parallel phase of an epoch: every live host runs to the boundary
    /// as one sweep cell, and the worker that advanced it snapshots its
    /// per-slot telemetry counters before returning — so the serial
    /// section never touches a guest kernel or accounting registry.
    /// Hosts share no state (the one cross-host operation, migration,
    /// happens serially at the barrier), so cell index `h` fully
    /// determines cell `h`'s result and the pool's claim order cannot
    /// matter. Crashed hosts are frozen and skipped; their telemetry
    /// slots stay empty, and the registry never points at them.
    fn advance_hosts(&mut self, end: Cycles) -> Vec<Vec<VmCounters>> {
        let mut telemetry: Vec<Vec<VmCounters>> = vec![Vec::new(); self.hosts.len()];
        let runner = self.runner;
        let health = &self.health;
        let live: Vec<(usize, &mut Machine)> = self
            .hosts
            .iter_mut()
            .enumerate()
            .filter(|(h, _)| health[*h] != HostHealth::Crashed)
            .collect();
        for (h, counters) in runner.map(live, |(h, m)| {
            m.run_until(end);
            (h, m.all_vm_counters())
        }) {
            telemetry[h] = counters;
        }
        telemetry
    }

    /// Apply this epoch's scheduled host faults: derate slow hosts,
    /// crash and evacuate dead ones. Fault events land in the affected
    /// (or, for evacuations, receiving) host's flight stream.
    fn apply_host_faults(&mut self, epoch: u64, now: Cycles) {
        let faults: Vec<FaultKind> = self.cfg.faults.host_faults_at(epoch).collect();
        for kind in faults {
            match kind {
                FaultKind::Slow { host, derate_pct } => {
                    if self.health[host] == HostHealth::Crashed {
                        continue;
                    }
                    self.hosts[host].set_capacity_derate(derate_pct);
                    self.health[host] = HostHealth::Degraded { pct: derate_pct };
                    self.hosts[host].record_cluster_event(FlightEv::HostDerate {
                        host: host as u32,
                        pct: derate_pct,
                    });
                }
                FaultKind::Crash { host } => {
                    if self.health[host] == HostHealth::Crashed {
                        continue;
                    }
                    self.health[host] = HostHealth::Crashed;
                    self.hosts[host]
                        .record_cluster_event(FlightEv::HostCrash { host: host as u32 });
                    self.evacuate_host(host, epoch, now);
                }
                // host_faults_at never yields aborts; those are
                // consumed by execute_migration.
                FaultKind::Abort => unreachable!("abort is not a host fault"),
            }
        }
    }

    /// Evacuate every VM registered on a crashed host and re-place it:
    /// healthy destinations before degraded ones, then fewest resident
    /// VCPUs, then lowest index. Each evacuation is charged like a
    /// stop-and-copy migration (the simulator restores the VM from its
    /// at-crash state; the full pause models the restore).
    fn evacuate_host(&mut self, host: usize, epoch: u64, now: Cycles) {
        let refugees: Vec<usize> = (0..self.vms.len())
            .filter(|&id| self.vms[id].host == host)
            .collect();
        for id in refugees {
            let (local, vcpus, online_delta, name) = {
                let e = &self.vms[id];
                (e.local, e.vcpus, e.online_delta, e.name.clone())
            };
            let dest = (0..self.hosts.len())
                .filter(|&h| {
                    h != host
                        && self.health[h] != HostHealth::Crashed
                        && vcpus <= self.hosts[h].config().pcpus
                })
                .min_by_key(|&h| {
                    let degraded = self.health[h] != HostHealth::Healthy;
                    let resident: usize = self
                        .vms
                        .iter()
                        .filter(|e| e.host == h)
                        .map(|e| e.vcpus)
                        .sum();
                    (degraded, resident, h)
                })
                .unwrap_or_else(|| {
                    panic!("evacuation failed: no live host can take vm {id} ({name})")
                });
            let image = self.hosts[host].extract_vm(local);
            let dirty = self.cfg.model.dirty_pages(Cycles(online_delta));
            let pause = self.cfg.model.pause(dirty);
            let new_local = self.hosts[dest].inject_vm(image, now + pause);
            self.hosts[dest].record_cluster_event(FlightEv::Evacuate {
                vm: id as u32,
                from: host as u32,
                to: dest as u32,
            });
            self.evacuations.push(MigrationRecord {
                epoch,
                vm: id,
                name,
                from: host,
                to: dest,
                online_delta,
                dirty_pages: dirty,
                pause: pause.as_u64(),
            });
            let e = &mut self.vms[id];
            e.host = dest;
            e.local = new_local;
            e.last_migration = Some(epoch);
            e.migrations += 1;
        }
        // A retry chain headed for (or rolling back onto) the dead host
        // cannot continue.
        if let Some(p) = self.pending {
            if p.to == host {
                self.pending = None;
                self.retries_abandoned += 1;
            }
        }
    }

    /// Re-check a due retry against the current cluster state: the
    /// destination must still admit and must not have become the VM's
    /// home (a crash evacuation may have re-placed it meanwhile).
    fn revalidate_retry(&mut self, p: PendingRetry) -> Option<(Move, u32)> {
        let stale =
            self.health[p.to] != HostHealth::Healthy || self.vms[p.vm].host == p.to;
        if stale {
            self.retries_abandoned += 1;
            return None;
        }
        Some((Move { vm: p.vm, to: p.to }, p.attempts + 1))
    }

    /// Form epoch deltas from the telemetry the workers captured during
    /// the parallel advance — a pure array lookup per VM, so the serial
    /// section stays O(registry) with no host rescans. The counters
    /// travel with the VM (kernel stats move with the kernel,
    /// accounting moves with the image), so the deltas stay monotone
    /// across migrations.
    fn collect_deltas(&mut self, telemetry: &[Vec<VmCounters>]) {
        for e in &mut self.vms {
            let c = telemetry[e.host][e.local];
            e.spin_delta = c.spin.saturating_sub(e.prev_spin);
            e.vcrd_high_delta = c.vcrd_high.saturating_sub(e.prev_vcrd_high);
            e.online_delta = c.online.saturating_sub(e.prev_online);
            e.prev_spin = c.spin;
            e.prev_vcrd_high = c.vcrd_high;
            e.prev_online = c.online;
        }
    }

    /// Build the balancer's view of this epoch. Hosts advertise their
    /// *effective* (derate-shrunk) capacity, and only healthy hosts
    /// admit; VMs that exhausted their retry cap read as cooling
    /// forever, so no policy re-proposes them.
    fn snapshot(&self, epoch: u64) -> Snapshot {
        Snapshot {
            hosts: self
                .hosts
                .iter()
                .enumerate()
                .map(|(h, m)| HostView {
                    pcpus: m.effective_pcpus(),
                    admit: self.health[h] == HostHealth::Healthy,
                })
                .collect(),
            vms: self
                .vms
                .iter()
                .map(|e| VmView {
                    host: e.host,
                    vcpus: e.vcpus,
                    spin_delta: e.spin_delta,
                    vcrd_high_delta: e.vcrd_high_delta,
                    cooling: e.gave_up
                        || e.last_migration.is_some_and(|m| {
                            epoch.saturating_sub(m) < self.cfg.cooldown_epochs
                        }),
                })
                .collect(),
            epoch_cycles: self.epoch_cycles().as_u64(),
        }
    }

    /// Attempt to stop-and-copy `mv.vm` onto `mv.to` (attempt number
    /// `attempt` of its chain). The state machine:
    ///
    /// * **prepare** — extract the [`asman_hypervisor::VmImage`] at the
    ///   epoch boundary;
    /// * **copy** — charge the dirty-rate-proportional cost; if the
    ///   fault plan aborts this epoch, the copy fails here;
    /// * **commit** — inject on the destination, resuming after the
    ///   full pause; or
    /// * **abort** — roll the image back onto the source (tombstone
    ///   cleared, [`MigrationModel::abort_penalty`] of dead time) and
    ///   schedule a retry with exponential backoff (1, 2, 4… epochs)
    ///   until the per-VM attempt cap is spent.
    fn execute_migration(&mut self, epoch: u64, mv: Move, now: Cycles, attempt: u32) {
        let (from, local, online_delta, name) = {
            let e = &self.vms[mv.vm];
            (e.host, e.local, e.online_delta, e.name.clone())
        };
        assert_ne!(from, mv.to, "balancer proposed a no-op move");
        if attempt > 1 {
            self.hosts[from].record_cluster_event(FlightEv::MigrateRetry {
                vm: mv.vm as u32,
                attempt,
            });
        }
        let image = self.hosts[from].extract_vm(local);
        #[allow(unused_mut)]
        let mut dirty = self.cfg.model.dirty_pages(Cycles(online_delta));
        #[cfg(feature = "audit")]
        if self.fault_dirty_undercount {
            dirty /= 2;
        }
        if self.cfg.faults.aborts_at(epoch) {
            // Abort with rollback: the image returns to its original
            // slot on the source, which eats the failed copy's penalty
            // as guest-visible dead time.
            let penalty = self.cfg.model.abort_penalty(dirty);
            self.hosts[from].undo_extract_vm(local, image, now + penalty);
            #[cfg(feature = "audit")]
            if self.fault_sticky_tombstone {
                self.hosts[from].audit_mark_evacuated(local);
            }
            self.hosts[from].record_cluster_event(FlightEv::MigrateAbort {
                vm: mv.vm as u32,
                attempt,
            });
            self.aborts.push(AbortRecord {
                epoch,
                vm: mv.vm,
                name,
                from,
                to: mv.to,
                attempt,
                online_delta,
                dirty_pages: dirty,
                penalty: penalty.as_u64(),
            });
            self.vms[mv.vm].attempts = attempt;
            if attempt < self.cfg.retry_cap {
                self.pending = Some(PendingRetry {
                    vm: mv.vm,
                    to: mv.to,
                    due: epoch + (1 << (attempt - 1)),
                    attempts: attempt,
                });
            } else {
                self.vms[mv.vm].gave_up = true;
                self.gave_up += 1;
            }
            return;
        }
        let pause = self.cfg.model.pause(dirty);
        let new_local = self.hosts[mv.to].inject_vm(image, now + pause);
        self.records.push(MigrationRecord {
            epoch,
            vm: mv.vm,
            name,
            from,
            to: mv.to,
            online_delta,
            dirty_pages: dirty,
            pause: pause.as_u64(),
        });
        if attempt > 1 {
            self.retries_committed += 1;
        }
        let e = &mut self.vms[mv.vm];
        e.host = mv.to;
        e.local = new_local;
        e.last_migration = Some(epoch);
        e.migrations += 1;
        e.attempts = 0;
    }

    /// Cluster invariant auditor (always on — it is cheap relative to
    /// an epoch of simulation):
    ///
    /// * **registry/host agreement** — every entry points at a live VM
    ///   on a live host, with the right name and VCPU count, and no
    ///   retry chain overran its attempt cap;
    /// * **VM conservation** — live VMs across hosts equal the registry;
    /// * **migration-cost conservation** — every migration and
    ///   evacuation record's `dirty_pages` and `pause`, and every abort
    ///   record's `penalty`, re-derive from `online_delta` through the
    ///   model (catches any path that charges less than the model
    ///   demands — e.g. the injected undercount fault — and any
    ///   rollback that forgot to clear the source tombstone).
    pub fn audit_check(&self) {
        for (id, e) in self.vms.iter().enumerate() {
            let m = &self.hosts[e.host];
            assert!(
                !m.vm_evacuated(e.local),
                "cluster audit: registry vm {} points at a tombstone",
                id
            );
            assert!(
                self.health[e.host] != HostHealth::Crashed,
                "cluster audit: registry vm {} resident on crashed host {}",
                id,
                e.host
            );
            assert_eq!(
                m.vm_name(e.local),
                e.name,
                "cluster audit: registry vm {} name mismatch",
                id
            );
            assert_eq!(
                m.vm_kernel(e.local).vcpu_count(),
                e.vcpus,
                "cluster audit: registry vm {} vcpu count mismatch",
                id
            );
            assert!(
                e.attempts <= self.cfg.retry_cap,
                "cluster audit: vm {} overran the retry cap ({} > {})",
                id,
                e.attempts,
                self.cfg.retry_cap
            );
        }
        let live: usize = self.hosts.iter().map(|m| m.active_vm_count()).sum();
        assert_eq!(
            live,
            self.vms.len(),
            "cluster audit: VM count not conserved ({} live vs {} registered)",
            live,
            self.vms.len()
        );
        for r in self.records.iter().chain(&self.evacuations) {
            let dirty = self.cfg.model.dirty_pages(Cycles(r.online_delta));
            assert_eq!(
                dirty, r.dirty_pages,
                "cluster audit: migration dirty pages not conserved (vm {} epoch {})",
                r.vm, r.epoch
            );
            assert_eq!(
                self.cfg.model.pause(r.dirty_pages).as_u64(),
                r.pause,
                "cluster audit: migration pause not conserved (vm {} epoch {})",
                r.vm, r.epoch
            );
        }
        for a in &self.aborts {
            let dirty = self.cfg.model.dirty_pages(Cycles(a.online_delta));
            assert_eq!(
                dirty, a.dirty_pages,
                "cluster audit: abort dirty pages not conserved (vm {} epoch {})",
                a.vm, a.epoch
            );
            assert_eq!(
                self.cfg.model.abort_penalty(a.dirty_pages).as_u64(),
                a.penalty,
                "cluster audit: abort penalty not conserved (vm {} epoch {})",
                a.vm, a.epoch
            );
            assert!(
                a.attempt >= 1 && a.attempt <= self.cfg.retry_cap,
                "cluster audit: abort attempt {} outside 1..={} (vm {})",
                a.attempt,
                self.cfg.retry_cap,
                a.vm
            );
        }
        #[cfg(feature = "audit")]
        for m in &self.hosts {
            m.check_invariants();
        }
    }

    /// Final report from the registry and host state.
    pub fn report(&self) -> ClusterReport {
        let vm_rows: Vec<VmRow> = self
            .vms
            .iter()
            .map(|e| {
                let m = &self.hosts[e.host];
                let st = m.vm_kernel(e.local).stats();
                let acct = m.vm_accounting(e.local);
                VmRow {
                    name: e.name.clone(),
                    host: e.host,
                    vcpus: e.vcpus,
                    migrations: e.migrations,
                    spin_cycles: (st.spin_kernel_cycles
                        + st.spin_barrier_cycles
                        + st.spin_pipeline_cycles)
                        .as_u64(),
                    useful_cycles: st.useful_cycles.as_u64(),
                    vcrd_high_cycles: acct.vcrd_high_cycles.as_u64(),
                    online_cycles: acct.total_online().as_u64(),
                }
            })
            .collect();
        let host_rows = self
            .hosts
            .iter()
            .enumerate()
            .map(|(h, m)| HostRow {
                host: h,
                pcpus: m.config().pcpus,
                vms: self
                    .vms
                    .iter()
                    .filter(|e| e.host == h)
                    .map(|e| e.name.clone())
                    .collect(),
                resident_vcpus: self
                    .vms
                    .iter()
                    .filter(|e| e.host == h)
                    .map(|e| e.vcpus)
                    .sum(),
                events_processed: m.events_processed(),
            })
            .collect();
        let recovery = if self.cfg.faults.is_empty() {
            None
        } else {
            Some(RecoveryReport {
                plan: self.cfg.faults.clone(),
                host_health: self.health.clone(),
                aborts: self.aborts.clone(),
                evacuations: self.evacuations.clone(),
                retries_committed: self.retries_committed,
                retries_abandoned: self.retries_abandoned,
                gave_up: self.gave_up,
                total_abort_penalty_cycles: self.aborts.iter().map(|a| a.penalty).sum(),
                total_evacuation_pause_cycles: self
                    .evacuations
                    .iter()
                    .map(|r| r.pause)
                    .sum(),
            })
        };
        ClusterReport {
            policy: self.cfg.policy.label(),
            hosts: self.hosts.len(),
            epochs: self.epochs_run,
            epoch_ms: self.cfg.epoch_ms,
            host_rows,
            total_spin_cycles: vm_rows.iter().map(|r| r.spin_cycles).sum(),
            total_useful_cycles: vm_rows.iter().map(|r| r.useful_cycles).sum(),
            total_pause_cycles: self.records.iter().map(|r| r.pause).sum(),
            vm_rows,
            migrations: self.records.clone(),
            recovery,
        }
    }
}
