//! Deterministic cluster scenarios.
//!
//! [`consolidation`] is the paper-style headline case: an operator
//! consolidated several concurrent (gang) VMs onto one host while other
//! hosts run only background services. The overloaded host's gangs
//! demand more PCPUs than exist, so no per-host scheduler — not even
//! ASMan's adaptive coscheduler — can stop them from spinning on
//! preempted lock holders. Only a placement change can, which is what
//! the cluster experiment measures across policies.
//!
//! [`random_mix`] builds arbitrary heterogeneous clusters from a seed;
//! the fuzz smoke tests drive it with random tuples.

use crate::churn::{ShapeKind, VmShape};
use crate::{Cluster, ClusterConfig};
use asman_core::AsmanConfig;
use asman_hypervisor::{Machine, MachineConfig, VmSpec};
use asman_sim::SimRng;
use asman_workloads::{Op, ScriptProgram};

/// Parameters of the consolidation scenario.
#[derive(Clone, Copy, Debug)]
pub struct ConsolidationSpec {
    /// Host count (>= 2; host 0 is the consolidated one).
    pub hosts: usize,
    /// Concurrent 3-VCPU gang VMs packed onto host 0.
    pub gangs: usize,
    /// PCPUs per host.
    pub pcpus: usize,
    /// Base seed; each host derives an independent stream.
    pub seed: u64,
}

impl Default for ConsolidationSpec {
    fn default() -> Self {
        ConsolidationSpec {
            hosts: 3,
            gangs: 2,
            pcpus: 4,
            seed: 42,
        }
    }
}

/// Per-host seed: decorrelate hosts without losing determinism.
fn host_seed(base: u64, host: usize) -> u64 {
    base ^ (host as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
}

/// A concurrent (gang) VM: every thread takes one shared kernel
/// spinlock briefly (20 µs) between 180 µs compute bursts, forever.
/// The ~10% lock duty cycle keeps contention cheap while the VCPUs are
/// coscheduled; but when a holder's VCPU is preempted, every sibling
/// that reaches the lock spins for the holder's whole offline gap —
/// the spin is lock-holder preemption, not inherent contention, so a
/// placement that restores coscheduling recovers nearly all of it.
fn gang_program(name: String, vcpus: usize, cfg: &MachineConfig) -> ScriptProgram {
    let clk = cfg.clock;
    ScriptProgram::homogeneous(
        name,
        vcpus,
        vec![
            Op::CriticalSection {
                lock: 0,
                hold: clk.us(20),
            },
            Op::Compute(clk.us(180)),
        ],
    )
    .looping()
}

/// A quiet background service: short compute bursts between long
/// sleeps. Big in VCPU count, near-zero in synchronization demand.
fn background_program(name: String, vcpus: usize, cfg: &MachineConfig) -> ScriptProgram {
    let clk = cfg.clock;
    ScriptProgram::homogeneous(
        name,
        vcpus,
        vec![Op::Compute(clk.us(500)), Op::Sleep(clk.ms(2))],
    )
    .looping()
}

/// Build the [`VmSpec`] for a churn arrival of the given shape, using
/// the destination host's clock. Arrivals run the same gang/background
/// programs the seeded scenarios use, so a churned cluster stays
/// workload-homogeneous with its static twin.
pub(crate) fn arrival_spec(shape: &VmShape, name: String, cfg: &MachineConfig) -> VmSpec {
    let program: Box<dyn asman_workloads::Program> = match shape.kind {
        ShapeKind::Gang => Box::new(gang_program(name.clone(), shape.vcpus, cfg)),
        ShapeKind::Background => Box::new(background_program(name.clone(), shape.vcpus, cfg)),
    };
    VmSpec::new(name, shape.vcpus, program).weight(shape.weight)
}

/// Build the consolidation hosts: host 0 carries `gangs` lock-heavy
/// 3-VCPU VMs plus a 4-VCPU background VM; every other host carries one
/// background VM. All hosts run the full ASMan stack (Adaptive policy +
/// per-VM Monitoring Modules).
pub fn consolidation(spec: &ConsolidationSpec) -> Vec<Machine> {
    assert!(
        spec.hosts >= 2,
        "consolidation needs somewhere to migrate to"
    );
    assert!(spec.gangs >= 1, "need at least one gang");
    let mcfg = MachineConfig {
        pcpus: spec.pcpus,
        ..MachineConfig::default()
    };
    (0..spec.hosts)
        .map(|h| {
            let host_cfg = MachineConfig {
                seed: host_seed(spec.seed, h),
                ..mcfg
            };
            let mut specs = Vec::new();
            if h == 0 {
                for g in 0..spec.gangs {
                    let vcpus = 3.min(spec.pcpus);
                    specs.push(VmSpec::new(
                        format!("gang{g}"),
                        vcpus,
                        Box::new(gang_program(format!("gang{g}"), vcpus, &host_cfg)),
                    ));
                }
            }
            let vcpus = 4.min(spec.pcpus);
            specs.push(VmSpec::new(
                format!("bg{h}"),
                vcpus,
                Box::new(background_program(format!("bg{h}"), vcpus, &host_cfg)),
            ));
            asman_core::asman_machine(
                AsmanConfig {
                    machine: host_cfg,
                    ..AsmanConfig::default()
                },
                specs,
            )
        })
        .collect()
}

/// Convenience: a ready-to-run consolidation [`Cluster`].
pub fn consolidation_cluster(cfg: ClusterConfig, spec: &ConsolidationSpec) -> Cluster {
    Cluster::new(cfg, consolidation(spec))
}

/// A uniformly loaded cluster for scaling benchmarks: every host
/// carries one 3-VCPU gang VM plus one 2-VCPU background VM on 4
/// PCPUs. Each gang fits its host, so no policy proposes a migration —
/// the epoch loop's cost is pure host advancement plus the balancer
/// scan, which is exactly what the hosts × jobs bench grid wants to
/// measure. Per-host seeds keep hosts decorrelated and every run
/// bit-reproducible.
pub fn uniform(hosts: usize, seed: u64) -> Vec<Machine> {
    assert!(hosts >= 1, "need at least one host");
    (0..hosts)
        .map(|h| {
            let host_cfg = MachineConfig {
                pcpus: 4,
                seed: host_seed(seed, h),
                ..MachineConfig::default()
            };
            let specs = vec![
                VmSpec::new(
                    format!("gang{h}"),
                    3,
                    Box::new(gang_program(format!("gang{h}"), 3, &host_cfg)),
                ),
                VmSpec::new(
                    format!("bg{h}"),
                    2,
                    Box::new(background_program(format!("bg{h}"), 2, &host_cfg)),
                ),
            ];
            asman_core::asman_machine(
                AsmanConfig {
                    machine: host_cfg,
                    ..AsmanConfig::default()
                },
                specs,
            )
        })
        .collect()
}

/// A hotspot cluster for convergence benchmarks: the first
/// `max(1, hosts/4)` hosts each carry **two** lock-heavy 3-VCPU gang
/// VMs on 4 PCPUs (demand 6 > 4, so every hot host spins on
/// lock-holder preemption until it sheds a gang), while the remaining
/// hosts run a single 2-VCPU background service and are gang-free
/// destinations. Rebalancing needs exactly one migration per hot host,
/// each with a distinct source and (by the gang-fit rule) a distinct
/// destination — so the epochs-to-balance of this scenario measures
/// the per-epoch move budget directly: budget 1 needs ~`hosts/4`
/// epochs, budget K needs ~`hosts/(4K)`.
pub fn hotspot(hosts: usize, seed: u64) -> Vec<Machine> {
    assert!(hosts >= 2, "hotspot needs somewhere to migrate to");
    let hot = (hosts / 4).max(1);
    (0..hosts)
        .map(|h| {
            let host_cfg = MachineConfig {
                pcpus: 4,
                seed: host_seed(seed, h),
                ..MachineConfig::default()
            };
            let specs = if h < hot {
                (0..2)
                    .map(|g| {
                        let name = format!("gang{h}_{g}");
                        VmSpec::new(
                            name.clone(),
                            3,
                            Box::new(gang_program(name, 3, &host_cfg)),
                        )
                    })
                    .collect()
            } else {
                vec![VmSpec::new(
                    format!("bg{h}"),
                    2,
                    Box::new(background_program(format!("bg{h}"), 2, &host_cfg)),
                )]
            };
            asman_core::asman_machine(
                AsmanConfig {
                    machine: host_cfg,
                    ..AsmanConfig::default()
                },
                specs,
            )
        })
        .collect()
}

/// A random heterogeneous cluster: `hosts` machines with 2–6 PCPUs each
/// and `vms` VMs of random shape (gang or background, 1–4 VCPUs, random
/// weight) dealt round-robin-ish onto random hosts. Fully determined by
/// `seed`.
pub fn random_mix(hosts: usize, vms: usize, seed: u64) -> Vec<Machine> {
    assert!(hosts >= 1 && vms >= 1);
    let mut rng = SimRng::new(seed ^ 0xC1u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let pcpus: Vec<usize> = (0..hosts).map(|_| rng.range(2, 7) as usize).collect();
    let mut per_host: Vec<Vec<VmSpec>> = (0..hosts).map(|_| Vec::new()).collect();
    for v in 0..vms {
        let h = rng.index(hosts);
        let cfg = MachineConfig {
            pcpus: pcpus[h],
            ..MachineConfig::default()
        };
        let vcpus = (rng.range(1, 5) as usize).min(pcpus[h]);
        let name = format!("vm{v}");
        let program: Box<dyn asman_workloads::Program> = if rng.chance(0.5) {
            Box::new(gang_program(name.clone(), vcpus, &cfg))
        } else {
            Box::new(background_program(name.clone(), vcpus, &cfg))
        };
        let weight = rng.range(128, 513) as u32;
        per_host[h].push(VmSpec::new(name, vcpus, program).weight(weight));
    }
    per_host
        .into_iter()
        .enumerate()
        .map(|(h, mut specs)| {
            // A host must carry at least one VM for the scenario to be
            // interesting; give empty hosts a tiny background service.
            if specs.is_empty() {
                let cfg = MachineConfig {
                    pcpus: pcpus[h],
                    ..MachineConfig::default()
                };
                specs.push(VmSpec::new(
                    format!("filler{h}"),
                    1,
                    Box::new(background_program(format!("filler{h}"), 1, &cfg)),
                ));
            }
            asman_core::asman_machine(
                AsmanConfig {
                    machine: MachineConfig {
                        pcpus: pcpus[h],
                        seed: host_seed(seed, h),
                        ..MachineConfig::default()
                    },
                    ..AsmanConfig::default()
                },
                specs,
            )
        })
        .collect()
}
