//! Property tests over random churn plans.
//!
//! A churned cluster run mixes VM arrivals and departures into the
//! epoch barrier; these properties drive the consolidation scenario
//! with seed-generated plans (and seed-generated fault plans on top)
//! and demand the state-lifetime invariants the soak harness watches:
//!
//! * **Conservation** — every VM the registry ever saw is accounted
//!   for: `initial + arrivals == resident_end + departures`, and the
//!   report's host rows agree with the registry on the resident set.
//! * **No sticky tombstones** — with slot reuse on, host slot tables
//!   are bounded by peak residency, not by total arrivals: tombstones
//!   never exceed departures, and every tombstone is reusable (a later
//!   matching arrival recycles it rather than appending).
//! * **Worker-count independence** — a churned (and faulted) run's
//!   full serialized report is byte-identical between `--jobs 1` and
//!   `--jobs 4`, the same determinism contract the clean runs pin.

use asman_cluster::{
    scenario::{self, ConsolidationSpec},
    ChurnPlan, Cluster, ClusterConfig, ClusterReport, Policy,
};
use asman_sim::FaultPlan;
use proptest::prelude::*;

const EPOCHS: u64 = 12;

fn churned_cluster(seed: u64, rate: u32, jobs: usize, faulted: bool) -> Cluster {
    let spec = ConsolidationSpec::default();
    let cfg = ClusterConfig {
        policy: Policy::VcrdAware,
        epochs: EPOCHS,
        epoch_ms: 50,
        jobs,
        churn: ChurnPlan::generate(seed, rate, EPOCHS, spec.hosts),
        faults: if faulted {
            // A mid-run abort exercises the retry chain against a
            // mutating population without killing any host.
            FaultPlan::parse("abort@4").unwrap()
        } else {
            FaultPlan::default()
        },
        ..ClusterConfig::default()
    };
    let mut c = scenario::consolidation_cluster(cfg, &spec);
    c.enable_slot_reuse();
    c
}

fn run(seed: u64, rate: u32, jobs: usize, faulted: bool) -> (ClusterReport, usize, Cluster) {
    let mut c = churned_cluster(seed, rate, jobs, faulted);
    let initial = c.vm_count();
    let report = c.run();
    (report, initial, c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// arrived − departed == resident − initial, for any generated
    /// plan, and the host rows agree with the registry.
    #[test]
    fn vm_population_is_conserved(seed in 0u64..1000, rate in 10u32..60) {
        let (report, initial, cluster) = run(seed, rate, 1, false);
        // A plan with no events reports no churn: a static run.
        if let Some(churn) = report.churn.as_ref() {
        let registry = report.vm_rows.len() as u64;
        prop_assert_eq!(registry, initial as u64 + churn.arrivals);
        prop_assert_eq!(
            churn.resident_end,
            initial as u64 + churn.arrivals - churn.departures,
            "arrivals minus departures must equal resident growth"
        );
        let resident_rows: u64 =
            report.host_rows.iter().map(|h| h.vms.len() as u64).sum();
        prop_assert_eq!(resident_rows, churn.resident_end);
        prop_assert_eq!(
            cluster.resident_vm_count() as u64, churn.resident_end
        );
        // Every scheduled departure either fired or was skipped
        // against an empty host — none vanish.
        prop_assert_eq!(
            churn.departures + churn.departures_skipped,
            churn.plan.departures() as u64
        );
        }
    }

    /// With slot reuse enabled, host slot tables stay bounded: the
    /// cluster never holds more tombstones than it saw departures, and
    /// total slots never exceed initial + arrivals (they are strictly
    /// fewer as soon as any tombstone is recycled).
    #[test]
    fn slot_reuse_leaves_no_sticky_tombstones(seed in 0u64..1000, rate in 10u32..60) {
        let (report, initial, cluster) = run(seed, rate, 1, false);
        let occ = cluster.occupancy();
        let (arrivals, departures) = report
            .churn
            .as_ref()
            .map_or((0, 0), |c| (c.arrivals, c.departures));
        prop_assert_eq!(occ.registry as u64, initial as u64 + arrivals);
        prop_assert_eq!(
            occ.resident as u64,
            initial as u64 + arrivals - departures
        );
        // Tombstones come from departures *and* from migration
        // extractions (the source host keeps an emptied slot); both are
        // bounded by plan-scale counts, never by the epoch horizon.
        let moved = report.migrations.len() as u64;
        prop_assert!(
            (occ.tombstones as u64) <= departures + moved,
            "tombstones {} exceed departures {} + migrations {}",
            occ.tombstones, departures, moved
        );
        prop_assert_eq!(
            occ.slots, occ.resident + occ.tombstones,
            "every slot is either resident or a tombstone"
        );
        prop_assert_eq!(occ.pending_retries, 0, "no chain survives the run");
    }

    /// Byte-identical serialized reports between jobs=1 and jobs=4,
    /// clean and faulted, for any generated churn plan.
    #[test]
    fn churned_runs_are_jobs_invariant(seed in 0u64..1000, rate in 10u32..60) {
        for faulted in [false, true] {
            let (a, _, _) = run(seed, rate, 1, faulted);
            let (b, _, _) = run(seed, rate, 4, faulted);
            prop_assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "faulted={} run must not depend on worker count", faulted
            );
        }
    }
}
