//! Balancer boundary state across checkpoint/restore.
//!
//! The checkpoint must carry every piece of cross-epoch balancer state
//! — per-VM migration cooldowns, the pending retry with its backoff
//! deadline and attempt count, the VCRD baselines the next epoch's
//! deltas are computed against, and the span-id allocator. Each test
//! here is a fails-without-fix regression for one of those fields: it
//! simulates a checkpoint whose encoding *dropped* the field (by
//! resetting it in an otherwise faithful image), applies it, and
//! demands the continued run's final state digest diverge from the
//! uninterrupted run — proving the field is load-bearing. The faithful
//! twin restores the unmodified image and must stay bit-identical.
//!
//! The scenario is tuned so the interesting state is live at the
//! boundary: `abort@0,abort@1` makes the consolidation migration abort
//! twice, so at epoch 2 a retry is mid-backoff (attempts 2, due epoch
//! 3), it commits at epoch 3, and at epoch 5 the resulting per-VM
//! cooldowns are still counting down — with further migrations landing
//! around epochs 8 and 11 to carry any divergence to the horizon.

use asman_cluster::{
    checkpoint::ClusterState, scenario::ConsolidationSpec, Checkpoint, CheckpointConfig,
    ChurnPlan, ClusterConfig, Policy,
};
use asman_sim::FaultPlan;

const EPOCHS: u64 = 12;

fn config() -> CheckpointConfig {
    let d = ClusterConfig::default();
    CheckpointConfig {
        scenario: ConsolidationSpec::default(),
        epoch_ms: d.epoch_ms,
        epochs: EPOCHS,
        policy: Policy::VcrdAware,
        cooldown_epochs: d.cooldown_epochs,
        retry_cap: d.retry_cap,
        audit_every: d.audit_every,
        model: d.model,
        faults: FaultPlan::parse("abort@0,abort@1").expect("fault plan"),
        churn: ChurnPlan::empty(),
        slot_reuse: false,
        series_capacity: 0,
        max_moves: 1,
    }
}

fn straight_digest(cfg: &CheckpointConfig) -> u64 {
    let mut c = cfg.build_cluster(1);
    for _ in 0..cfg.epochs {
        c.run_epoch();
    }
    c.state_digest()
}

fn capture_at(cfg: &CheckpointConfig, at: u64) -> Checkpoint {
    let mut c = cfg.build_cluster(1);
    for _ in 0..at {
        c.run_epoch();
    }
    Checkpoint::capture(&c, cfg.clone())
}

/// Restore `ck` (after `tweak` mangles its state) and run to the end.
/// `apply` is used directly — a decoder that silently dropped a field
/// would pass no-op validation against its own replay, so the tests
/// model the drop on the state image itself.
fn resumed_digest(cfg: &CheckpointConfig, ck: &Checkpoint, tweak: &dyn Fn(&mut ClusterState)) -> u64 {
    let mut ck = ck.clone();
    tweak(&mut ck.state);
    let mut c = cfg.build_cluster(1);
    for _ in 0..ck.state.epoch {
        c.run_epoch();
    }
    ck.apply(&mut c);
    for _ in ck.state.epoch..cfg.epochs {
        c.run_epoch();
    }
    c.state_digest()
}

/// The boundary really is mid-flight: a retry is pending with a
/// future deadline and a second attempt on the counter, and after the
/// commit a cooldown is active. Guards the other tests against the
/// scenario drifting into a dull corner.
#[test]
fn scenario_has_live_boundary_state() {
    let ck2 = capture_at(&config(), 2);
    let p = ck2.state.pending.first().expect("retry pending at epoch 2");
    assert!(p.due > 2, "retry is mid-backoff, due {} > 2", p.due);
    assert_eq!(p.attempts, 2, "two aborted attempts recorded");
    let ck5 = capture_at(&config(), 5);
    assert!(ck5.state.pending.is_empty(), "retry committed by epoch 5");
    let cooling = ck5
        .state
        .vms
        .iter()
        .filter(|v| v.last_migration.is_some_and(|m| 5 - m < 3))
        .count();
    assert!(cooling > 0, "a cooldown is counting down at epoch 5");
}

/// The faithful twin: restoring the unmodified image at either
/// boundary reproduces the uninterrupted run bit for bit.
#[test]
fn faithful_restore_is_bit_identical() {
    let cfg = config();
    let want = straight_digest(&cfg);
    for at in [2, 5] {
        let ck = capture_at(&cfg, at);
        assert_eq!(
            resumed_digest(&cfg, &ck, &|_| {}),
            want,
            "faithful restore at epoch {at} must match straight-through"
        );
    }
}

/// Every balancer boundary field is load-bearing: dropping it from the
/// restored image makes the continued run diverge from the
/// uninterrupted one, and the validator names it against a faithful
/// replay.
#[test]
fn dropped_boundary_fields_diverge() {
    let cfg = config();
    let want = straight_digest(&cfg);
    type Tweak = Box<dyn Fn(&mut ClusterState)>;
    let cases: Vec<(&str, u64, Tweak)> = vec![
        (
            "pending retry dropped entirely",
            2,
            Box::new(|s| s.pending.clear()),
        ),
        (
            "pending.due backoff timer reset (retry fires early)",
            2,
            Box::new(|s| s.pending.first_mut().expect("pending").due = 2),
        ),
        (
            "pending.attempts reset (backoff and give-up ladder restart)",
            2,
            Box::new(|s| {
                let p = s.pending.first_mut().expect("pending");
                p.attempts = 0;
                for v in &mut s.vms {
                    v.attempts = 0;
                }
            }),
        ),
        (
            "vms[*].last_migration dropped (cooldown lost)",
            5,
            Box::new(|s| {
                for v in &mut s.vms {
                    v.last_migration = None;
                }
            }),
        ),
        (
            // At epoch 8 the balancer's next fresh decision (the
            // epoch-9 migration) reads deltas computed against these
            // baselines. Corrupt them *past* the live counters so
            // every delta saturates to zero and the balancer sees an
            // idle cluster, suppressing that move. (Zeroing them
            // instead would inflate every delta by the same cumulative
            // total and leave the pick ordering intact — the
            // corruption has to change a decision, not just a number.)
            "vms[*].prev_* VCRD baselines corrupted (next deltas collapse)",
            8,
            Box::new(|s| {
                for v in &mut s.vms {
                    v.prev_spin = u64::MAX;
                    v.prev_vcrd_high = u64::MAX;
                    v.prev_online = u64::MAX;
                }
            }),
        ),
        (
            "next_span allocator reset (span ids collide)",
            2,
            Box::new(|s| s.next_span = 0),
        ),
    ];
    for (what, at, tweak) in cases {
        let ck = capture_at(&cfg, at);
        let got = resumed_digest(&cfg, &ck, tweak.as_ref());
        assert_ne!(
            got, want,
            "{what}: restored run should diverge from straight-through, \
             but the final digests agree — the field looks dead"
        );
        // The validator sees the same corruption when the image is
        // checked against a faithful replay, so a schema drop of this
        // field could not slip through a validated resume silently.
        let mut ck2 = ck.clone();
        tweak(&mut ck2.state);
        let mut fresh = cfg.build_cluster(1);
        for _ in 0..at {
            fresh.run_epoch();
        }
        assert!(
            !ck2.validate(&fresh).is_empty(),
            "{what}: validate must flag the mangled image"
        );
    }
}
