//! Cluster-level behavior tests: the consolidation experiment's shape,
//! conservation and determinism invariants, and a randomized fuzz
//! smoke over heterogeneous clusters.

use asman_cluster::{
    scenario::{self, ConsolidationSpec},
    Cluster, ClusterConfig, ClusterReport, Policy,
};

fn run_policy(policy: Policy, spec: &ConsolidationSpec, epochs: u64) -> ClusterReport {
    let cfg = ClusterConfig {
        policy,
        epochs,
        epoch_ms: 50,
        cooldown_epochs: 3,
        ..ClusterConfig::default()
    };
    scenario::consolidation_cluster(cfg, spec).run()
}

#[test]
fn vcrd_aware_migrates_a_gang_and_recovers_wasted_spin() {
    let spec = ConsolidationSpec::default();
    let stat = run_policy(Policy::Static, &spec, 8);
    let aware = run_policy(Policy::VcrdAware, &spec, 8);

    assert!(stat.migrations.is_empty(), "static must never migrate");
    assert!(
        !aware.migrations.is_empty(),
        "vcrd-aware must move a gang off the consolidated host"
    );
    assert!(
        aware.migrations[0].name.starts_with("gang"),
        "vcrd-aware must move a gang, moved {}",
        aware.migrations[0].name
    );
    // The headline claim: telemetry-driven placement recovers wasted
    // spin that static placement cannot.
    assert!(
        aware.total_spin_cycles < stat.total_spin_cycles,
        "vcrd-aware spin {} must be below static spin {}",
        aware.total_spin_cycles,
        stat.total_spin_cycles
    );
}

#[test]
fn least_loaded_moves_by_size_not_by_spin() {
    let spec = ConsolidationSpec::default();
    let ll = run_policy(Policy::LeastLoaded, &spec, 8);
    assert!(
        !ll.migrations.is_empty(),
        "the consolidated host is the most loaded; least-loaded must react"
    );
    // Host 0 holds two 3-VCPU gangs and the 4-VCPU background VM; the
    // VCPU-count policy picks the biggest VM, which is the quiet one.
    assert_eq!(
        ll.migrations[0].name, "bg0",
        "least-loaded should move the big background VM, not a gang"
    );
}

#[test]
fn same_seed_reruns_are_bit_identical() {
    let spec = ConsolidationSpec::default();
    let a = run_policy(Policy::VcrdAware, &spec, 6);
    let b = run_policy(Policy::VcrdAware, &spec, 6);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "cluster runs must be deterministic for a fixed seed"
    );
    let c = run_policy(
        Policy::VcrdAware,
        &ConsolidationSpec {
            seed: 43,
            ..spec
        },
        6,
    );
    assert_ne!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&c).unwrap(),
        "a different seed must perturb the run"
    );
}

#[test]
fn migration_counters_and_placement_agree() {
    let spec = ConsolidationSpec::default();
    let cfg = ClusterConfig {
        policy: Policy::VcrdAware,
        epochs: 8,
        epoch_ms: 50,
        ..ClusterConfig::default()
    };
    let mut cluster = scenario::consolidation_cluster(cfg, &spec);
    let report = cluster.run();
    // VM conservation: every registered VM has exactly one live home.
    let total_vms: usize = report.host_rows.iter().map(|h| h.vms.len()).sum();
    assert_eq!(total_vms, report.vm_rows.len());
    assert_eq!(cluster.vm_count(), report.vm_rows.len());
    // Each VM's migration count matches the record log.
    for (id, row) in report.vm_rows.iter().enumerate() {
        let moves = report.migrations.iter().filter(|r| r.vm == id).count() as u64;
        assert_eq!(row.migrations, moves, "vm {} migration count", row.name);
        if let Some(last) = report.migrations.iter().rfind(|r| r.vm == id) {
            assert_eq!(row.host, last.to, "vm {} must live where it last moved", row.name);
        }
    }
    // Pause totals re-derive from the records.
    let pause: u64 = report.migrations.iter().map(|r| r.pause).sum();
    assert_eq!(report.total_pause_cycles, pause);
}

#[test]
fn fuzz_smoke_random_clusters_conserve_vms() {
    // Random host/VM/policy/seed tuples; short epochs. The assertion is
    // mostly "nothing panics" — the cluster auditor runs every epoch —
    // plus explicit VM-count conservation.
    let mut ran = 0;
    for seed in [7u64, 1337, 0xDEAD_BEEF] {
        let hosts = 2 + (seed % 3) as usize;
        let vms = 3 + (seed % 5) as usize;
        for policy in Policy::ALL {
            let cfg = ClusterConfig {
                policy,
                epochs: 3,
                epoch_ms: 20,
                cooldown_epochs: 1,
                ..ClusterConfig::default()
            };
            let mut cluster = Cluster::new(cfg, scenario::random_mix(hosts, vms, seed));
            let before = cluster.vm_count();
            let report = cluster.run();
            assert_eq!(cluster.vm_count(), before);
            let resident: usize = report.host_rows.iter().map(|h| h.vms.len()).sum();
            assert_eq!(resident, before, "placement lost or duplicated a VM");
            ran += 1;
        }
    }
    assert_eq!(ran, 9);
}

/// Reverting the dirty-page accounting guard (here: arming the
/// equivalent injected fault) must trip the cluster auditor.
#[cfg(feature = "audit")]
#[test]
#[should_panic(expected = "migration dirty pages not conserved")]
fn dirty_undercount_fault_is_caught_by_the_auditor() {
    let cfg = ClusterConfig {
        policy: Policy::VcrdAware,
        epochs: 8,
        epoch_ms: 50,
        ..ClusterConfig::default()
    };
    let mut cluster = scenario::consolidation_cluster(cfg, &ConsolidationSpec::default());
    cluster.audit_inject_dirty_undercount();
    cluster.run();
}
