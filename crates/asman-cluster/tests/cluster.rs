//! Cluster-level behavior tests: the consolidation experiment's shape,
//! conservation and determinism invariants, and a randomized fuzz
//! smoke over heterogeneous clusters.

use asman_cluster::{
    scenario::{self, ConsolidationSpec},
    ChurnPlan, Cluster, ClusterConfig, ClusterReport, HostHealth, Policy,
};
use asman_sim::FaultPlan;

fn run_policy(policy: Policy, spec: &ConsolidationSpec, epochs: u64) -> ClusterReport {
    let cfg = ClusterConfig {
        policy,
        epochs,
        epoch_ms: 50,
        cooldown_epochs: 3,
        ..ClusterConfig::default()
    };
    scenario::consolidation_cluster(cfg, spec).run()
}

#[test]
fn vcrd_aware_migrates_a_gang_and_recovers_wasted_spin() {
    let spec = ConsolidationSpec::default();
    let stat = run_policy(Policy::Static, &spec, 8);
    let aware = run_policy(Policy::VcrdAware, &spec, 8);

    assert!(stat.migrations.is_empty(), "static must never migrate");
    assert!(
        !aware.migrations.is_empty(),
        "vcrd-aware must move a gang off the consolidated host"
    );
    assert!(
        aware.migrations[0].name.starts_with("gang"),
        "vcrd-aware must move a gang, moved {}",
        aware.migrations[0].name
    );
    // The headline claim: telemetry-driven placement recovers wasted
    // spin that static placement cannot.
    assert!(
        aware.total_spin_cycles < stat.total_spin_cycles,
        "vcrd-aware spin {} must be below static spin {}",
        aware.total_spin_cycles,
        stat.total_spin_cycles
    );
}

#[test]
fn least_loaded_moves_by_size_not_by_spin() {
    let spec = ConsolidationSpec::default();
    let ll = run_policy(Policy::LeastLoaded, &spec, 8);
    assert!(
        !ll.migrations.is_empty(),
        "the consolidated host is the most loaded; least-loaded must react"
    );
    // Host 0 holds two 3-VCPU gangs and the 4-VCPU background VM; the
    // VCPU-count policy picks the biggest VM, which is the quiet one.
    assert_eq!(
        ll.migrations[0].name, "bg0",
        "least-loaded should move the big background VM, not a gang"
    );
}

#[test]
fn same_seed_reruns_are_bit_identical() {
    let spec = ConsolidationSpec::default();
    let a = run_policy(Policy::VcrdAware, &spec, 6);
    let b = run_policy(Policy::VcrdAware, &spec, 6);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "cluster runs must be deterministic for a fixed seed"
    );
    let c = run_policy(
        Policy::VcrdAware,
        &ConsolidationSpec { seed: 43, ..spec },
        6,
    );
    assert_ne!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&c).unwrap(),
        "a different seed must perturb the run"
    );
}

#[test]
fn migration_counters_and_placement_agree() {
    let spec = ConsolidationSpec::default();
    let cfg = ClusterConfig {
        policy: Policy::VcrdAware,
        epochs: 8,
        epoch_ms: 50,
        ..ClusterConfig::default()
    };
    let mut cluster = scenario::consolidation_cluster(cfg, &spec);
    let report = cluster.run();
    // VM conservation: every registered VM has exactly one live home.
    let total_vms: usize = report.host_rows.iter().map(|h| h.vms.len()).sum();
    assert_eq!(total_vms, report.vm_rows.len());
    assert_eq!(cluster.vm_count(), report.vm_rows.len());
    // Each VM's migration count matches the record log.
    for (id, row) in report.vm_rows.iter().enumerate() {
        let moves = report.migrations.iter().filter(|r| r.vm == id).count() as u64;
        assert_eq!(row.migrations, moves, "vm {} migration count", row.name);
        if let Some(last) = report.migrations.iter().rfind(|r| r.vm == id) {
            assert_eq!(
                row.host, last.to,
                "vm {} must live where it last moved",
                row.name
            );
        }
    }
    // Pause totals re-derive from the records.
    let pause: u64 = report.migrations.iter().map(|r| r.pause).sum();
    assert_eq!(report.total_pause_cycles, pause);
}

#[test]
fn fuzz_smoke_random_clusters_conserve_vms() {
    // Random host/VM/policy/seed tuples; short epochs. The assertion is
    // mostly "nothing panics" — the cluster auditor runs every epoch —
    // plus explicit VM-count conservation.
    let mut ran = 0;
    for seed in [7u64, 1337, 0xDEAD_BEEF] {
        let hosts = 2 + (seed % 3) as usize;
        let vms = 3 + (seed % 5) as usize;
        for policy in Policy::ALL {
            let cfg = ClusterConfig {
                policy,
                epochs: 3,
                epoch_ms: 20,
                cooldown_epochs: 1,
                ..ClusterConfig::default()
            };
            let mut cluster = Cluster::new(cfg, scenario::random_mix(hosts, vms, seed));
            let before = cluster.vm_count();
            let report = cluster.run();
            assert_eq!(cluster.vm_count(), before);
            let resident: usize = report.host_rows.iter().map(|h| h.vms.len()).sum();
            assert_eq!(resident, before, "placement lost or duplicated a VM");
            ran += 1;
        }
    }
    assert_eq!(ran, 9);
}

fn faulted_cfg(faults: &str) -> ClusterConfig {
    let faults = if faults.is_empty() {
        FaultPlan::empty()
    } else {
        FaultPlan::parse(faults).unwrap()
    };
    ClusterConfig {
        policy: Policy::VcrdAware,
        epochs: 8,
        epoch_ms: 50,
        faults,
        ..ClusterConfig::default()
    }
}

#[test]
fn aborted_migration_rolls_back_and_commits_on_retry() {
    let spec = ConsolidationSpec::default();
    let clean = scenario::consolidation_cluster(faulted_cfg(""), &spec).run();
    let mut cluster = scenario::consolidation_cluster(faulted_cfg("abort@0"), &spec);
    let report = cluster.run();
    let rec = report
        .recovery
        .as_ref()
        .expect("faulted run reports recovery");

    assert_eq!(
        rec.aborts.len(),
        1,
        "abort@0 fails exactly the first attempt"
    );
    let a = &rec.aborts[0];
    assert_eq!((a.epoch, a.attempt), (0, 1));
    assert_eq!(rec.retries_committed, 1, "the retry chain must commit");
    // The retry commits one epoch later, to the destination the
    // original decision picked; the abort charged half a pause.
    let m = &report.migrations[0];
    assert_eq!((m.vm, m.from, m.to), (a.vm, a.from, a.to));
    assert_eq!(m.epoch, a.epoch + 1);
    assert!(a.penalty > 0 && a.penalty < m.pause);
    // The clean twin moved the same VM at epoch 0 — the fault only
    // delayed it, it never redirected the balancer.
    assert_eq!(clean.migrations[0].vm, m.vm);
    // Rollback left every VM with exactly one live home.
    let resident: usize = report.host_rows.iter().map(|h| h.vms.len()).sum();
    assert_eq!(resident, report.vm_rows.len());
}

#[test]
fn exhausted_retry_chain_gives_up_and_bars_the_vm() {
    // Abort every epoch: attempt 1 at epoch 0, retry at 1, retry at 3
    // (backoff 1 then 2) all fail, and the cap of 3 ends the chain.
    let cfg = faulted_cfg("abort@0,abort@1,abort@2,abort@3,abort@4,abort@5,abort@6,abort@7");
    let mut cluster = scenario::consolidation_cluster(cfg, &ConsolidationSpec::default());
    let report = cluster.run();
    let rec = report.recovery.as_ref().unwrap();
    assert!(rec.gave_up >= 1, "the chain must exhaust its attempt cap");
    let aborted_vm = rec.aborts[0].vm;
    assert_eq!(
        rec.aborts.iter().filter(|a| a.vm == aborted_vm).count(),
        3,
        "retry cap bounds the attempts"
    );
    assert!(
        report.migrations.iter().all(|m| m.vm != aborted_vm),
        "a gave-up VM must never migrate again"
    );
    let resident: usize = report.host_rows.iter().map(|h| h.vms.len()).sum();
    assert_eq!(
        resident,
        report.vm_rows.len(),
        "every rollback conserved the VM"
    );
}

#[test]
fn crashed_host_is_evacuated_with_every_vm_conserved() {
    let spec = ConsolidationSpec::default();
    let mut cluster = scenario::consolidation_cluster(faulted_cfg("crash@4:h1"), &spec);
    let before = cluster.vm_count();
    let report = cluster.run();
    let rec = report.recovery.as_ref().unwrap();

    assert_eq!(cluster.host_health()[1], HostHealth::Crashed);
    assert!(
        !rec.evacuations.is_empty(),
        "host 1 held VMs; they must move"
    );
    assert!(rec.evacuations.iter().all(|e| e.from == 1));
    // Nothing lives on the crashed host, and nothing was lost: the
    // host rows of live hosts cover the whole registry.
    assert!(report.vm_rows.iter().all(|v| v.host != 1));
    assert!(report.host_rows[1].vms.is_empty());
    let resident: usize = report.host_rows.iter().map(|h| h.vms.len()).sum();
    assert_eq!(resident, before);
    // Evacuation dead time is accounted in the recovery block (it is
    // deliberately kept out of `total_pause_cycles`, which covers
    // balancer-chosen moves only).
    let evac_pause: u64 = rec.evacuations.iter().map(|e| e.pause).sum();
    assert_eq!(rec.total_evacuation_pause_cycles, evac_pause);
    assert!(evac_pause > 0);
}

#[test]
fn degraded_hosts_stop_admitting_but_keep_their_vms() {
    let spec = ConsolidationSpec::default();
    let mut cluster = scenario::consolidation_cluster(faulted_cfg("slow@1:h1:50"), &spec);
    let report = cluster.run();
    assert_eq!(cluster.host_health()[1], HostHealth::Degraded { pct: 50 });
    // Admission control: no migration after the derate targets host 1.
    assert!(
        report.migrations.iter().all(|m| m.epoch < 1 || m.to != 1),
        "a degraded host must not admit new VMs"
    );
    // Its resident VMs stay — degradation is not a crash.
    assert!(report.vm_rows.iter().any(|v| v.host == 1));
}

#[test]
fn faulted_reruns_are_bit_identical() {
    let spec = ConsolidationSpec::default();
    let run = |faults: &str| {
        serde_json::to_string(&scenario::consolidation_cluster(faulted_cfg(faults), &spec).run())
            .unwrap()
    };
    let plan = "abort@0,slow@2:h2:30,crash@4:h1";
    assert_eq!(run(plan), run(plan), "faulted runs must be deterministic");
    assert_ne!(run(plan), run("abort@0"), "the plan must matter");
}

/// Reverting the dirty-page accounting guard (here: arming the
/// equivalent injected fault) must trip the cluster auditor.
#[cfg(feature = "audit")]
#[test]
#[should_panic(expected = "migration dirty pages not conserved")]
fn dirty_undercount_fault_is_caught_by_the_auditor() {
    let cfg = ClusterConfig {
        policy: Policy::VcrdAware,
        epochs: 8,
        epoch_ms: 50,
        ..ClusterConfig::default()
    };
    let mut cluster = scenario::consolidation_cluster(cfg, &ConsolidationSpec::default());
    cluster.audit_inject_dirty_undercount();
    cluster.run();
}

/// A rollback that forgets to clear the source tombstone leaves the
/// registry pointing at an evacuated slot; the auditor must say so.
#[cfg(feature = "audit")]
#[test]
#[should_panic(expected = "points at a tombstone")]
fn sticky_tombstone_fault_is_caught_by_the_auditor() {
    let mut cluster =
        scenario::consolidation_cluster(faulted_cfg("abort@0"), &ConsolidationSpec::default());
    cluster.audit_inject_sticky_tombstone();
    cluster.run();
}

// ---------------------------------------------------------------------
// Churn: deterministic VM arrival/departure at epoch boundaries.
// ---------------------------------------------------------------------

fn churned_cfg(policy: Policy, plan: &str, epochs: u64) -> ClusterConfig {
    ClusterConfig {
        policy,
        epochs,
        epoch_ms: 50,
        churn: ChurnPlan::parse(plan).unwrap(),
        ..ClusterConfig::default()
    }
}

#[test]
fn churn_arrivals_and_departures_update_the_population() {
    let spec = ConsolidationSpec::default();
    let mut cluster = scenario::consolidation_cluster(
        churned_cfg(
            Policy::VcrdAware,
            "arrive@2:gang2,arrive@3:bg1:w100,depart@5:h0:v0",
            8,
        ),
        &spec,
    );
    let initial = cluster.vm_count();
    let report = cluster.run();
    let churn = report.churn.as_ref().expect("churned run reports churn");
    assert_eq!(churn.arrivals, 2);
    assert_eq!(churn.departures, 1);
    assert_eq!(churn.arrivals_rejected, 0);
    assert_eq!(churn.departures_skipped, 0);
    // Conservation: arrivals - departures == resident growth.
    assert_eq!(
        churn.resident_end as usize,
        initial + 2 - 1,
        "resident population must track arrivals minus departures"
    );
    // The registry keeps a frozen row for the departed VM and live rows
    // for the arrivals.
    assert_eq!(report.vm_rows.len(), initial + 2);
    assert!(report.vm_rows.iter().any(|r| r.name == "gang-c0"));
    assert!(report.vm_rows.iter().any(|r| r.name == "bg-c1"));
    // Exactly one registry row is absent from every host's resident
    // list: the departed VM. (Which VM `v0` picks depends on how the
    // balancer reshaped host 0 by epoch 5, so identify it by absence.)
    let resident_names: Vec<&String> = report.host_rows.iter().flat_map(|h| h.vms.iter()).collect();
    let departed: Vec<_> = report
        .vm_rows
        .iter()
        .filter(|r| !resident_names.contains(&&r.name))
        .collect();
    assert_eq!(departed.len(), 1, "exactly one VM departed");
    // Departed rows carry real (frozen) accounting, not zeros.
    assert!(departed[0].online_cycles > 0);
    // Host rows and registry agree on the resident set.
    let resident: usize = report.host_rows.iter().map(|h| h.vms.len()).sum();
    assert_eq!(resident, churn.resident_end as usize);
}

#[test]
fn departure_abandons_the_pending_migration_chain() {
    let spec = ConsolidationSpec::default();
    // First find which VM the balancer moves (and aborts) at epoch 0.
    let probe = scenario::consolidation_cluster(faulted_cfg("abort@0"), &spec).run();
    let victim = probe.recovery.as_ref().unwrap().aborts[0].vm;
    assert!(victim < 3, "the mover lives on host 0");
    // Now rerun, but depart the victim at epoch 1 — exactly when its
    // retry chain comes due. Churn runs before chain revalidation in
    // the barrier, so the departure must abandon the chain.
    let cfg = ClusterConfig {
        churn: ChurnPlan::parse(&format!("depart@1:h0:v{victim}")).unwrap(),
        ..faulted_cfg("abort@0")
    };
    let mut cluster = scenario::consolidation_cluster(cfg, &spec);
    let report = cluster.run();
    let rec = report.recovery.as_ref().unwrap();
    assert_eq!(rec.retries_abandoned, 1, "the chain must be abandoned");
    assert_eq!(rec.retries_committed, 0);
    assert!(
        report.migrations.iter().all(|m| m.vm != victim),
        "a departed VM must never commit a migration"
    );
    assert_eq!(report.churn.as_ref().unwrap().departures, 1);
}

#[test]
fn departing_an_empty_host_is_skipped_and_counted() {
    let spec = ConsolidationSpec::default();
    // Depart host 1's only VM at epoch 1, then ask host 1 for another
    // departure at epoch 2: nothing lives there, so it is skipped.
    // Static policy: no balancer migration can repopulate host 1
    // between the two departures.
    let mut cluster = scenario::consolidation_cluster(
        churned_cfg(Policy::Static, "depart@1:h1:v0,depart@2:h1:v0", 4),
        &spec,
    );
    let report = cluster.run();
    let churn = report.churn.as_ref().unwrap();
    assert_eq!(churn.departures, 1);
    assert_eq!(churn.departures_skipped, 1);
    assert!(report.host_rows[1].vms.is_empty());
}

#[test]
fn churned_runs_are_bit_identical_across_jobs_and_reruns() {
    let spec = ConsolidationSpec::default();
    let run = |jobs: usize| {
        let cfg = ClusterConfig {
            jobs,
            faults: FaultPlan::parse("abort@2,slow@3:h2:30").unwrap(),
            churn: ChurnPlan::generate(42, 25, 10, spec.hosts),
            policy: Policy::VcrdAware,
            epochs: 10,
            epoch_ms: 50,
            ..ClusterConfig::default()
        };
        let mut cluster = scenario::consolidation_cluster(cfg, &spec);
        cluster.enable_slot_reuse();
        serde_json::to_string(&cluster.run()).unwrap()
    };
    let a = run(1);
    assert_eq!(a, run(4), "churned runs must not depend on worker count");
    assert_eq!(a, run(1), "churned runs must be deterministic");
}

#[test]
fn slot_reuse_bounds_slot_growth_under_sustained_churn() {
    let spec = ConsolidationSpec::default();
    // Three arrive/depart cycles of the same 2-VCPU background shape.
    // Arrivals land on host 1 (least loaded, lowest index at ties); the
    // departure token picks them back off in id order.
    let plan =
        "arrive@1:bg2,depart@2:h1:v1,arrive@3:bg2,depart@4:h1:v1,arrive@5:bg2,depart@6:h1:v1";
    // Static policy keeps placement deterministic: every bg2 arrival
    // lands on host 1 (fewest resident VCPUs, lowest index at ties), so
    // the `v1` departure token always picks the arrival back off.
    let run = |reuse: bool| {
        let mut cluster =
            scenario::consolidation_cluster(churned_cfg(Policy::Static, plan, 8), &spec);
        let initial = cluster.occupancy().slots;
        if reuse {
            cluster.enable_slot_reuse();
        }
        cluster.run();
        (initial, cluster.occupancy())
    };
    let (initial, with_reuse) = run(true);
    let (_, without) = run(false);
    assert_eq!(
        with_reuse.slots,
        initial + 1,
        "reuse must recycle the tombstone instead of appending"
    );
    assert_eq!(
        without.slots,
        initial + 3,
        "without reuse every arrival appends"
    );
    assert!(with_reuse.tombstones <= 1);
    assert_eq!(
        with_reuse.resident, initial,
        "population returns to baseline"
    );
    // The registry itself grows with total arrivals by design — that is
    // bounded by the churn plan, not the horizon.
    assert_eq!(with_reuse.registry, initial + 3);
}
