//! Semaphore behaviour, including the §2.2 claim: blocking waits are not
//! hurt by virtualization the way spinning waits are.

use asman_guest::{Effects, GuestCosts, GuestKernel, GuestWork, NullObserver};
use asman_sim::Cycles;
use asman_workloads::{Op, ScriptProgram};

fn costs_no_timer() -> GuestCosts {
    GuestCosts {
        timer_hold: Cycles(0),
        ..GuestCosts::default()
    }
}

#[test]
fn available_token_is_cheap() {
    let producer = vec![Op::SemPost { id: 0 }, Op::Compute(Cycles(100))];
    let consumer = vec![Op::SemWait { id: 0 }, Op::Compute(Cycles(200))];
    let p = ScriptProgram::new("sem", vec![producer, consumer]);
    let mut g = GuestKernel::new(Box::new(p), 2, costs_no_timer(), Box::new(NullObserver));
    let mut e = Effects::default();
    // Producer posts first.
    let w0 = g.dispatch(0, Cycles(0), Cycles(0), &mut e);
    assert_eq!(
        w0,
        GuestWork::Timed {
            thread: 0,
            dur: Cycles(100)
        }
    );
    // Consumer finds the token: the down() path is a short kernel op.
    let w1 = g.dispatch(1, Cycles(1_000), Cycles(0), &mut e);
    assert_eq!(
        w1,
        GuestWork::Timed {
            thread: 1,
            dur: Cycles(600)
        }
    );
    assert_eq!(g.stats().sem_wait_hist.count(), 1);
    assert!(g.stats().sem_wait_hist.max() < Cycles(1 << 16));
}

#[test]
fn empty_semaphore_blocks_and_post_wakes() {
    let consumer = vec![Op::SemWait { id: 0 }, Op::Compute(Cycles(200))];
    let producer = vec![Op::Compute(Cycles(5_000)), Op::SemPost { id: 0 }];
    let p = ScriptProgram::new("sem", vec![consumer, producer]);
    let mut g = GuestKernel::new(Box::new(p), 2, costs_no_timer(), Box::new(NullObserver));
    let mut e = Effects::default();
    // Consumer blocks; its VCPU idles (no spinning!).
    assert_eq!(g.dispatch(0, Cycles(0), Cycles(0), &mut e), GuestWork::Idle);
    g.preempt(0, Cycles(0));
    assert_eq!(g.stats().spin_kernel_cycles, Cycles::ZERO);
    // Producer computes, posts: consumer's VCPU is woken.
    let w1 = g.dispatch(1, Cycles(100), Cycles(0), &mut e);
    assert_eq!(
        w1,
        GuestWork::Timed {
            thread: 1,
            dur: Cycles(5_000)
        }
    );
    e.clear();
    g.work_complete(1, Cycles(5_100), &mut e);
    assert!(e.wake_vcpus.contains(&0), "wake: {:?}", e.wake_vcpus);
    // The recorded wait spans block -> post.
    assert_eq!(g.stats().sem_wait_hist.count(), 1);
    let waited = g.stats().sem_wait_hist.max();
    assert!(waited >= Cycles(5_000), "wait {waited:?}");
    // Consumer resumes and finishes.
    let w0 = g.dispatch(0, Cycles(6_000), Cycles(0), &mut e);
    assert!(matches!(w0, GuestWork::Timed { thread: 0, .. }));
}

#[test]
fn fifo_order_among_waiters() {
    let waiter = vec![Op::SemWait { id: 0 }, Op::Compute(Cycles(100))];
    let poster = vec![
        Op::Compute(Cycles(1_000)),
        Op::SemPost { id: 0 },
        Op::SemPost { id: 0 },
    ];
    let p = ScriptProgram::new("sem", vec![waiter.clone(), waiter, poster]);
    let mut g = GuestKernel::new(Box::new(p), 3, costs_no_timer(), Box::new(NullObserver));
    let mut e = Effects::default();
    // Thread 0 blocks first, then thread 1.
    assert_eq!(g.dispatch(0, Cycles(0), Cycles(0), &mut e), GuestWork::Idle);
    g.preempt(0, Cycles(0));
    assert_eq!(
        g.dispatch(1, Cycles(10), Cycles(0), &mut e),
        GuestWork::Idle
    );
    g.preempt(1, Cycles(10));
    // Poster posts twice: both wake, thread 0 first.
    e.clear();
    let w2 = g.dispatch(2, Cycles(100), Cycles(0), &mut e);
    assert!(matches!(w2, GuestWork::Timed { thread: 2, .. }));
    g.work_complete(2, Cycles(1_100), &mut e);
    assert_eq!(e.wake_vcpus, vec![0, 1], "FIFO wake order");
}

/// The §2.2 asymmetry, end to end on a capped machine: spinlock waits
/// inflate by orders of magnitude at a 22.2% online rate; semaphore waits
/// barely move — because blocked VCPUs are descheduled rather than
/// burning their budget.
#[test]
fn semaphores_survive_low_online_rates() {
    use asman_hypervisor::{CapMode, Machine, MachineConfig, VmSpec};
    let clk = asman_sim::Clock::default();
    // Ping-pong pairs: thread 2k posts then computes; thread 2k+1 waits.
    // Tokens are always produced ahead of consumption within a pair, so
    // waits stay short *if the primitive itself is virtualization-safe*.
    let mk = |i: usize| -> Vec<Op> {
        if i.is_multiple_of(2) {
            vec![Op::SemPost { id: (i / 2) as u32 }, Op::Compute(clk.us(500))]
        } else {
            vec![Op::Compute(clk.us(480)), Op::SemWait { id: (i / 2) as u32 }]
        }
    };
    let p = ScriptProgram::new("pairs", (0..4).map(mk).collect::<Vec<_>>()).looping();
    let mut m = Machine::new(
        MachineConfig::default(),
        vec![
            VmSpec::new(
                "dom0",
                8,
                Box::new(ScriptProgram::homogeneous("idle", 8, vec![])),
            ),
            // Timer injection off so the measurement isolates the
            // semaphore path (kernel-entry convoys are a separate,
            // spinlock-side phenomenon).
            VmSpec::new("guest", 4, Box::new(p))
                .weight(32)
                .cap(CapMode::NonWorkConserving)
                .costs(costs_no_timer()),
        ],
    );
    m.run_until(clk.secs(10));
    let s = m.vm_kernel(1).stats();
    assert!(
        s.sem_wait_hist.count() > 1_000,
        "semaphore traffic expected"
    );
    // The paper: "the waiting times of all semaphores are less than 2^16
    // CPU cycles, even when the VCPU online rate is 22.2%". With tokens
    // posted ahead, the vast majority of waits are the bare down() path.
    let frac_long = s.sem_wait_hist.frac_at_least_pow2(16);
    assert!(
        frac_long < 0.05,
        "semaphore waits must not inflate: {:.4} above 2^16",
        frac_long
    );
    // The residual tail is genuine blocking across a producer's parked
    // gap — which, unlike a spinlock wait, costs the consumer no CPU:
    // the budget all went to useful work.
    let useful = s.useful_cycles.as_u64() as f64;
    let spin = s.spin_kernel_cycles.as_u64() as f64;
    assert!(
        spin < useful * 0.05,
        "blocking sync must not burn budget: spin {spin} vs useful {useful}"
    );
}
