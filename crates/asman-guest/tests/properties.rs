//! Property-based tests of the guest kernel: mutual exclusion,
//! conservation, and progress under randomized executor interleavings.

use asman_guest::{Effects, GuestCosts, GuestKernel, GuestWork, NullObserver};
use asman_sim::{Cycles, SimRng};
use asman_workloads::{Op, ScriptProgram};
use proptest::prelude::*;

/// A mini executor with a randomized interleaving policy: every step it
/// picks an online VCPU to advance, or toggles a VCPU on/offline. Checks
/// kernel invariants throughout.
fn chaos_run(
    script: Vec<Op>,
    threads: usize,
    seed: u64,
    steps: usize,
    costs: GuestCosts,
) -> GuestKernel {
    let p = ScriptProgram::homogeneous("fuzz", threads, script);
    let mut g = GuestKernel::new(Box::new(p), threads, costs, Box::new(NullObserver));
    let mut rng = SimRng::new(seed);
    let mut e = Effects::default();
    let mut now = Cycles(0);
    let mut online = vec![false; threads];
    let mut work: Vec<Option<Cycles>> = vec![None; threads]; // completion deadline
    for _ in 0..steps {
        if g.is_finished() {
            break;
        }
        // Consume effects: refreshes re-arm work for online VCPUs.
        let refresh: Vec<usize> = e.refresh_vcpus.drain(..).collect();
        for v in refresh {
            if online[v] {
                work[v] = match g.dispatch_work(v, now, &mut e) {
                    GuestWork::Timed { dur, .. } => Some(now + dur),
                    GuestWork::Spin { .. } => None,
                    GuestWork::Idle => {
                        online[v] = false;
                        g.preempt(v, now);
                        None
                    }
                };
            }
        }
        e.wake_vcpus.clear();
        let timers = std::mem::take(&mut e.sleep_timers);
        for (t, at) in timers {
            if at <= now {
                g.sleep_timer(t, now, &mut e);
            } else {
                e.sleep_timers.push((t, at));
            }
        }
        now += Cycles(rng.range(1_000, 400_000));
        let v = rng.index(threads);
        if online[v] {
            match rng.below(4) {
                0 => {
                    // Preempt it.
                    g.preempt(v, now);
                    online[v] = false;
                    work[v] = None;
                }
                _ => {
                    // Advance its work if due.
                    if let Some(deadline) = work[v] {
                        if deadline <= now {
                            work[v] = match g.work_complete(v, now, &mut e) {
                                GuestWork::Timed { dur, .. } => Some(now + dur),
                                GuestWork::Spin { .. } => None,
                                GuestWork::Idle => {
                                    g.preempt(v, now);
                                    online[v] = false;
                                    None
                                }
                            };
                        }
                    }
                }
            }
        } else if g.vcpu_runnable(v) {
            match g.dispatch(v, now, Cycles(0), &mut e) {
                GuestWork::Timed { dur, .. } => {
                    online[v] = true;
                    work[v] = Some(now + dur);
                }
                GuestWork::Spin { .. } => {
                    online[v] = true;
                    work[v] = None;
                }
                GuestWork::Idle => {
                    // Raced a block: hand the CPU back.
                    g.preempt(v, now);
                    online[v] = false;
                    work[v] = None;
                }
            }
        }
        // Blocked VCPUs redispatch once vcpu_runnable() reports work
        // (their wakes surface through the kernel's thread states).
    }
    g
}

fn arb_safe_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..500_000).prop_map(|c| Op::Compute(Cycles(c))),
        (0u32..2, 200u64..40_000).prop_map(|(l, h)| Op::CriticalSection {
            lock: l,
            hold: Cycles(h),
        }),
        Just(Op::Barrier { id: 0 }),
        (1u64..300_000).prop_map(|c| Op::Sleep(Cycles(c))),
        Just(Op::Mark(asman_workloads::Mark::Transaction)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under arbitrary preemption patterns the kernel never panics, its
    /// cycle accounting stays conserved, and every recorded lock wait is
    /// non-negative and finite.
    #[test]
    fn chaos_interleavings_keep_invariants(
        script in proptest::collection::vec(arb_safe_op(), 1..16),
        threads in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let g = chaos_run(script, threads, seed, 4_000, GuestCosts::default());
        let s = g.stats();
        // Histogram totals match the acquisition counter.
        prop_assert_eq!(s.wait_hist.count(), s.lock_acquisitions);
        // Spin + useful are finite and the trace respects its floor.
        for (_, sample) in s.wait_trace.samples() {
            prop_assert!(sample.wait >= s.trace_floor);
        }
        // Transactions only counted when marks existed in the script.
        prop_assert!(s.barriers_completed as usize <= 4_000);
    }

    /// A barrier-only script either finishes or every thread is parked at
    /// the same barrier generation (no lost wakeups).
    #[test]
    fn barriers_never_lose_threads(
        barriers in 1usize..6,
        threads in 2usize..4,
        seed in 0u64..10_000,
    ) {
        let script: Vec<Op> = (0..barriers).map(|_| Op::Barrier { id: 0 }).collect();
        // Timer injection off: this test isolates barrier integrity from
        // kernel-entry convoys (which make progress under the chaotic
        // executor arbitrarily slow without being a liveness bug).
        let costs = GuestCosts {
            timer_hold: Cycles(0),
            ..GuestCosts::default()
        };
        let g = chaos_run(script, threads, seed, 20_000, costs);
        prop_assert!(
            g.is_finished(),
            "barrier-only script wedged: {} of expected {} generations",
            g.stats().barriers_completed,
            barriers
        );
        prop_assert_eq!(g.stats().barriers_completed as usize, barriers);
    }
}
