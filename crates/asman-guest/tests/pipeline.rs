//! Integration tests of the pipeline (flag-wait) machinery: WaitPeer /
//! Advance with spinning, blocking and waking, driven through the guest
//! kernel's public API with a hand-rolled mini-executor.

use asman_guest::{Effects, GuestCosts, GuestKernel, GuestWork, NullObserver};
use asman_sim::{Clock, Cycles};
use asman_workloads::{Op, ScriptProgram};

fn costs_no_timer() -> GuestCosts {
    GuestCosts {
        timer_hold: Cycles(0),
        ..GuestCosts::default()
    }
}

/// Drive a single VCPU until it goes idle or `max_steps` timed segments
/// have completed; returns the time at which it idled.
fn drive(g: &mut GuestKernel, v: usize, mut now: Cycles, max_steps: usize) -> (Cycles, GuestWork) {
    let mut e = Effects::default();
    let mut w = g.dispatch(v, now, Cycles(0), &mut e);
    for _ in 0..max_steps {
        match w {
            GuestWork::Timed { dur, .. } => {
                now += dur;
                w = g.work_complete(v, now, &mut e);
            }
            _ => break,
        }
    }
    (now, w)
}

#[test]
fn waitpeer_satisfied_in_advance_is_free() {
    // Producer advances long before the consumer waits: the consumer
    // must pass straight through.
    let producer = vec![Op::Advance, Op::Compute(Cycles(1_000))];
    let consumer = vec![
        Op::WaitPeer { peer: 0, target: 1 },
        Op::Compute(Cycles(500)),
    ];
    let p = ScriptProgram::new("pipe", vec![producer, consumer]);
    let mut g = GuestKernel::new(Box::new(p), 2, costs_no_timer(), Box::new(NullObserver));
    // Run producer to completion first.
    let (_, w) = drive(&mut g, 0, Cycles(0), 10);
    assert_eq!(w, GuestWork::Idle);
    // Consumer: sees the flag set, no spinning.
    let mut e = Effects::default();
    let w = g.dispatch(1, Cycles(10_000), Cycles(0), &mut e);
    assert_eq!(
        w,
        GuestWork::Timed {
            thread: 1,
            dur: Cycles(500)
        },
        "satisfied WaitPeer must cost nothing"
    );
    assert_eq!(g.stats().spin_pipeline_cycles, Cycles::ZERO);
}

#[test]
fn waitpeer_spins_until_advance_releases() {
    let producer = vec![Op::Compute(Cycles(50_000)), Op::Advance];
    let consumer = vec![
        Op::WaitPeer { peer: 0, target: 1 },
        Op::Compute(Cycles(500)),
    ];
    let p = ScriptProgram::new("pipe", vec![producer, consumer]);
    let mut g = GuestKernel::new(Box::new(p), 2, costs_no_timer(), Box::new(NullObserver));
    let mut e = Effects::default();
    // Consumer starts first: enters the pipeline spin (a timed segment of
    // the full spin budget).
    let w1 = g.dispatch(1, Cycles(0), Cycles(0), &mut e);
    let GuestWork::Timed { thread: 1, dur } = w1 else {
        panic!("expected spin segment, got {w1:?}");
    };
    assert_eq!(dur, GuestCosts::default().pipeline_spin_budget);
    // Producer runs its 50k compute and advances.
    let w0 = g.dispatch(0, Cycles(100), Cycles(0), &mut e);
    assert_eq!(
        w0,
        GuestWork::Timed {
            thread: 0,
            dur: Cycles(50_000)
        }
    );
    e.clear();
    g.work_complete(0, Cycles(50_100), &mut e);
    // The advance released the spinning consumer: its VCPU is refreshed.
    assert!(
        e.refresh_vcpus.contains(&1),
        "refresh: {:?}",
        e.refresh_vcpus
    );
    // The consumer burned ~50k cycles of pipeline spin.
    let spun = g.stats().spin_pipeline_cycles;
    assert!(
        (Cycles(49_000)..=Cycles(51_000)).contains(&spun),
        "pipeline spin {spun:?}"
    );
}

#[test]
fn waitpeer_blocks_after_budget_and_wakes_on_advance() {
    let clk = Clock::default();
    let budget = clk.us(50);
    let costs = GuestCosts {
        pipeline_spin_budget: budget,
        timer_hold: Cycles(0),
        ..GuestCosts::default()
    };
    let producer = vec![Op::Sleep(clk.ms(50)), Op::Advance, Op::Compute(Cycles(100))];
    let consumer = vec![
        Op::WaitPeer { peer: 0, target: 1 },
        Op::Compute(Cycles(500)),
    ];
    let p = ScriptProgram::new("pipe", vec![producer, consumer]);
    let mut g = GuestKernel::new(Box::new(p), 2, costs, Box::new(NullObserver));
    let mut e = Effects::default();
    // Producer sleeps immediately; its VCPU idles.
    assert_eq!(g.dispatch(0, Cycles(0), Cycles(0), &mut e), GuestWork::Idle);
    g.preempt(0, Cycles(0));
    // Consumer spins through its budget, then futex-enqueues and blocks.
    let (_, w) = drive(&mut g, 1, Cycles(0), 10);
    assert_eq!(w, GuestWork::Idle, "consumer must block after its budget");
    g.preempt(1, g.stats().spin_pipeline_cycles + Cycles(10_000));
    // Wake the producer's sleep; it advances and must wake the consumer.
    e.clear();
    let wake_at = clk.ms(50);
    g.sleep_timer(0, wake_at, &mut e);
    assert_eq!(e.wake_vcpus, vec![0]);
    e.clear();
    let (_, w0) = {
        let w = g.dispatch(0, wake_at, Cycles(0), &mut e);
        let mut now = wake_at;
        let mut w = w;
        for _ in 0..10 {
            match w {
                GuestWork::Timed { dur, .. } => {
                    now += dur;
                    w = g.work_complete(0, now, &mut e);
                }
                _ => break,
            }
        }
        (now, w)
    };
    assert_eq!(w0, GuestWork::Idle, "producer finishes");
    assert!(
        e.wake_vcpus.contains(&1),
        "the advance must wake the blocked consumer: {:?}",
        e.wake_vcpus
    );
}

#[test]
fn bounded_slack_pipeline_never_deadlocks() {
    // Producer-consumer with anti-overrun waits in both directions (the
    // LU pattern): a naive executor processing one VCPU at a time must
    // still finish.
    let t0 = vec![
        Op::Compute(Cycles(1_000)),
        Op::Advance,
        Op::WaitPeer { peer: 1, target: 1 },
        Op::Compute(Cycles(1_000)),
        Op::Advance,
        Op::WaitPeer { peer: 1, target: 2 },
    ];
    let t1 = vec![
        Op::WaitPeer { peer: 0, target: 1 },
        Op::Compute(Cycles(1_000)),
        Op::Advance,
        Op::WaitPeer { peer: 0, target: 2 },
        Op::Compute(Cycles(1_000)),
        Op::Advance,
    ];
    let p = ScriptProgram::new("slack", vec![t0, t1]);
    let mut g = GuestKernel::new(Box::new(p), 2, costs_no_timer(), Box::new(NullObserver));
    let mut e = Effects::default();
    let mut now = Cycles(0);
    let mut online = [false; 2];
    let mut pending: Vec<(usize, Cycles)> = Vec::new();
    // Simple round-robin executor with both VCPUs online.
    for (v, is_online) in online.iter_mut().enumerate() {
        match g.dispatch(v, now, Cycles(0), &mut e) {
            GuestWork::Timed { dur, .. } => pending.push((v, now + dur)),
            GuestWork::Idle => {}
            GuestWork::Spin { .. } => {}
        }
        *is_online = true;
    }
    for _ in 0..200 {
        if g.is_finished() {
            break;
        }
        // Apply refreshes (lock grants / flag releases).
        let refresh: Vec<usize> = e.refresh_vcpus.drain(..).collect();
        for v in refresh {
            pending.retain(|&(pv, _)| pv != v);
            if let GuestWork::Timed { dur, .. } = g.dispatch_work(v, now, &mut e) {
                pending.push((v, now + dur));
            }
        }
        let wakes: Vec<usize> = e.wake_vcpus.drain(..).collect();
        for v in wakes {
            if !online[v] {
                online[v] = true;
                if let GuestWork::Timed { dur, .. } = g.dispatch(v, now, Cycles(0), &mut e) {
                    pending.push((v, now + dur));
                }
            }
        }
        // Fire the earliest pending completion.
        pending.sort_by_key(|&(_, t)| t);
        let Some((v, t)) = pending.first().copied() else {
            // Both idle/spinning with nothing pending — nudge time.
            now += Cycles(1_000);
            continue;
        };
        pending.remove(0);
        now = t;
        match g.work_complete(v, now, &mut e) {
            GuestWork::Timed { dur, .. } => pending.push((v, now + dur)),
            GuestWork::Idle => {
                online[v] = false;
                g.preempt(v, now);
                // dispatch() requires offline; mark and let a wake bring
                // it back.
            }
            GuestWork::Spin { .. } => {}
        }
    }
    assert!(g.is_finished(), "bounded-slack pipeline must complete");
    assert!(g.stats().finished_at.is_some());
}

#[test]
fn timer_injection_contends_the_xtime_lock() {
    // Two compute-bound threads on two VCPUs with the default 250 µs
    // kernel-entry cadence: both hammer the shared xtime lock, so wait
    // recordings accumulate and occasionally contend.
    let clk = Clock::default();
    let p = ScriptProgram::homogeneous("busy", 2, vec![Op::Compute(clk.ms(50))]);
    let mut g = GuestKernel::new(
        Box::new(p),
        2,
        GuestCosts::default(),
        Box::new(NullObserver),
    );
    let mut e = Effects::default();
    let mut now = [Cycles(0), Cycles(500)];
    let mut w = [
        g.dispatch(0, now[0], Cycles(0), &mut e),
        g.dispatch(1, now[1], Cycles(0), &mut e),
    ];
    for _ in 0..5_000 {
        // Apply refreshes first: a spinning VCPU whose lock was granted
        // has new timed work.
        let refresh: Vec<usize> = e.refresh_vcpus.drain(..).collect();
        for v in refresh {
            w[v] = g.dispatch_work(v, now[v].max(now[1 - v]), &mut e);
            now[v] = now[v].max(now[1 - v]);
        }
        for v in 0..2 {
            if let GuestWork::Timed { dur, .. } = w[v] {
                now[v] += dur;
                w[v] = g.work_complete(v, now[v], &mut e);
            }
        }
        if g.is_finished() {
            break;
        }
    }
    assert!(g.is_finished());
    let ticks = g.stats().timer_ticks;
    // 2 threads × 50 ms / 250 µs = ~400 entries.
    assert!(
        (300..=450).contains(&ticks),
        "expected ~400 kernel entries, got {ticks}"
    );
    assert!(g.stats().lock_acquisitions >= ticks);
}

#[test]
fn warmup_penalty_is_charged_and_accounted() {
    let p = ScriptProgram::new("w", vec![vec![Op::Compute(Cycles(10_000))]]);
    let mut g = GuestKernel::new(Box::new(p), 1, costs_no_timer(), Box::new(NullObserver));
    let mut e = Effects::default();
    let w = g.dispatch(0, Cycles(0), Cycles(2_000), &mut e);
    assert_eq!(
        w,
        GuestWork::Timed {
            thread: 0,
            dur: Cycles(12_000)
        },
        "warm-up must extend the first segment"
    );
    let w2 = g.work_complete(0, Cycles(12_000), &mut e);
    assert_eq!(w2, GuestWork::Idle);
    assert_eq!(g.stats().warmup_cycles, Cycles(2_000));
    assert!(g.is_finished());
}
