//! Cost model for guest-kernel operations.
//!
//! The constants correspond to well-known magnitudes on mid-2000s x86
//! (the paper's Xeon X5410): an uncontended spinlock acquisition costs on
//! the order of 10² cycles, a futex enqueue/wake around 10³, and libgomp's
//! default barrier spin budget is on the order of 10⁵ cycles before a
//! thread gives up and blocks. Every value is configurable so ablation
//! benches can probe sensitivity.

use asman_sim::{Clock, Cycles};
use serde::{Deserialize, Serialize};

/// Cycle costs of guest-kernel operations.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GuestCosts {
    /// Wait recorded for an uncontended spinlock acquisition (atomic RMW +
    /// cacheline transfer).
    pub lock_uncontended: Cycles,
    /// Extra wait added on a contended handoff (cacheline ping).
    pub lock_handoff: Cycles,
    /// Work done under the barrier lock when a thread arrives
    /// (increment/check of the arrival count).
    pub barrier_enter: Cycles,
    /// Base work done by the last arriver to release a barrier.
    pub barrier_wake_base: Cycles,
    /// Additional wake work per blocked waiter (futex wake walk).
    pub barrier_wake_per_waiter: Cycles,
    /// Scheduling latency charged to a thread woken from a futex wait
    /// before it resumes useful work.
    pub futex_wake_latency: Cycles,
    /// Work done under the barrier lock to enqueue on the futex after the
    /// spin budget is exhausted.
    pub futex_enqueue: Cycles,
    /// User-space spin budget at a barrier before blocking (libgomp-style
    /// hybrid waiting).
    pub barrier_spin_budget: Cycles,
    /// Cost for a spinning/blocked thread to proceed once its barrier
    /// completes.
    pub barrier_exit: Cycles,
    /// Guest scheduler timeslice when several threads share a VCPU.
    pub guest_quantum: Cycles,
    /// User-space spin budget on a pipeline (producer–consumer flag)
    /// wait before blocking. OpenMP runtimes spin these waits far longer
    /// than barrier waits because handoffs are normally immediate.
    pub pipeline_spin_budget: Cycles,
    /// Mean interval of *kernel entries* per online VCPU: the aggregate
    /// of timer interrupts (HZ=1000), syscalls, page faults and IRQ work.
    /// Each entry takes a short critical section on a shared kernel lock.
    pub timer_period: Cycles,
    /// Time each kernel entry holds the shared (`xtime`-style) lock. The
    /// defaults give ~2.4% of guest time inside kernel critical sections,
    /// typical for HZ=1000-era kernels — and exactly the exposure that
    /// turns VCPU preemption into lock-holder-preemption convoys.
    pub timer_hold: Cycles,
}

impl Default for GuestCosts {
    fn default() -> Self {
        let clk = Clock::default();
        GuestCosts {
            lock_uncontended: Cycles(120),
            lock_handoff: Cycles(240),
            barrier_enter: Cycles(800),
            barrier_wake_base: Cycles(1_500),
            barrier_wake_per_waiter: Cycles(600),
            futex_wake_latency: clk.us(6),
            futex_enqueue: Cycles(900),
            barrier_spin_budget: clk.us(1_000),
            barrier_exit: Cycles(300),
            guest_quantum: clk.ms(1),
            pipeline_spin_budget: clk.ms(30),
            timer_period: clk.us(250),
            timer_hold: clk.us(6),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_have_sane_magnitudes() {
        let c = GuestCosts::default();
        // Uncontended acquisitions must be far below the paper's 2^10
        // "interesting wait" floor, let alone the 2^20 over-threshold.
        assert!(c.lock_uncontended.as_u64() < (1 << 10));
        assert!((c.lock_uncontended + c.lock_handoff).as_u64() < (1 << 10));
        // The spin budget must sit below a 10 ms scheduling slot,
        // otherwise barrier waiters would never block.
        let slot = Clock::default().ms(10);
        assert!(c.barrier_spin_budget < slot);
        // And the quantum must be positive and below the slot.
        assert!(c.guest_quantum > Cycles::ZERO && c.guest_quantum < slot);
        // Timer: sub-slot period, hold far below the over-threshold bound.
        assert!(c.timer_period < slot);
        assert!(c.timer_hold.as_u64() < (1 << 15));
        // The pipeline spin budget is deliberately large — effectively
        // active waiting, as 2011-era OpenMP runtimes spun flag waits —
        // but still bounded (a few scheduling slots) so a deeply stalled
        // thread eventually blocks instead of livelocking.
        assert!(c.pipeline_spin_budget > c.barrier_spin_budget);
        assert!(c.pipeline_spin_budget <= slot * 4);
        // Kernel entries must be frequent relative to the slot, with a
        // lock-held fraction in the low percent range.
        let held_frac = c.timer_hold.as_u64() as f64 / c.timer_period.as_u64() as f64;
        assert!((0.005..0.10).contains(&held_frac), "held_frac {held_frac}");
    }
}
