//! Guest operating system model.
//!
//! A [`GuestKernel`] simulates the kernel of one virtual machine: its
//! threads, the kernel spinlocks they contend on, OpenMP-style barriers
//! (implemented the way libgomp does — brief kernel bookkeeping under a
//! spinlock, bounded user-space spinning, then a blocking futex wait), and
//! the per-VM **Monitoring Module** instrumentation that the paper inserts
//! into the Linux spinlock path.
//!
//! The kernel is driven by the hypervisor model (crate
//! `asman-hypervisor`), which tells it when each VCPU gains and loses a
//! physical CPU. The crucial phenomenon reproduced here is **lock-holder
//! preemption** (§2.2 of the paper): a kernel spinlock is held across a
//! VCPU preemption, so other VCPUs spin for entire scheduling slices —
//! waits of 2²⁴–2²⁸ CPU cycles instead of the usual < 2¹⁵ — and those
//! *over-threshold spinlocks* are exactly what the Monitoring Module
//! detects and reports to the adaptive scheduler via hypercall.
//!
//! Interaction contract:
//!
//! * the hypervisor calls [`GuestKernel::dispatch`] / [`GuestKernel::preempt`]
//!   when a VCPU goes online/offline, and [`GuestKernel::work_complete`]
//!   when a timed segment finishes;
//! * the kernel returns a [`GuestWork`] describing what the VCPU executes
//!   next, and accumulates side effects ([`Effects`]) — VCPUs to wake,
//!   timers to arm, online VCPUs whose work changed (e.g. a spinning VCPU
//!   was granted a lock), and VCRD updates requested by the monitor.

#![warn(missing_docs)]

pub mod costs;
pub mod kernel;
pub mod monitor;
pub mod stats;
pub mod thread;

pub use costs::GuestCosts;
pub use kernel::{Effects, GuestKernel, GuestWork};
pub use monitor::{MonitorConfig, NullObserver, SpinObserver, Vcrd, VcrdUpdate};
pub use stats::GuestStats;
pub use thread::{AfterWork, TState};
