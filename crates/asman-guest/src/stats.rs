//! Per-VM measurement state.
//!
//! Mirrors the instrumentation of the paper's evaluation: spinlock
//! waiting-time histograms and traces (Figures 1(b), 2, 8), throughput
//! counters (SPECjbb bops), per-thread round completions (SPEC-rate and
//! multi-VM batch rounds, §5.3), and cycle accounting that separates
//! useful computation from synchronization waste.

use asman_sim::{Cycles, Log2Histogram, QuantileHist, TraceBuffer};
use serde::{Deserialize, Serialize};

/// A single spinlock wait observation (for the scatter plots).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WaitSample {
    /// Waiting time in cycles.
    pub wait: Cycles,
}

/// Measurement state of one guest kernel.
#[derive(Clone, Debug)]
pub struct GuestStats {
    /// Histogram of all kernel spinlock waiting times.
    pub wait_hist: Log2Histogram,
    /// Histogram of semaphore waiting times (§2.2 measures these too and
    /// finds them unaffected by virtualization).
    pub sem_wait_hist: Log2Histogram,
    /// Trace of individual waits above the collection floor.
    pub wait_trace: TraceBuffer<WaitSample>,
    /// Waits are only traced if at least this large (the paper collects
    /// spinlocks with waits > 2^10 cycles).
    pub trace_floor: Cycles,
    /// Cycles burned busy-waiting on kernel spinlocks.
    pub spin_kernel_cycles: Cycles,
    /// Cycles burned in user-space barrier spinning.
    pub spin_barrier_cycles: Cycles,
    /// Cycles burned in user-space pipeline (flag) spinning.
    pub spin_pipeline_cycles: Cycles,
    /// Guest timer interrupts executed.
    pub timer_ticks: u64,
    /// Cycles of progress lost to cache warm-up after cold dispatches.
    pub warmup_cycles: Cycles,
    /// Cycles of useful work (compute segments and lock-held work).
    pub useful_cycles: Cycles,
    /// Completed transactions (`Mark::Transaction` count).
    pub transactions: u64,
    /// Per-thread completion times of each round, capped in length.
    pub round_times: Vec<Vec<Cycles>>,
    /// Completed barrier generations.
    pub barriers_completed: u64,
    /// Total kernel spinlock acquisitions.
    pub lock_acquisitions: u64,
    /// Number of times a lock holder was preempted while holding (the
    /// direct lock-holder-preemption event count).
    pub holder_preemptions: u64,
    /// Spin-episode duration distribution: every contiguous busy-wait
    /// charge segment (kernel spinlocks, barrier spins, pipeline-flag
    /// spins), in cycles. Segments are bounded by guest scheduling
    /// events, so preemption-inflated episodes appear as many short
    /// segments plus the telltale long tail. `None` (and zero cost)
    /// unless spin-episode telemetry is enabled.
    pub spin_episodes: Option<QuantileHist>,
    /// Time the VM finished its (finite) program, if it has.
    pub finished_at: Option<Cycles>,
}

/// Maximum per-thread round completion timestamps retained.
const MAX_ROUNDS_RECORDED: usize = 256;

impl GuestStats {
    /// Fresh stats for a VM with `threads` guest threads.
    pub fn new(threads: usize) -> Self {
        GuestStats {
            wait_hist: Log2Histogram::new(),
            sem_wait_hist: Log2Histogram::new(),
            wait_trace: TraceBuffer::new(200_000),
            trace_floor: Cycles::pow2(10),
            spin_kernel_cycles: Cycles::ZERO,
            spin_barrier_cycles: Cycles::ZERO,
            spin_pipeline_cycles: Cycles::ZERO,
            timer_ticks: 0,
            warmup_cycles: Cycles::ZERO,
            useful_cycles: Cycles::ZERO,
            transactions: 0,
            round_times: vec![Vec::new(); threads],
            barriers_completed: 0,
            lock_acquisitions: 0,
            holder_preemptions: 0,
            spin_episodes: None,
            finished_at: None,
        }
    }

    /// Spin-episode duration distribution, if telemetry is enabled.
    pub fn spin_episodes(&self) -> Option<&QuantileHist> {
        self.spin_episodes.as_ref()
    }

    /// Record one contiguous spin segment of `dur` cycles. No-op (one
    /// branch) unless spin-episode telemetry is enabled.
    #[inline]
    pub fn note_spin(&mut self, dur: Cycles) {
        if let Some(h) = self.spin_episodes.as_mut() {
            h.observe(dur.as_u64() as f64);
        }
    }

    /// Record a spinlock wait observation at time `now`.
    pub fn record_wait(&mut self, now: Cycles, wait: Cycles) {
        self.lock_acquisitions += 1;
        self.wait_hist.record(wait);
        if wait >= self.trace_floor {
            self.wait_trace.record(now, WaitSample { wait });
        }
    }

    /// Record a round completion on `thread` at `now`.
    pub fn record_round(&mut self, thread: usize, now: Cycles) {
        let v = &mut self.round_times[thread];
        if v.len() < MAX_ROUNDS_RECORDED {
            v.push(now);
        }
    }

    /// Completion time of VM-level round `r` (0-based): the instant the
    /// slowest thread finished its `r`-th round, if all threads have.
    pub fn vm_round_time(&self, r: usize) -> Option<Cycles> {
        self.round_times
            .iter()
            .map(|v| v.get(r).copied())
            .collect::<Option<Vec<_>>>()
            .map(|ts| ts.into_iter().max().unwrap_or(Cycles::ZERO))
    }

    /// Number of VM-level rounds fully completed.
    pub fn vm_rounds_completed(&self) -> usize {
        self.round_times.iter().map(|v| v.len()).min().unwrap_or(0)
    }

    /// Mean run time of the first `n` VM-level rounds, in cycles, if that
    /// many completed (round k's run time = t_k − t_{k−1}).
    pub fn mean_round_cycles(&self, n: usize) -> Option<f64> {
        if n == 0 || self.vm_rounds_completed() < n {
            return None;
        }
        let mut prev = Cycles::ZERO;
        let mut sum = 0u128;
        for r in 0..n {
            let t = self.vm_round_time(r)?;
            sum += (t - prev).as_u64() as u128;
            prev = t;
        }
        Some(sum as f64 / n as f64)
    }

    /// Count of over-threshold waits (`>= 2^delta`).
    pub fn over_threshold_count(&self, delta: u32) -> u64 {
        self.wait_hist.count_at_least_pow2(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_recording_traces_only_above_floor() {
        let mut s = GuestStats::new(1);
        s.record_wait(Cycles(10), Cycles(100)); // below 2^10
        s.record_wait(Cycles(20), Cycles(5_000)); // above
        assert_eq!(s.lock_acquisitions, 2);
        assert_eq!(s.wait_hist.count(), 2);
        assert_eq!(s.wait_trace.samples().len(), 1);
        assert_eq!(s.wait_trace.samples()[0].1.wait, Cycles(5_000));
    }

    #[test]
    fn vm_round_is_max_over_threads() {
        let mut s = GuestStats::new(2);
        s.record_round(0, Cycles(100));
        assert_eq!(s.vm_round_time(0), None, "thread 1 not finished yet");
        s.record_round(1, Cycles(150));
        assert_eq!(s.vm_round_time(0), Some(Cycles(150)));
        assert_eq!(s.vm_rounds_completed(), 1);
    }

    #[test]
    fn mean_round_cycles_uses_deltas() {
        let mut s = GuestStats::new(1);
        s.record_round(0, Cycles(100));
        s.record_round(0, Cycles(300));
        s.record_round(0, Cycles(350));
        assert_eq!(s.mean_round_cycles(4), None);
        let m = s.mean_round_cycles(3).unwrap();
        // Rounds: 100, 200, 50 -> mean 116.67.
        assert!((m - 350.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn over_threshold_counts_from_histogram() {
        let mut s = GuestStats::new(1);
        s.record_wait(Cycles(1), Cycles(1 << 21));
        s.record_wait(Cycles(2), Cycles(1 << 19));
        assert_eq!(s.over_threshold_count(20), 1);
        assert_eq!(s.over_threshold_count(19), 2);
    }
}
