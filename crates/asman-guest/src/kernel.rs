//! The guest kernel state machine.
//!
//! [`GuestKernel`] executes a workload [`Program`] on the VM's virtual
//! CPUs, mediating every synchronization operation through simulated
//! kernel primitives:
//!
//! * **kernel spinlocks** — TAS-style: waiters busy-wait (consuming their
//!   VCPU), a releasing holder hands off to the oldest *actively spinning*
//!   waiter, and a freshly arriving thread may barge on a free lock (like
//!   the non-ticket spinlocks of Linux 2.6.18, the paper's guest kernel);
//! * **barriers** — the libgomp hybrid: arrival bookkeeping under the
//!   barrier's spinlock, a bounded user-space spin, then a futex block
//!   (the blocking path is what makes semaphore-style waits cheap under
//!   virtualization, per §2.2 of the paper);
//! * the **Monitoring Module** hook: every spinlock acquisition reports
//!   its waiting time to the [`SpinObserver`], which may request VCRD
//!   hypercalls.
//!
//! The hypervisor drives the kernel through four entry points —
//! [`dispatch`](GuestKernel::dispatch), [`preempt`](GuestKernel::preempt),
//! [`work_complete`](GuestKernel::work_complete) and the timer callbacks —
//! and receives [`GuestWork`] plus accumulated [`Effects`].

use std::collections::VecDeque;

use asman_sim::flight::{CatMask, FlightEv, FlightRecorder, TraceCat, PEER_FUTEX_BIT, VM_UNPATCHED};
use asman_sim::Cycles;
use asman_workloads::{Mark, Op, Program};

use crate::costs::GuestCosts;
use crate::monitor::{SpinObserver, VcrdUpdate};
use crate::stats::GuestStats;
use crate::thread::{AfterWork, GThread, LockPurpose, TState};

/// What a VCPU executes after a dispatch/work-completion, as reported to
/// the hypervisor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuestWork {
    /// Run thread `thread` for `dur` cycles, then call
    /// [`GuestKernel::work_complete`].
    Timed {
        /// VM-local thread index.
        thread: usize,
        /// Cycles until the segment (or guest quantum) expires.
        dur: Cycles,
    },
    /// Thread `thread` is busy-waiting on a kernel spinlock: the VCPU
    /// burns CPU with no completion event; it changes state only via a
    /// lock release (`Effects::refresh_vcpus`) or preemption.
    Spin {
        /// VM-local thread index.
        thread: usize,
    },
    /// No runnable thread: the VCPU should block (idle).
    Idle,
}

/// Side effects of a guest-kernel step, to be applied by the hypervisor.
#[derive(Debug, Default)]
pub struct Effects {
    /// VM-local VCPU slots that acquired runnable work while offline
    /// (blocked → runnable transitions; the VMM should wake/boost them).
    pub wake_vcpus: Vec<usize>,
    /// VM-local VCPU slots that are *online* but whose current work
    /// changed (a spinner was granted a lock, a barrier released its
    /// spinners): the VMM must invalidate any pending completion event
    /// and re-query [`GuestKernel::dispatch_work`].
    pub refresh_vcpus: Vec<usize>,
    /// Absolute-deadline wake-ups to arm for sleeping threads.
    pub sleep_timers: Vec<(usize, Cycles)>,
    /// VCRD update requested by the Monitoring Module (to be delivered to
    /// the adaptive scheduler as a `do_vcrd_op` hypercall).
    pub vcrd: Option<VcrdUpdate>,
}

impl Effects {
    /// Clear all accumulated effects (the hypervisor reuses one buffer).
    pub fn clear(&mut self) {
        self.wake_vcpus.clear();
        self.refresh_vcpus.clear();
        self.sleep_timers.clear();
        self.vcrd = None;
    }
}

struct LockState {
    holder: Option<usize>,
    /// FIFO of threads in `SpinKernel` on this lock.
    waiters: VecDeque<usize>,
}

struct BarrierState {
    arrived: u32,
    generation: u64,
    /// Threads blocked in the futex wait.
    blocked: Vec<usize>,
    /// Threads in the user-space spin phase (or contending the barrier
    /// lock to enqueue on the futex).
    spinners: Vec<usize>,
}

struct SemState {
    tokens: u64,
    /// FIFO of blocked waiters.
    waiters: VecDeque<usize>,
}

struct GVcpu {
    online: bool,
    /// Start of the currently unaccounted execution span.
    work_started: Cycles,
    current: Option<usize>,
    runq: VecDeque<usize>,
    quantum_used: Cycles,
    /// Accumulated online time owed to the guest timer (interrupt
    /// injection happens at the next safe work boundary).
    tick_debt: Cycles,
    /// Cache warm-up penalty to add to the next timed segment (set by
    /// the hypervisor at dispatch after preemption/migration).
    pending_warmup: Cycles,
}

/// The simulated guest kernel of one VM. See the module docs.
pub struct GuestKernel {
    program: Box<dyn Program>,
    costs: GuestCosts,
    threads: Vec<GThread>,
    locks: Vec<LockState>,
    barriers: Vec<BarrierState>,
    semaphores: Vec<SemState>,
    vcpus: Vec<GVcpu>,
    observer: Box<dyn SpinObserver>,
    /// Workload locks occupy `0..workload_locks`; barrier `b`'s lock is
    /// `workload_locks + b`.
    workload_locks: u32,
    stats: GuestStats,
    threads_done: usize,
    /// Guest-layer flight recorder (lock/futex/barrier categories).
    /// Events carry VM-local indices and [`VM_UNPATCHED`]; the hypervisor
    /// rebases them when merging cross-layer streams.
    flight: FlightRecorder,
}

impl GuestKernel {
    /// Build a guest kernel running `program` on `vcpus` virtual CPUs.
    /// Threads are assigned to VCPUs round-robin (thread `i` → VCPU
    /// `i % vcpus`), matching OpenMP default placement.
    pub fn new(
        program: Box<dyn Program>,
        vcpus: usize,
        costs: GuestCosts,
        observer: Box<dyn SpinObserver>,
    ) -> Self {
        assert!(vcpus > 0, "a VM needs at least one VCPU");
        let nthreads = program.thread_count();
        let workload_locks = program.kernel_locks();
        let nbarriers = program.barriers();
        let threads: Vec<GThread> = (0..nthreads).map(|i| GThread::new(i % vcpus)).collect();
        let mut gvcpus: Vec<GVcpu> = (0..vcpus)
            .map(|_| GVcpu {
                online: false,
                work_started: Cycles::ZERO,
                current: None,
                runq: VecDeque::new(),
                quantum_used: Cycles::ZERO,
                tick_debt: Cycles::ZERO,
                pending_warmup: Cycles::ZERO,
            })
            .collect();
        for (i, t) in threads.iter().enumerate() {
            gvcpus[t.vcpu].runq.push_back(i);
        }
        // Two extra kernel locks beyond the workload's: the global
        // `xtime` timekeeping lock (timer interrupts) and the futex
        // bucket lock used by pipeline waits.
        let locks = (0..workload_locks + nbarriers + 2)
            .map(|_| LockState {
                holder: None,
                waiters: VecDeque::new(),
            })
            .collect();
        let barriers = (0..nbarriers)
            .map(|_| BarrierState {
                arrived: 0,
                generation: 0,
                blocked: Vec::new(),
                spinners: Vec::new(),
            })
            .collect();
        let semaphores = (0..program.semaphores())
            .map(|_| SemState {
                tokens: 0,
                waiters: VecDeque::new(),
            })
            .collect();
        GuestKernel {
            stats: GuestStats::new(nthreads),
            program,
            costs,
            threads,
            locks,
            barriers,
            semaphores,
            vcpus: gvcpus,
            observer,
            workload_locks,
            threads_done: 0,
            flight: FlightRecorder::disabled(),
        }
    }

    /// Start flight-recording guest synchronization events (the lock,
    /// futex and barrier categories of `mask`), at most `capacity`
    /// retained events per category.
    pub fn enable_flight(&mut self, mask: CatMask, capacity: usize) {
        self.flight = FlightRecorder::labeled(mask, capacity, "guest");
    }

    /// Start recording spin-episode durations (kernel spinlock, barrier
    /// and pipeline-flag busy-wait segments) into a quantile histogram.
    /// Off by default: the charge path then pays a single branch and no
    /// observation is ever taken, so results are unchanged.
    pub fn enable_spin_episodes(&mut self) {
        // Idempotent: a kernel that live-migrated in already carries its
        // histogram, and re-enabling on the destination must not erase
        // the episodes observed on the source host.
        if self.stats.spin_episodes.is_none() {
            self.stats.spin_episodes = Some(Default::default());
        }
    }

    /// The guest-layer flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Mutable access to the flight recorder (e.g. to drain its buffers
    /// into a merged cross-layer stream).
    pub fn flight_mut(&mut self) -> &mut FlightRecorder {
        &mut self.flight
    }

    /// Number of VCPUs.
    pub fn vcpu_count(&self) -> usize {
        self.vcpus.len()
    }

    /// Number of guest threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Measurement state.
    pub fn stats(&self) -> &GuestStats {
        &self.stats
    }

    /// Mutable measurement state (e.g. to gate the wait trace to an
    /// observation window).
    pub fn stats_mut(&mut self) -> &mut GuestStats {
        &mut self.stats
    }

    /// Execution state of thread `t` (diagnostics and tests).
    pub fn thread_state(&self, t: usize) -> TState {
        self.threads[t].state
    }

    /// Lock currently held by thread `t`, if any (diagnostics).
    pub fn thread_held(&self, t: usize) -> Option<u32> {
        self.threads[t].held
    }

    /// Holder of lock `l`, if any (diagnostics and tests).
    pub fn lock_holder(&self, l: u32) -> Option<usize> {
        self.locks[l as usize].holder
    }

    /// Whether every thread has finished its program.
    pub fn is_finished(&self) -> bool {
        self.threads_done == self.threads.len()
    }

    /// Workload name.
    pub fn workload_name(&self) -> &str {
        self.program.name()
    }

    /// Threads currently in a timed sleep, as `(thread, absolute
    /// deadline)` pairs in thread order. A hypervisor resuming this
    /// kernel after a live migration re-arms one timer per entry — the
    /// source host's in-flight `SleepTimer` events do not travel.
    pub fn sleeping_threads(&self) -> Vec<(usize, Cycles)> {
        self.threads
            .iter()
            .enumerate()
            .filter_map(|(t, th)| match th.state {
                TState::Sleep { until } => Some((t, until)),
                _ => None,
            })
            .collect()
    }

    /// Fold the kernel's complete execution state into a fingerprint:
    /// every thread's state machine, every lock/barrier/semaphore wait
    /// queue, every guest-VCPU runqueue, and the measurement counters
    /// that feed artifacts. Two kernels with equal folds behave
    /// identically from here on (the program and cost model are part of
    /// the configuration, not the state), so the checkpoint subsystem
    /// uses this to prove a restored kernel matches its
    /// straight-through twin.
    pub fn fold_state(&self, h: &mut asman_sim::Fnv) {
        h.write_usize(self.threads.len());
        for t in &self.threads {
            h.write_usize(t.vcpu);
            h.write_opt_u64(t.held.map(u64::from));
            fold_tstate(&t.state, h);
            h.write_u64(t.rounds);
            h.write_u64(t.progress);
            match &t.resume {
                Some((remaining, then)) => {
                    h.write_bool(true);
                    h.write_u64(remaining.as_u64());
                    fold_afterwork(then, h);
                }
                None => h.write_bool(false),
            }
            h.write_usize(t.spin_waiters.len());
            for &w in &t.spin_waiters {
                h.write_usize(w);
            }
            h.write_usize(t.blocked_waiters.len());
            for &(w, target) in &t.blocked_waiters {
                h.write_usize(w);
                h.write_u64(target);
            }
        }
        h.write_usize(self.locks.len());
        for l in &self.locks {
            h.write_opt_u64(l.holder.map(|t| t as u64));
            h.write_usize(l.waiters.len());
            for &w in &l.waiters {
                h.write_usize(w);
            }
        }
        h.write_usize(self.barriers.len());
        for b in &self.barriers {
            h.write_u32(b.arrived);
            h.write_u64(b.generation);
            h.write_usize(b.blocked.len());
            for &t in &b.blocked {
                h.write_usize(t);
            }
            h.write_usize(b.spinners.len());
            for &t in &b.spinners {
                h.write_usize(t);
            }
        }
        h.write_usize(self.semaphores.len());
        for s in &self.semaphores {
            h.write_u64(s.tokens);
            h.write_usize(s.waiters.len());
            for &w in &s.waiters {
                h.write_usize(w);
            }
        }
        h.write_usize(self.vcpus.len());
        for v in &self.vcpus {
            h.write_bool(v.online);
            h.write_u64(v.work_started.as_u64());
            h.write_opt_u64(v.current.map(|t| t as u64));
            h.write_usize(v.runq.len());
            for &t in &v.runq {
                h.write_usize(t);
            }
            h.write_u64(v.quantum_used.as_u64());
            h.write_u64(v.tick_debt.as_u64());
            h.write_u64(v.pending_warmup.as_u64());
        }
        h.write_u32(self.workload_locks);
        h.write_usize(self.threads_done);
        let s = &self.stats;
        h.write_u64(s.wait_hist.count());
        h.write_u64(s.sem_wait_hist.count());
        h.write_usize(s.wait_trace.samples().len());
        h.write_u64(s.spin_kernel_cycles.as_u64());
        h.write_u64(s.spin_barrier_cycles.as_u64());
        h.write_u64(s.spin_pipeline_cycles.as_u64());
        h.write_u64(s.timer_ticks);
        h.write_u64(s.warmup_cycles.as_u64());
        h.write_u64(s.useful_cycles.as_u64());
        h.write_u64(s.transactions);
        h.write_usize(s.round_times.len());
        for rt in &s.round_times {
            h.write_usize(rt.len());
            for &t in rt {
                h.write_u64(t.as_u64());
            }
        }
        h.write_u64(s.barriers_completed);
        h.write_u64(s.lock_acquisitions);
        h.write_u64(s.holder_preemptions);
        match s.spin_episodes.as_ref() {
            Some(q) => {
                h.write_bool(true);
                h.write_u64(q.count());
            }
            None => h.write_bool(false),
        }
        h.write_opt_u64(s.finished_at.map(|c| c.as_u64()));
    }

    /// Whether VCPU `v` has anything runnable (used by the hypervisor to
    /// decide whether a blocked VCPU should wake).
    pub fn vcpu_runnable(&self, v: usize) -> bool {
        self.vcpus[v]
            .current
            .map(|t| self.threads[t].state.is_runnable())
            .unwrap_or(false)
            || self.vcpus[v]
                .runq
                .iter()
                .any(|&t| self.threads[t].state.is_runnable())
    }

    /// The VCPU gained a physical CPU at `now`. `warmup` is the cache
    /// warm-up penalty (lost progress) the hypervisor charges for a cold
    /// dispatch; it is added to the next timed segment.
    pub fn dispatch(
        &mut self,
        v: usize,
        now: Cycles,
        warmup: Cycles,
        fx: &mut Effects,
    ) -> GuestWork {
        debug_assert!(!self.vcpus[v].online, "double dispatch of vcpu {v}");
        self.vcpus[v].online = true;
        self.vcpus[v].work_started = now;
        self.vcpus[v].pending_warmup = warmup;
        self.dispatch_work(v, now, fx)
    }

    /// The VCPU lost its physical CPU at `now`.
    pub fn preempt(&mut self, v: usize, now: Cycles) {
        debug_assert!(self.vcpus[v].online, "preempting offline vcpu {v}");
        self.charge(v, now);
        if let Some(t) = self.vcpus[v].current {
            if self.threads[t].held.is_some() {
                // Lock-holder preemption: the root cause of over-threshold
                // spinlocks (§2.2).
                self.stats.holder_preemptions += 1;
            }
        }
        self.vcpus[v].online = false;
    }

    /// Re-evaluate what online VCPU `v` should execute (after a dispatch,
    /// a completed segment, or a refresh). Only call while online.
    pub fn dispatch_work(&mut self, v: usize, now: Cycles, fx: &mut Effects) -> GuestWork {
        debug_assert!(self.vcpus[v].online);
        loop {
            let Some(t) = self.current_thread(v) else {
                return GuestWork::Idle;
            };
            match self.threads[t].state {
                TState::Fetch => {
                    self.fetch_and_start(t, now, fx);
                    // State changed; loop to classify it.
                }
                TState::Work { remaining, then } => {
                    if remaining.is_zero() {
                        // The segment finished exactly when the VCPU was
                        // preempted (its completion event was invalidated);
                        // complete it now.
                        self.finish_segment(t, then, now, fx);
                        continue;
                    }
                    // Kernel-entry injection (timer ticks, syscalls, IRQ
                    // work): delivered at safe boundaries (implicitly
                    // masked inside kernel critical sections / while an
                    // entry is already in flight).
                    let injectable = !self.costs.timer_hold.is_zero()
                        && self.threads[t].held.is_none()
                        && self.threads[t].resume.is_none();
                    if injectable && self.vcpus[v].tick_debt >= self.costs.timer_period {
                        self.vcpus[v].tick_debt -= self.costs.timer_period;
                        self.threads[t].resume = Some((remaining, then));
                        self.stats.timer_ticks += 1;
                        let xl = self.xtime_lock();
                        self.try_acquire(t, xl, LockPurpose::TimerTick, now, fx);
                        continue;
                    }
                    let mut dur = remaining;
                    if !self.vcpus[v].pending_warmup.is_zero() {
                        let w = std::mem::take(&mut self.vcpus[v].pending_warmup);
                        self.stats.warmup_cycles = self.stats.warmup_cycles.saturating_add(w);
                        if let TState::Work { remaining, .. } = &mut self.threads[t].state {
                            *remaining += w;
                        }
                        dur += w;
                    }
                    if injectable {
                        // Split long segments so the next kernel entry
                        // lands on schedule rather than at the end of a
                        // multi-millisecond compute chunk.
                        let until_entry = self
                            .costs
                            .timer_period
                            .saturating_sub(self.vcpus[v].tick_debt)
                            .max(Cycles(1));
                        dur = dur.min(until_entry);
                    }
                    // Guest-scheduler quantum: only preempt threads that
                    // hold no lock (kernel preemption disabled in critical
                    // sections) when another thread is waiting.
                    if !self.vcpus[v].runq.is_empty() && self.threads[t].held.is_none() {
                        let left = self
                            .costs
                            .guest_quantum
                            .saturating_sub(self.vcpus[v].quantum_used);
                        if left.is_zero() {
                            self.rotate(v);
                            continue;
                        }
                        dur = dur.min(left);
                    }
                    return GuestWork::Timed { thread: t, dur };
                }
                TState::SpinKernel { lock, .. } => {
                    // The lock may have been released while we were
                    // offline with no active spinner to hand off to.
                    if self.locks[lock as usize].holder.is_none() {
                        self.grant_to(t, now, fx);
                        continue;
                    }
                    return GuestWork::Spin { thread: t };
                }
                TState::BlockedBarrier { .. }
                | TState::BlockedSem { .. }
                | TState::BlockedPeer { .. }
                | TState::Sleep { .. }
                | TState::Done => {
                    // Not runnable: drop it as current and try the queue.
                    self.vcpus[v].current = None;
                }
            }
        }
    }

    /// The previously announced [`GuestWork::Timed`] duration elapsed for
    /// VCPU `v` at `now`. Returns the next work for the VCPU.
    pub fn work_complete(&mut self, v: usize, now: Cycles, fx: &mut Effects) -> GuestWork {
        debug_assert!(self.vcpus[v].online);
        self.charge(v, now);
        if let Some(t) = self.vcpus[v].current {
            if let TState::Work { remaining, then } = self.threads[t].state {
                if remaining.is_zero() {
                    self.finish_segment(t, then, now, fx);
                }
                // Otherwise the guest quantum expired mid-segment; the
                // dispatch loop below will rotate.
            }
        }
        self.dispatch_work(v, now, fx)
    }

    /// A sleep timer armed via [`Effects::sleep_timers`] fired.
    pub fn sleep_timer(&mut self, t: usize, now: Cycles, fx: &mut Effects) {
        if let TState::Sleep { until } = self.threads[t].state {
            if until <= now {
                self.threads[t].state = TState::Fetch;
                self.make_runnable(t, fx);
            }
        }
    }

    /// The VCRD estimation timer fired; relays to the Monitoring Module.
    pub fn vcrd_timer(&mut self, now: Cycles, fx: &mut Effects) {
        if let Some(update) = self.observer.on_vcrd_timer(now) {
            fx.vcrd = Some(update);
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn current_thread(&mut self, v: usize) -> Option<usize> {
        if self.vcpus[v].current.is_none() {
            // Skip non-runnable queue entries (stale after blocking).
            while let Some(t) = self.vcpus[v].runq.pop_front() {
                if self.threads[t].state.is_runnable() {
                    self.vcpus[v].current = Some(t);
                    self.vcpus[v].quantum_used = Cycles::ZERO;
                    break;
                }
            }
        }
        self.vcpus[v].current
    }

    fn rotate(&mut self, v: usize) {
        if let Some(t) = self.vcpus[v].current.take() {
            self.vcpus[v].runq.push_back(t);
        }
        self.vcpus[v].quantum_used = Cycles::ZERO;
    }

    /// Charge the span since `work_started` to the current thread.
    fn charge(&mut self, v: usize, now: Cycles) {
        let el = now.saturating_sub(self.vcpus[v].work_started);
        self.vcpus[v].work_started = now;
        if el.is_zero() {
            return;
        }
        // Timer interrupts accrue with online time; at most two are ever
        // pending (coalescing, like real "lost ticks" under
        // virtualization).
        self.vcpus[v].tick_debt = (self.vcpus[v].tick_debt + el).min(self.costs.timer_period * 2);
        let Some(t) = self.vcpus[v].current else {
            return;
        };
        match &mut self.threads[t].state {
            TState::Work { remaining, then } => {
                let used = el.min(*remaining);
                *remaining -= used;
                // Cumulative counters saturate: a soak horizon must pin
                // them at the ceiling, not panic (debug) or wrap
                // (release) after enough simulated days.
                match then {
                    AfterWork::TryFutexEnqueue { .. } => {
                        self.stats.spin_barrier_cycles =
                            self.stats.spin_barrier_cycles.saturating_add(used);
                        self.stats.note_spin(used);
                    }
                    AfterWork::TryPeerEnqueue { .. } => {
                        self.stats.spin_pipeline_cycles =
                            self.stats.spin_pipeline_cycles.saturating_add(used);
                        self.stats.note_spin(used);
                    }
                    _ => {
                        self.stats.useful_cycles = self.stats.useful_cycles.saturating_add(used)
                    }
                }
                self.vcpus[v].quantum_used += el;
            }
            TState::SpinKernel { .. } => {
                self.stats.spin_kernel_cycles = self.stats.spin_kernel_cycles.saturating_add(el);
                self.stats.note_spin(el);
            }
            _ => {}
        }
    }

    /// Pull ops from the program for thread `t` until it enters a timed,
    /// spinning or blocked state.
    fn fetch_and_start(&mut self, t: usize, now: Cycles, fx: &mut Effects) {
        loop {
            debug_assert_eq!(self.threads[t].state, TState::Fetch);
            match self.program.next_op(t) {
                Op::Compute(c) => {
                    if c.is_zero() {
                        continue;
                    }
                    self.threads[t].state = TState::Work {
                        remaining: c,
                        then: AfterWork::Fetch,
                    };
                    return;
                }
                Op::CriticalSection { lock, hold } => {
                    debug_assert!(lock < self.workload_locks, "lock id out of range");
                    self.try_acquire(t, lock, LockPurpose::Critical { hold }, now, fx);
                    return;
                }
                Op::Barrier { id } => {
                    let lock = self.barrier_lock(id);
                    self.try_acquire(t, lock, LockPurpose::BarrierEnter { id }, now, fx);
                    return;
                }
                Op::Sleep(d) => {
                    let until = now + d;
                    self.threads[t].state = TState::Sleep { until };
                    fx.sleep_timers.push((t, until));
                    let v = self.threads[t].vcpu;
                    if self.vcpus[v].current == Some(t) {
                        self.vcpus[v].current = None;
                    }
                    return;
                }
                Op::Advance => {
                    self.threads[t].progress += 1;
                    self.release_satisfied_spinners(t, now, fx);
                    let progress = self.threads[t].progress;
                    let any_blocked = self.threads[t]
                        .blocked_waiters
                        .iter()
                        .any(|&(_, target)| target <= progress);
                    if any_blocked {
                        // Futex wake: the producer walks the waiter list
                        // under the bucket lock.
                        let bl = self.bucket_lock();
                        self.try_acquire(t, bl, LockPurpose::PeerWake, now, fx);
                        return;
                    }
                }
                Op::WaitPeer { peer, target } => {
                    let peer = peer as usize;
                    debug_assert!(peer < self.threads.len() && peer != t);
                    if self.threads[peer].progress >= target {
                        continue; // flag already set; no wait
                    }
                    self.threads[peer].spin_waiters.push(t);
                    self.threads[t].state = TState::Work {
                        remaining: self.costs.pipeline_spin_budget.max(Cycles(1)),
                        then: AfterWork::TryPeerEnqueue { peer, target },
                    };
                    return;
                }
                Op::SemWait { id } => {
                    let sem = &mut self.semaphores[id as usize];
                    if sem.tokens > 0 {
                        // Token available: the down() path is a few
                        // hundred cycles of kernel bookkeeping.
                        sem.tokens -= 1;
                        self.stats.sem_wait_hist.record(Cycles(600));
                        self.threads[t].state = TState::Work {
                            remaining: Cycles(600),
                            then: AfterWork::Fetch,
                        };
                    } else {
                        sem.waiters.push_back(t);
                        self.threads[t].state = TState::BlockedSem { id, since: now };
                        let v = self.threads[t].vcpu;
                        if self.vcpus[v].current == Some(t) {
                            self.vcpus[v].current = None;
                        }
                    }
                    return;
                }
                Op::SemPost { id } => {
                    let sem = &mut self.semaphores[id as usize];
                    if let Some(w) = sem.waiters.pop_front() {
                        // Hand the token straight to the oldest waiter.
                        if let TState::BlockedSem { since, .. } = self.threads[w].state {
                            self.stats
                                .sem_wait_hist
                                .record(now.saturating_sub(since).max(Cycles(600)));
                        }
                        self.threads[w].state = TState::Work {
                            remaining: self.costs.futex_wake_latency + self.costs.barrier_exit,
                            then: AfterWork::Fetch,
                        };
                        self.make_runnable(w, fx);
                    } else {
                        sem.tokens += 1;
                    }
                    // up() itself is cheap; continue fetching.
                }
                Op::Mark(Mark::Transaction) => {
                    self.stats.transactions += 1;
                }
                Op::Mark(Mark::RoundEnd) => {
                    self.threads[t].rounds += 1;
                    self.stats.record_round(t, now);
                }
                Op::Done => {
                    self.threads[t].state = TState::Done;
                    self.threads_done += 1;
                    if self.threads_done == self.threads.len() {
                        self.stats.finished_at = Some(now);
                    }
                    let v = self.threads[t].vcpu;
                    if self.vcpus[v].current == Some(t) {
                        self.vcpus[v].current = None;
                    }
                    return;
                }
            }
        }
    }

    fn barrier_lock(&self, id: u32) -> u32 {
        self.workload_locks + id
    }

    /// The global timekeeping lock taken by every timer interrupt.
    fn xtime_lock(&self) -> u32 {
        self.workload_locks + self.barriers.len() as u32
    }

    /// The futex bucket lock used by pipeline (flag) waits.
    fn bucket_lock(&self) -> u32 {
        self.workload_locks + self.barriers.len() as u32 + 1
    }

    fn try_acquire(
        &mut self,
        t: usize,
        lock: u32,
        purpose: LockPurpose,
        now: Cycles,
        fx: &mut Effects,
    ) {
        debug_assert_ne!(self.threads[t].held, Some(lock), "re-entrant lock");
        let ls = &mut self.locks[lock as usize];
        if ls.holder.is_none() {
            // Fresh acquisition (TAS barging is allowed even if older
            // waiters exist but are currently offline).
            self.record_acquisition(t, lock, self.costs.lock_uncontended, now, fx);
            self.start_locked_work(t, purpose, now);
        } else {
            ls.waiters.push_back(t);
            self.threads[t].state = TState::SpinKernel {
                lock,
                since: now,
                purpose,
            };
            if self.flight.wants(TraceCat::Lock) {
                self.flight.record(
                    now,
                    FlightEv::LockContend {
                        vm: VM_UNPATCHED,
                        vcpu: self.threads[t].vcpu as u32,
                        thread: t as u32,
                        lock,
                    },
                );
            }
        }
    }

    /// Grant `lock` to thread `t`, which was spinning on it.
    fn grant_to(&mut self, t: usize, now: Cycles, fx: &mut Effects) {
        let TState::SpinKernel {
            lock,
            since,
            purpose,
        } = self.threads[t].state
        else {
            unreachable!("grant_to on non-spinning thread");
        };
        debug_assert!(self.locks[lock as usize].holder.is_none());
        // Remove from the waiter queue.
        let ls = &mut self.locks[lock as usize];
        if let Some(pos) = ls.waiters.iter().position(|&w| w == t) {
            ls.waiters.remove(pos);
        }
        let wait = now.saturating_sub(since) + self.costs.lock_handoff;
        self.record_acquisition(t, lock, wait, now, fx);
        self.start_locked_work(t, purpose, now);
    }

    fn record_acquisition(
        &mut self,
        t: usize,
        lock: u32,
        wait: Cycles,
        now: Cycles,
        fx: &mut Effects,
    ) {
        self.locks[lock as usize].holder = Some(t);
        self.threads[t].held = Some(lock);
        self.stats.record_wait(now, wait);
        if self.flight.wants(TraceCat::Lock) {
            self.flight.record(
                now,
                FlightEv::LockAcquire {
                    vm: VM_UNPATCHED,
                    vcpu: self.threads[t].vcpu as u32,
                    thread: t as u32,
                    lock,
                    wait: wait.as_u64(),
                },
            );
        }
        if let Some(update) = self.observer.on_spinlock_wait(now, wait) {
            fx.vcrd = Some(update);
        }
    }

    /// Set up the timed segment a thread executes once it owns its lock.
    fn start_locked_work(&mut self, t: usize, purpose: LockPurpose, now: Cycles) {
        let state = match purpose {
            LockPurpose::Critical { hold } => TState::Work {
                remaining: hold.max(Cycles(1)),
                then: AfterWork::ReleaseThenFetch,
            },
            LockPurpose::BarrierEnter { id } => {
                let b = &mut self.barriers[id as usize];
                b.arrived += 1;
                let arrived = b.arrived;
                if self.flight.wants(TraceCat::Barrier) {
                    self.flight.record(
                        now,
                        FlightEv::BarrierArrive {
                            vm: VM_UNPATCHED,
                            vcpu: self.threads[t].vcpu as u32,
                            thread: t as u32,
                            barrier: id,
                            arrived,
                        },
                    );
                }
                let b = &mut self.barriers[id as usize];
                if b.arrived as usize == self.threads.len() {
                    let waiters = self.threads.len().saturating_sub(1) as u64;
                    TState::Work {
                        remaining: self.costs.barrier_wake_base
                            + self.costs.barrier_wake_per_waiter * waiters,
                        then: AfterWork::ReleaseThenWake { id },
                    }
                } else {
                    TState::Work {
                        remaining: self.costs.barrier_enter,
                        then: AfterWork::ReleaseThenSpin { id },
                    }
                }
            }
            LockPurpose::FutexEnqueue { id, gen } => {
                if self.barriers[id as usize].generation != gen {
                    // The barrier completed while we were contending the
                    // lock: just proceed.
                    self.deregister_spinner(id, t);
                    TState::Work {
                        remaining: self.costs.barrier_exit,
                        then: AfterWork::ReleaseThenFetch,
                    }
                } else {
                    TState::Work {
                        remaining: self.costs.futex_enqueue,
                        then: AfterWork::ReleaseThenBlock { id },
                    }
                }
            }
            LockPurpose::TimerTick => TState::Work {
                remaining: self.costs.timer_hold.max(Cycles(1)),
                then: AfterWork::ReleaseThenResume,
            },
            LockPurpose::PeerEnqueue { peer, target } => {
                if self.threads[peer].progress >= target {
                    // The flag was set while contending the bucket lock.
                    self.deregister_peer_spinner(peer, t);
                    TState::Work {
                        remaining: self.costs.barrier_exit,
                        then: AfterWork::ReleaseThenFetch,
                    }
                } else {
                    TState::Work {
                        remaining: self.costs.futex_enqueue,
                        then: AfterWork::ReleaseThenBlockPeer { peer, target },
                    }
                }
            }
            LockPurpose::PeerWake => {
                let progress = self.threads[t].progress;
                let waiters = self.threads[t]
                    .blocked_waiters
                    .iter()
                    .filter(|&&(_, target)| target <= progress)
                    .count() as u64;
                TState::Work {
                    remaining: self.costs.barrier_wake_base
                        + self.costs.barrier_wake_per_waiter * waiters,
                    then: AfterWork::ReleaseThenWakePeers,
                }
            }
        };
        self.threads[t].state = state;
    }

    fn deregister_peer_spinner(&mut self, peer: usize, t: usize) {
        if let Some(pos) = self.threads[peer].spin_waiters.iter().position(|&s| s == t) {
            self.threads[peer].spin_waiters.swap_remove(pos);
        }
    }

    /// A producer advanced: let every satisfied *spinning* pipeline
    /// waiter proceed (it observes the flag from user space; no kernel
    /// involvement).
    fn release_satisfied_spinners(&mut self, producer: usize, now: Cycles, fx: &mut Effects) {
        let progress = self.threads[producer].progress;
        let mut i = 0;
        while i < self.threads[producer].spin_waiters.len() {
            let w = self.threads[producer].spin_waiters[i];
            let satisfied = match self.threads[w].state {
                TState::Work {
                    then: AfterWork::TryPeerEnqueue { target, .. },
                    ..
                } => target <= progress,
                // Contending the bucket lock or mid-enqueue: the
                // satisfied-check at lock acquisition / pre-block handles
                // those paths.
                _ => false,
            };
            if satisfied {
                let wv = self.threads[w].vcpu;
                if self.vcpus[wv].online && self.vcpus[wv].current == Some(w) {
                    self.charge(wv, now);
                    fx.refresh_vcpus.push(wv);
                }
                self.threads[w].state = TState::Work {
                    remaining: self.costs.barrier_exit,
                    then: AfterWork::Fetch,
                };
                self.threads[producer].spin_waiters.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn deregister_spinner(&mut self, id: u32, t: usize) {
        let b = &mut self.barriers[id as usize];
        if let Some(pos) = b.spinners.iter().position(|&s| s == t) {
            b.spinners.swap_remove(pos);
        }
    }

    fn finish_segment(&mut self, t: usize, then: AfterWork, now: Cycles, fx: &mut Effects) {
        match then {
            AfterWork::Fetch => {
                self.threads[t].state = TState::Fetch;
            }
            AfterWork::ReleaseThenFetch => {
                self.threads[t].state = TState::Fetch;
                self.release_held(t, now, fx);
            }
            AfterWork::ReleaseThenSpin { id } => {
                let gen = self.barriers[id as usize].generation;
                self.barriers[id as usize].spinners.push(t);
                self.threads[t].state = TState::Work {
                    remaining: self.costs.barrier_spin_budget.max(Cycles(1)),
                    then: AfterWork::TryFutexEnqueue { id, gen },
                };
                self.release_held(t, now, fx);
            }
            AfterWork::ReleaseThenWake { id } => {
                self.threads[t].state = TState::Fetch;
                self.complete_barrier(id, t, now, fx);
                self.release_held(t, now, fx);
            }
            AfterWork::ReleaseThenBlock { id } => {
                self.deregister_spinner(id, t);
                self.barriers[id as usize].blocked.push(t);
                self.threads[t].state = TState::BlockedBarrier { id };
                let v = self.threads[t].vcpu;
                if self.vcpus[v].current == Some(t) {
                    self.vcpus[v].current = None;
                }
                if self.flight.wants(TraceCat::Futex) {
                    self.flight.record(
                        now,
                        FlightEv::FutexBlock {
                            vm: VM_UNPATCHED,
                            vcpu: v as u32,
                            thread: t as u32,
                            futex: id,
                        },
                    );
                }
                self.release_held(t, now, fx);
            }
            AfterWork::TryPeerEnqueue { peer, target } => {
                if self.threads[peer].progress >= target {
                    // Raced the flag during the final spin instants.
                    self.deregister_peer_spinner(peer, t);
                    self.threads[t].state = TState::Fetch;
                } else {
                    let bl = self.bucket_lock();
                    self.try_acquire(t, bl, LockPurpose::PeerEnqueue { peer, target }, now, fx);
                }
            }
            AfterWork::ReleaseThenBlockPeer { peer, target } => {
                self.deregister_peer_spinner(peer, t);
                if self.threads[peer].progress >= target {
                    // Satisfied while enqueueing: do not sleep.
                    self.threads[t].state = TState::Fetch;
                } else {
                    self.threads[peer].blocked_waiters.push((t, target));
                    self.threads[t].state = TState::BlockedPeer { peer, target };
                    let v = self.threads[t].vcpu;
                    if self.vcpus[v].current == Some(t) {
                        self.vcpus[v].current = None;
                    }
                    if self.flight.wants(TraceCat::Futex) {
                        self.flight.record(
                            now,
                            FlightEv::FutexBlock {
                                vm: VM_UNPATCHED,
                                vcpu: v as u32,
                                thread: t as u32,
                                futex: PEER_FUTEX_BIT | peer as u32,
                            },
                        );
                    }
                }
                self.release_held(t, now, fx);
            }
            AfterWork::ReleaseThenWakePeers => {
                self.threads[t].state = TState::Fetch;
                let progress = self.threads[t].progress;
                let mut i = 0;
                let mut woken = 0u32;
                while i < self.threads[t].blocked_waiters.len() {
                    let (w, target) = self.threads[t].blocked_waiters[i];
                    if target <= progress {
                        self.threads[t].blocked_waiters.swap_remove(i);
                        debug_assert!(matches!(self.threads[w].state, TState::BlockedPeer { .. }));
                        self.threads[w].state = TState::Work {
                            remaining: self.costs.futex_wake_latency + self.costs.barrier_exit,
                            then: AfterWork::Fetch,
                        };
                        self.make_runnable(w, fx);
                        woken += 1;
                    } else {
                        i += 1;
                    }
                }
                if woken > 0 && self.flight.wants(TraceCat::Futex) {
                    self.flight.record(
                        now,
                        FlightEv::FutexWake {
                            vm: VM_UNPATCHED,
                            vcpu: self.threads[t].vcpu as u32,
                            thread: t as u32,
                            futex: PEER_FUTEX_BIT | t as u32,
                            woken,
                        },
                    );
                }
                self.release_held(t, now, fx);
            }
            AfterWork::ReleaseThenResume => {
                let (remaining, then) = self.threads[t]
                    .resume
                    .take()
                    .expect("timer resume without stashed segment");
                self.threads[t].state = TState::Work { remaining, then };
                self.release_held(t, now, fx);
            }
            AfterWork::TryFutexEnqueue { id, gen } => {
                if self.barriers[id as usize].generation != gen {
                    // Barrier completed during the last instants of the
                    // spin (already handled by complete_barrier normally;
                    // this is the race where the check raced the budget).
                    self.deregister_spinner(id, t);
                    self.threads[t].state = TState::Fetch;
                } else {
                    let lock = self.barrier_lock(id);
                    self.try_acquire(t, lock, LockPurpose::FutexEnqueue { id, gen }, now, fx);
                }
            }
        }
    }

    /// Release the lock `t` holds and hand off to the oldest actively
    /// spinning waiter, if any.
    fn release_held(&mut self, t: usize, now: Cycles, fx: &mut Effects) {
        let Some(lock) = self.threads[t].held.take() else {
            debug_assert!(false, "release without held lock");
            return;
        };
        debug_assert_eq!(self.locks[lock as usize].holder, Some(t));
        self.locks[lock as usize].holder = None;
        if self.flight.wants(TraceCat::Lock) {
            self.flight.record(
                now,
                FlightEv::LockRelease {
                    vm: VM_UNPATCHED,
                    vcpu: self.threads[t].vcpu as u32,
                    thread: t as u32,
                    lock,
                },
            );
        }
        // Oldest waiter whose VCPU is online (a spinner is always its
        // VCPU's current thread, so online ⇔ actively spinning).
        let grantee = self.locks[lock as usize]
            .waiters
            .iter()
            .copied()
            .find(|&w| self.vcpus[self.threads[w].vcpu].online);
        // Auditor recheck of the FIFO grant rule: every waiter queued
        // ahead of the grantee must be offline, otherwise an older
        // active spinner was skipped. Trivially true of the `find`
        // above — unless the waiter queue or online bookkeeping it
        // reads has been corrupted elsewhere, which is the drift this
        // guards against.
        #[cfg(feature = "audit")]
        if let Some(w) = grantee {
            for &earlier in &self.locks[lock as usize].waiters {
                if earlier == w {
                    break;
                }
                assert!(
                    !self.vcpus[self.threads[earlier].vcpu].online,
                    "audit: lock {lock} grant to thread {w} skipped older \
                     online waiter {earlier}"
                );
            }
        }
        if let Some(w) = grantee {
            let wv = self.threads[w].vcpu;
            debug_assert_eq!(self.vcpus[wv].current, Some(w));
            // Account its spin burn up to the handoff instant.
            self.charge(wv, now);
            self.grant_to(w, now, fx);
            fx.refresh_vcpus.push(wv);
        }
        // If nobody is actively spinning the lock stays free; offline
        // spinners re-check on their next dispatch.
    }

    /// Advance the barrier generation and release every waiter. `t` is
    /// the last-arriving thread executing the release.
    fn complete_barrier(&mut self, id: u32, t: usize, now: Cycles, fx: &mut Effects) {
        let b = &mut self.barriers[id as usize];
        b.generation += 1;
        b.arrived = 0;
        self.stats.barriers_completed += 1;
        let blocked = std::mem::take(&mut b.blocked);
        let spinners = std::mem::take(&mut b.spinners);
        if self.flight.is_enabled() {
            let vcpu = self.threads[t].vcpu as u32;
            if !blocked.is_empty() && self.flight.wants(TraceCat::Futex) {
                self.flight.record(
                    now,
                    FlightEv::FutexWake {
                        vm: VM_UNPATCHED,
                        vcpu,
                        thread: t as u32,
                        futex: id,
                        woken: blocked.len() as u32,
                    },
                );
            }
            if self.flight.wants(TraceCat::Barrier) {
                self.flight.record(
                    now,
                    FlightEv::BarrierRelease {
                        vm: VM_UNPATCHED,
                        vcpu,
                        thread: t as u32,
                        barrier: id,
                        woken: (blocked.len() + spinners.len()) as u32,
                    },
                );
            }
        }
        for w in blocked {
            debug_assert!(matches!(
                self.threads[w].state,
                TState::BlockedBarrier { .. }
            ));
            self.threads[w].state = TState::Work {
                remaining: self.costs.futex_wake_latency + self.costs.barrier_exit,
                then: AfterWork::Fetch,
            };
            self.make_runnable(w, fx);
        }
        for w in spinners {
            match self.threads[w].state {
                TState::Work {
                    then: AfterWork::TryFutexEnqueue { .. },
                    ..
                } => {
                    let wv = self.threads[w].vcpu;
                    if self.vcpus[wv].online && self.vcpus[wv].current == Some(w) {
                        // Charge the spin so far, then let it proceed.
                        self.charge(wv, now);
                        fx.refresh_vcpus.push(wv);
                    }
                    self.threads[w].state = TState::Work {
                        remaining: self.costs.barrier_exit,
                        then: AfterWork::Fetch,
                    };
                }
                TState::SpinKernel {
                    purpose: LockPurpose::FutexEnqueue { .. },
                    ..
                } => {
                    // Contending the barrier lock to enqueue; the stale
                    // generation check in start_locked_work lets it
                    // proceed once it gets the lock. Nothing to do now.
                    // Put it back in the spinner registry so invariants
                    // hold (it deregisters itself on acquisition).
                    self.barriers[id as usize].spinners.push(w);
                }
                TState::SpinKernel {
                    purpose: LockPurpose::TimerTick,
                    ..
                }
                | TState::Work {
                    then: AfterWork::ReleaseThenResume,
                    ..
                } => {
                    // A timer interrupt landed mid-barrier-spin: the spin
                    // segment is stashed in `resume` and will restore as
                    // TryFutexEnqueue, whose stale-generation check lets
                    // the thread proceed. Keep it registered.
                    debug_assert!(matches!(
                        self.threads[w].resume,
                        Some((_, AfterWork::TryFutexEnqueue { .. }))
                    ));
                    self.barriers[id as usize].spinners.push(w);
                }
                ref other => {
                    debug_assert!(false, "unexpected spinner state {other:?}");
                }
            }
        }
    }

    /// Enqueue `t` on its VCPU's runqueue; if the VCPU is offline the
    /// hypervisor is told to wake it.
    fn make_runnable(&mut self, t: usize, fx: &mut Effects) {
        let v = self.threads[t].vcpu;
        self.vcpus[v].runq.push_back(t);
        if !self.vcpus[v].online {
            fx.wake_vcpus.push(v);
        } else if self.vcpus[v].current.is_none() {
            // Online but idle-transitioning; let the VMM re-query.
            fx.refresh_vcpus.push(v);
        }
    }
}

/// Fold a [`TState`] with a distinct discriminant per variant plus every
/// payload field, so no two states can ever alias in the fingerprint.
fn fold_tstate(s: &TState, h: &mut asman_sim::Fnv) {
    match s {
        TState::Fetch => h.write_u32(0),
        TState::Work { remaining, then } => {
            h.write_u32(1);
            h.write_u64(remaining.as_u64());
            fold_afterwork(then, h);
        }
        TState::SpinKernel {
            lock,
            since,
            purpose,
        } => {
            h.write_u32(2);
            h.write_u32(*lock);
            h.write_u64(since.as_u64());
            fold_purpose(purpose, h);
        }
        TState::BlockedBarrier { id } => {
            h.write_u32(3);
            h.write_u32(*id);
        }
        TState::BlockedSem { id, since } => {
            h.write_u32(4);
            h.write_u32(*id);
            h.write_u64(since.as_u64());
        }
        TState::BlockedPeer { peer, target } => {
            h.write_u32(5);
            h.write_usize(*peer);
            h.write_u64(*target);
        }
        TState::Sleep { until } => {
            h.write_u32(6);
            h.write_u64(until.as_u64());
        }
        TState::Done => h.write_u32(7),
    }
}

/// Fold an [`AfterWork`] continuation (discriminant + payload).
fn fold_afterwork(a: &AfterWork, h: &mut asman_sim::Fnv) {
    match a {
        AfterWork::Fetch => h.write_u32(0),
        AfterWork::ReleaseThenFetch => h.write_u32(1),
        AfterWork::ReleaseThenSpin { id } => {
            h.write_u32(2);
            h.write_u32(*id);
        }
        AfterWork::ReleaseThenWake { id } => {
            h.write_u32(3);
            h.write_u32(*id);
        }
        AfterWork::ReleaseThenBlock { id } => {
            h.write_u32(4);
            h.write_u32(*id);
        }
        AfterWork::TryFutexEnqueue { id, gen } => {
            h.write_u32(5);
            h.write_u32(*id);
            h.write_u64(*gen);
        }
        AfterWork::TryPeerEnqueue { peer, target } => {
            h.write_u32(6);
            h.write_usize(*peer);
            h.write_u64(*target);
        }
        AfterWork::ReleaseThenBlockPeer { peer, target } => {
            h.write_u32(7);
            h.write_usize(*peer);
            h.write_u64(*target);
        }
        AfterWork::ReleaseThenWakePeers => h.write_u32(8),
        AfterWork::ReleaseThenResume => h.write_u32(9),
    }
}

/// Fold a [`LockPurpose`] (discriminant + payload).
fn fold_purpose(p: &LockPurpose, h: &mut asman_sim::Fnv) {
    match p {
        LockPurpose::Critical { hold } => {
            h.write_u32(0);
            h.write_u64(hold.as_u64());
        }
        LockPurpose::BarrierEnter { id } => {
            h.write_u32(1);
            h.write_u32(*id);
        }
        LockPurpose::FutexEnqueue { id, gen } => {
            h.write_u32(2);
            h.write_u32(*id);
            h.write_u64(*gen);
        }
        LockPurpose::TimerTick => h.write_u32(3),
        LockPurpose::PeerEnqueue { peer, target } => {
            h.write_u32(4);
            h.write_usize(*peer);
            h.write_u64(*target);
        }
        LockPurpose::PeerWake => h.write_u32(5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NullObserver;
    use asman_workloads::ScriptProgram;

    fn costs() -> GuestCosts {
        GuestCosts::default()
    }

    fn fx() -> Effects {
        Effects::default()
    }

    /// Single thread, pure compute: dispatch -> Timed -> work_complete ->
    /// Done/Idle.
    #[test]
    fn single_thread_compute_lifecycle() {
        let p = ScriptProgram::new("t", vec![vec![Op::Compute(Cycles(1_000))]]);
        let mut g = GuestKernel::new(Box::new(p), 1, costs(), Box::new(NullObserver));
        let mut e = fx();
        let w = g.dispatch(0, Cycles(0), Cycles(0), &mut e);
        assert_eq!(
            w,
            GuestWork::Timed {
                thread: 0,
                dur: Cycles(1_000)
            }
        );
        let w2 = g.work_complete(0, Cycles(1_000), &mut e);
        assert_eq!(w2, GuestWork::Idle);
        assert!(g.is_finished());
        assert_eq!(g.stats().finished_at, Some(Cycles(1_000)));
        assert_eq!(g.stats().useful_cycles, Cycles(1_000));
    }

    /// Preemption mid-segment preserves remaining work.
    #[test]
    fn preempt_charges_partial_progress() {
        let p = ScriptProgram::new("t", vec![vec![Op::Compute(Cycles(1_000))]]);
        let mut g = GuestKernel::new(Box::new(p), 1, costs(), Box::new(NullObserver));
        let mut e = fx();
        g.dispatch(0, Cycles(0), Cycles(0), &mut e);
        g.preempt(0, Cycles(400));
        // Re-dispatch later: 600 cycles remain.
        let w = g.dispatch(0, Cycles(10_000), Cycles(0), &mut e);
        assert_eq!(
            w,
            GuestWork::Timed {
                thread: 0,
                dur: Cycles(600)
            }
        );
        let w2 = g.work_complete(0, Cycles(10_600), &mut e);
        assert_eq!(w2, GuestWork::Idle);
        assert!(g.is_finished());
    }

    /// Two threads on two VCPUs contending one lock: the second spins
    /// until the first releases; wait time is measured from the attempt.
    #[test]
    fn contended_lock_spins_and_hands_off() {
        let cs = |hold| Op::CriticalSection {
            lock: 0,
            hold: Cycles(hold),
        };
        let p = ScriptProgram::new("t", vec![vec![cs(1_000)], vec![cs(500)]]);
        let mut g = GuestKernel::new(Box::new(p), 2, costs(), Box::new(NullObserver));
        let mut e = fx();
        // Thread 0 acquires at t=0.
        let w0 = g.dispatch(0, Cycles(0), Cycles(0), &mut e);
        assert_eq!(
            w0,
            GuestWork::Timed {
                thread: 0,
                dur: Cycles(1_000)
            }
        );
        // Thread 1 contends at t=100: spins.
        let w1 = g.dispatch(1, Cycles(100), Cycles(0), &mut e);
        assert_eq!(w1, GuestWork::Spin { thread: 1 });
        // Thread 0 finishes its hold at t=1000: releases, grants to 1.
        e.clear();
        let w0b = g.work_complete(0, Cycles(1_000), &mut e);
        assert_eq!(w0b, GuestWork::Idle, "thread 0 done");
        assert_eq!(e.refresh_vcpus, vec![1], "vcpu 1's work changed");
        // VCPU 1 now has timed work: the 500-cycle hold.
        let w1b = g.dispatch_work(1, Cycles(1_000), &mut e);
        assert_eq!(
            w1b,
            GuestWork::Timed {
                thread: 1,
                dur: Cycles(500)
            }
        );
        // Wait time = 1000-100 + handoff.
        assert_eq!(g.stats().wait_hist.count(), 2);
        let expected_wait = 900 + costs().lock_handoff.as_u64();
        assert_eq!(g.stats().wait_trace.samples().len(), 1);
        assert_eq!(
            g.stats().wait_trace.samples()[0].1.wait,
            Cycles(expected_wait)
        );
        // Spin burn was charged.
        assert_eq!(g.stats().spin_kernel_cycles, Cycles(900));
    }

    /// The clean-after half of the long-horizon hardening: a cumulative
    /// spin counter sitting near the ceiling saturates at `Cycles::MAX`
    /// instead of overflowing. Pre-fix (plain `+=`), this test died in
    /// debug builds with "attempt to add with overflow" when the 900
    /// spin cycles landed.
    #[test]
    fn spin_counters_saturate_near_the_ceiling() {
        let cs = |hold| Op::CriticalSection {
            lock: 0,
            hold: Cycles(hold),
        };
        let p = ScriptProgram::new("t", vec![vec![cs(1_000)], vec![cs(500)]]);
        let mut g = GuestKernel::new(Box::new(p), 2, costs(), Box::new(NullObserver));
        g.stats_mut().spin_kernel_cycles = Cycles(u64::MAX - 10);
        let mut e = fx();
        g.dispatch(0, Cycles(0), Cycles(0), &mut e);
        g.dispatch(1, Cycles(100), Cycles(0), &mut e); // contender spins
        e.clear();
        g.work_complete(0, Cycles(1_000), &mut e); // charges 900 spin cycles
        assert_eq!(g.stats().spin_kernel_cycles, Cycles::MAX, "pinned, not wrapped");
    }

    /// Lock-holder preemption: holder goes offline mid-hold; the waiter's
    /// wait spans the holder's offline gap and is counted as a holder
    /// preemption.
    #[test]
    fn lock_holder_preemption_produces_long_wait() {
        let cs = |hold| Op::CriticalSection {
            lock: 0,
            hold: Cycles(hold),
        };
        let p = ScriptProgram::new("t", vec![vec![cs(10_000)], vec![cs(500)]]);
        let mut g = GuestKernel::new(Box::new(p), 2, costs(), Box::new(NullObserver));
        let mut e = fx();
        g.dispatch(0, Cycles(0), Cycles(0), &mut e);
        // Holder preempted 5000 cycles into its 10000-cycle hold.
        g.preempt(0, Cycles(5_000));
        assert_eq!(g.stats().holder_preemptions, 1);
        // Waiter arrives and spins across the holder's absence.
        let w1 = g.dispatch(1, Cycles(6_000), Cycles(0), &mut e);
        assert_eq!(w1, GuestWork::Spin { thread: 1 });
        // Holder comes back much later (simulating a 2^21-cycle gap).
        let resume = Cycles(5_000 + (1 << 21));
        let w0 = g.dispatch(0, resume, Cycles(0), &mut e);
        assert_eq!(
            w0,
            GuestWork::Timed {
                thread: 0,
                dur: Cycles(5_000)
            }
        );
        e.clear();
        g.work_complete(0, resume + Cycles(5_000), &mut e);
        assert_eq!(e.refresh_vcpus, vec![1]);
        // The recorded wait is over-threshold (> 2^20).
        assert_eq!(g.stats().over_threshold_count(20), 1);
    }

    /// A full barrier among 2 threads: first arriver spins then the last
    /// arriver completes; both proceed.
    #[test]
    fn barrier_releases_spinning_waiter() {
        // Timer injection off so announced durations equal the raw costs.
        let mut c = costs();
        c.timer_hold = Cycles(0);
        let script = vec![Op::Barrier { id: 0 }, Op::Compute(Cycles(100))];
        let p = ScriptProgram::homogeneous("b", 2, script);
        let mut g = GuestKernel::new(Box::new(p), 2, c, Box::new(NullObserver));
        let mut e = fx();
        // Thread 0 arrives first: barrier-enter bookkeeping.
        let w0 = g.dispatch(0, Cycles(0), Cycles(0), &mut e);
        let GuestWork::Timed { thread: 0, dur } = w0 else {
            panic!("expected barrier enter work, got {w0:?}");
        };
        assert_eq!(dur, costs().barrier_enter);
        // Finish bookkeeping: thread 0 enters the spin phase.
        let w0b = g.work_complete(0, dur, &mut e);
        let GuestWork::Timed {
            thread: 0,
            dur: spin,
        } = w0b
        else {
            panic!("expected spin budget, got {w0b:?}");
        };
        assert_eq!(spin, costs().barrier_spin_budget);
        // Thread 1 arrives: it is the last; wake work.
        let t1_start = Cycles(2_000);
        let w1 = g.dispatch(1, t1_start, Cycles(0), &mut e);
        let GuestWork::Timed {
            thread: 1,
            dur: wake,
        } = w1
        else {
            panic!("expected wake work, got {w1:?}");
        };
        assert_eq!(
            wake,
            costs().barrier_wake_base + costs().barrier_wake_per_waiter
        );
        e.clear();
        let w1b = g.work_complete(1, t1_start + wake, &mut e);
        // Thread 1 proceeds to its compute.
        assert_eq!(
            w1b,
            GuestWork::Timed {
                thread: 1,
                dur: Cycles(100)
            }
        );
        // Thread 0 (spinning online) was refreshed to exit the barrier.
        assert_eq!(e.refresh_vcpus, vec![0]);
        let w0c = g.dispatch_work(0, t1_start + wake, &mut e);
        let GuestWork::Timed {
            thread: 0,
            dur: exit,
        } = w0c
        else {
            panic!("expected barrier exit, got {w0c:?}");
        };
        assert_eq!(exit, costs().barrier_exit);
        assert_eq!(g.stats().barriers_completed, 1);
    }

    /// If a spinner exhausts its budget it blocks on the futex and its
    /// VCPU goes idle; barrier completion wakes the VCPU.
    #[test]
    fn barrier_spinner_blocks_then_wakes() {
        // Timer injection off so the op sequence is exactly the barrier
        // protocol under test.
        let mut c = costs();
        c.timer_hold = Cycles(0);
        let script = vec![Op::Barrier { id: 0 }, Op::Compute(Cycles(100))];
        let p = ScriptProgram::homogeneous("b", 2, script);
        let mut g = GuestKernel::new(Box::new(p), 2, c, Box::new(NullObserver));
        let mut e = fx();
        // Thread 0 arrives, finishes bookkeeping, exhausts its spin
        // budget, enqueues on the futex and blocks.
        let mut now = Cycles(0);
        let mut w = g.dispatch(0, now, Cycles(0), &mut e);
        for _ in 0..8 {
            match w {
                GuestWork::Timed { thread: 0, dur } => {
                    now += dur;
                    w = g.work_complete(0, now, &mut e);
                }
                GuestWork::Idle => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(w, GuestWork::Idle, "vcpu 0 idles once thread 0 blocks");
        assert!(matches!(
            g.threads[0].state,
            TState::BlockedBarrier { id: 0 }
        ));
        g.preempt(0, now);
        // Thread 1 arrives much later and completes the barrier.
        let mut now1 = now + Cycles(50_000);
        let mut w1 = g.dispatch(1, now1, Cycles(0), &mut e);
        e.clear();
        loop {
            match w1 {
                GuestWork::Timed { thread: 1, dur } => {
                    now1 += dur;
                    w1 = g.work_complete(1, now1, &mut e);
                }
                GuestWork::Idle => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(g.is_finished() || matches!(g.threads[1].state, TState::Done));
        // VCPU 0 must have been asked to wake for the blocked thread.
        assert!(e.wake_vcpus.contains(&0), "wake_vcpus: {:?}", e.wake_vcpus);
        // Resume VCPU 0: it runs the wake-latency + exit work then its
        // compute, then finishes.
        let mut now0 = now1 + Cycles(1_000);
        let mut w0 = g.dispatch(0, now0, Cycles(0), &mut e);
        loop {
            match w0 {
                GuestWork::Timed { thread: 0, dur } => {
                    now0 += dur;
                    w0 = g.work_complete(0, now0, &mut e);
                }
                GuestWork::Idle => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(g.is_finished());
        assert_eq!(g.stats().barriers_completed, 1);
    }

    /// Two threads sharing one VCPU must round-robin on the guest quantum.
    #[test]
    fn guest_quantum_rotates_threads() {
        // Disable timer injection so the op stream is purely the quantum
        // rotation under test.
        let mut c = costs();
        c.timer_hold = Cycles(0);
        let q = c.guest_quantum;
        let big = Cycles(q.as_u64() * 10);
        let p = ScriptProgram::new("rr", vec![vec![Op::Compute(big)], vec![Op::Compute(big)]]);
        let mut g = GuestKernel::new(Box::new(p), 1, c, Box::new(NullObserver));
        let mut e = fx();
        let w = g.dispatch(0, Cycles(0), Cycles(0), &mut e);
        // First slice: thread 0, capped at the quantum.
        assert_eq!(w, GuestWork::Timed { thread: 0, dur: q });
        let w2 = g.work_complete(0, q, &mut e);
        // Rotation: thread 1 now runs.
        assert_eq!(w2, GuestWork::Timed { thread: 1, dur: q });
        let w3 = g.work_complete(0, q + q, &mut e);
        assert_eq!(w3, GuestWork::Timed { thread: 0, dur: q });
    }

    /// Sleeping threads release the VCPU and wake via timer.
    #[test]
    fn sleep_blocks_and_timer_wakes() {
        let p = ScriptProgram::new(
            "s",
            vec![vec![Op::Sleep(Cycles(5_000)), Op::Compute(Cycles(10))]],
        );
        let mut g = GuestKernel::new(Box::new(p), 1, costs(), Box::new(NullObserver));
        let mut e = fx();
        let w = g.dispatch(0, Cycles(0), Cycles(0), &mut e);
        assert_eq!(w, GuestWork::Idle);
        assert_eq!(e.sleep_timers, vec![(0, Cycles(5_000))]);
        g.preempt(0, Cycles(0));
        e.clear();
        g.sleep_timer(0, Cycles(5_000), &mut e);
        assert_eq!(e.wake_vcpus, vec![0]);
        let w2 = g.dispatch(0, Cycles(5_000), Cycles(0), &mut e);
        assert_eq!(
            w2,
            GuestWork::Timed {
                thread: 0,
                dur: Cycles(10)
            }
        );
    }

    /// Marks are zero-cost and counted.
    #[test]
    fn marks_count_transactions_and_rounds() {
        let p = ScriptProgram::new(
            "m",
            vec![vec![
                Op::Mark(Mark::Transaction),
                Op::Mark(Mark::Transaction),
                Op::Mark(Mark::RoundEnd),
                Op::Compute(Cycles(10)),
            ]],
        );
        let mut g = GuestKernel::new(Box::new(p), 1, costs(), Box::new(NullObserver));
        let mut e = fx();
        let w = g.dispatch(0, Cycles(77), Cycles(0), &mut e);
        assert_eq!(
            w,
            GuestWork::Timed {
                thread: 0,
                dur: Cycles(10)
            }
        );
        assert_eq!(g.stats().transactions, 2);
        assert_eq!(g.stats().vm_rounds_completed(), 1);
        assert_eq!(g.stats().vm_round_time(0), Some(Cycles(77)));
    }

    /// An offline waiter does not receive a released lock; it barges on
    /// its next dispatch instead.
    #[test]
    fn offline_waiter_acquires_on_redispatch() {
        let cs = |hold| Op::CriticalSection {
            lock: 0,
            hold: Cycles(hold),
        };
        let p = ScriptProgram::new("t", vec![vec![cs(1_000)], vec![cs(500)]]);
        let mut g = GuestKernel::new(Box::new(p), 2, costs(), Box::new(NullObserver));
        let mut e = fx();
        g.dispatch(0, Cycles(0), Cycles(0), &mut e);
        assert_eq!(
            g.dispatch(1, Cycles(100), Cycles(0), &mut e),
            GuestWork::Spin { thread: 1 }
        );
        // Waiter preempted while spinning.
        g.preempt(1, Cycles(500));
        // Holder releases with no active spinner.
        e.clear();
        g.work_complete(0, Cycles(1_000), &mut e);
        assert!(e.refresh_vcpus.is_empty(), "no online waiter to grant");
        // Waiter redispatced: acquires the now-free lock immediately.
        let w = g.dispatch(1, Cycles(20_000), Cycles(0), &mut e);
        assert_eq!(
            w,
            GuestWork::Timed {
                thread: 1,
                dur: Cycles(500)
            }
        );
        // Its wait spans from the original attempt at t=100.
        let waits = g.stats().wait_trace.samples();
        assert_eq!(waits.len(), 1);
        assert!(waits[0].1.wait >= Cycles(19_900));
    }

    /// vcpu_runnable reflects queued work.
    #[test]
    fn vcpu_runnable_tracks_states() {
        let p = ScriptProgram::new(
            "r",
            vec![vec![Op::Sleep(Cycles(100)), Op::Compute(Cycles(10))]],
        );
        let mut g = GuestKernel::new(Box::new(p), 1, costs(), Box::new(NullObserver));
        assert!(g.vcpu_runnable(0));
        let mut e = fx();
        assert_eq!(g.dispatch(0, Cycles(0), Cycles(0), &mut e), GuestWork::Idle);
        assert!(!g.vcpu_runnable(0), "thread asleep");
        g.preempt(0, Cycles(0));
        g.sleep_timer(0, Cycles(100), &mut e);
        assert!(g.vcpu_runnable(0));
    }
}
