//! The Monitoring Module interface and VCRD types.
//!
//! The paper's Monitoring Module runs inside each guest kernel: it
//! instruments the spinlock path, detects *over-threshold* waits
//! (longer than 2^δ cycles, δ = 20), adjusts the VM's **VCPU Related
//! Degree** (VCRD) and notifies the VMM through the `do_vcrd_op`
//! hypercall. The detection/estimation logic (Algorithms 1–2) is the
//! paper's contribution and lives in `asman-core`; this module defines the
//! trait boundary so baseline schedulers can run with a no-op observer.

use asman_sim::Cycles;
use serde::{Deserialize, Serialize};

/// The VCPU Related Degree of a VM: how strongly its VCPUs currently need
/// to be online simultaneously.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Vcrd {
    /// VCPUs may be scheduled asynchronously (the default).
    #[default]
    Low,
    /// VCPUs should be coscheduled: over-threshold spinlocks were detected
    /// and a locality of synchronization is believed to be in progress.
    High,
}

/// A VCRD change requested by the Monitoring Module, delivered to the
/// adaptive scheduler via the `do_vcrd_op` hypercall.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VcrdUpdate {
    /// The new VCRD value.
    pub vcrd: Vcrd,
    /// For `High`: the estimated lasting time x_{i+1} of the locality; the
    /// hypervisor arms a timer and calls [`SpinObserver::on_vcrd_timer`]
    /// when it fires.
    pub expire_in: Option<Cycles>,
}

/// Guest-side observer of spinlock behaviour — the Monitoring Module hook.
///
/// The guest kernel invokes this on **every** kernel spinlock acquisition
/// with the measured waiting time, and when a previously armed estimation
/// timer fires. Returning `Some` requests a hypercall to the VMM.
pub trait SpinObserver: Send {
    /// A spinlock was acquired at `now` after waiting `wait` cycles.
    fn on_spinlock_wait(&mut self, now: Cycles, wait: Cycles) -> Option<VcrdUpdate>;

    /// The timer armed by a previous [`VcrdUpdate`] fired.
    fn on_vcrd_timer(&mut self, now: Cycles) -> Option<VcrdUpdate>;
}

/// Observer used by the unmodified Credit scheduler and the static
/// coscheduler: no monitoring, no hypercalls.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl SpinObserver for NullObserver {
    fn on_spinlock_wait(&mut self, _now: Cycles, _wait: Cycles) -> Option<VcrdUpdate> {
        None
    }
    fn on_vcrd_timer(&mut self, _now: Cycles) -> Option<VcrdUpdate> {
        None
    }
}

/// Configuration shared by monitoring implementations.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Over-threshold exponent δ: waits above `2^delta` cycles trigger a
    /// VCRD adjusting event. The paper uses δ = 20.
    pub delta: u32,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig { delta: 20 }
    }
}

impl MonitorConfig {
    /// The over-threshold bound in cycles (`2^delta`).
    pub fn threshold(&self) -> Cycles {
        Cycles::pow2(self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_is_2_pow_20() {
        assert_eq!(MonitorConfig::default().threshold(), Cycles(1 << 20));
        assert_eq!(MonitorConfig { delta: 16 }.threshold(), Cycles(1 << 16));
    }

    #[test]
    fn null_observer_never_signals() {
        let mut o = NullObserver;
        assert!(o.on_spinlock_wait(Cycles(1), Cycles(u64::MAX)).is_none());
        assert!(o.on_vcrd_timer(Cycles(2)).is_none());
    }

    #[test]
    fn vcrd_default_is_low() {
        assert_eq!(Vcrd::default(), Vcrd::Low);
    }
}
