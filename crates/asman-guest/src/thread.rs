//! Guest thread state machine types.

use asman_sim::Cycles;

/// Why a thread is trying to acquire a kernel spinlock; determines what it
/// does once it gets the lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockPurpose {
    /// Workload critical section: hold for `hold` cycles, then release.
    Critical {
        /// Cycles of work performed under the lock.
        hold: Cycles,
    },
    /// Barrier arrival bookkeeping (under the barrier's lock).
    BarrierEnter {
        /// Barrier index.
        id: u32,
    },
    /// Futex enqueue after the barrier spin budget ran out.
    FutexEnqueue {
        /// Barrier index.
        id: u32,
        /// Barrier generation observed when spinning began; if it advanced
        /// meanwhile, the thread proceeds instead of blocking.
        gen: u64,
    },
    /// Guest timer interrupt: the periodic tick's timekeeping/scheduler
    /// bookkeeping under the global `xtime`-style lock.
    TimerTick,
    /// Futex enqueue after a pipeline spin-wait exhausted its budget.
    PeerEnqueue {
        /// Thread whose progress is awaited.
        peer: usize,
        /// Progress value being waited for.
        target: u64,
    },
    /// Futex wake of blocked pipeline waiters by an advancing producer.
    PeerWake,
}

/// What happens when a thread's current timed segment reaches zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AfterWork {
    /// Fetch the next op from the workload program.
    Fetch,
    /// Release the held lock, then fetch.
    ReleaseThenFetch,
    /// Release the barrier lock and start spin-waiting on barrier `id`
    /// (the segment was the arrival bookkeeping).
    ReleaseThenSpin {
        /// Barrier index.
        id: u32,
    },
    /// Release the barrier lock and complete barrier `id`, waking all
    /// waiters (the segment was the last arriver's wake walk).
    ReleaseThenWake {
        /// Barrier index.
        id: u32,
    },
    /// Release the barrier lock and block on the futex for barrier `id`
    /// (the segment was the futex enqueue).
    ReleaseThenBlock {
        /// Barrier index.
        id: u32,
    },
    /// The spin budget for barrier `id` ran out: try to take the barrier
    /// lock to enqueue on the futex.
    TryFutexEnqueue {
        /// Barrier index.
        id: u32,
        /// Generation observed when spinning began.
        gen: u64,
    },
    /// The pipeline spin budget ran out: try to take the futex bucket
    /// lock to block until the peer advances.
    TryPeerEnqueue {
        /// Thread whose progress is awaited.
        peer: usize,
        /// Progress value being waited for.
        target: u64,
    },
    /// Release the bucket lock and block waiting for the peer's progress.
    ReleaseThenBlockPeer {
        /// Thread whose progress is awaited.
        peer: usize,
        /// Progress value being waited for.
        target: u64,
    },
    /// Release the bucket lock and wake every blocked pipeline waiter of
    /// this thread whose target is satisfied (futex wake walk done).
    ReleaseThenWakePeers,
    /// Release the timer lock and resume the interrupted segment stashed
    /// in [`GThread::resume`].
    ReleaseThenResume,
}

/// Execution state of a guest thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TState {
    /// Needs its next op from the program (runnable).
    Fetch,
    /// Executing a timed segment (runnable; progresses only while its
    /// VCPU is online and it is the VCPU's current thread).
    Work {
        /// Cycles of the segment still to execute.
        remaining: Cycles,
        /// Continuation once `remaining` reaches zero.
        then: AfterWork,
    },
    /// Busy-waiting on kernel spinlock `lock` (burns CPU, no progress).
    SpinKernel {
        /// Lock index being waited on.
        lock: u32,
        /// Time the acquisition attempt started (for waiting-time
        /// measurement — the paper's hrtimer instrumentation).
        since: Cycles,
        /// What to do once the lock is granted.
        purpose: LockPurpose,
    },
    /// Blocked in a futex wait for barrier `id` (no CPU use).
    BlockedBarrier {
        /// Barrier index.
        id: u32,
    },
    /// Blocked on a counting semaphore (no CPU use).
    BlockedSem {
        /// Semaphore index.
        id: u32,
        /// Time the wait began (for waiting-time measurement).
        since: Cycles,
    },
    /// Blocked in a futex wait for a peer's progress (no CPU use).
    BlockedPeer {
        /// Thread whose progress is awaited.
        peer: usize,
        /// Progress value being waited for.
        target: u64,
    },
    /// Sleeping until an absolute deadline (no CPU use).
    Sleep {
        /// Absolute wake-up time.
        until: Cycles,
    },
    /// Finished its program.
    Done,
}

impl TState {
    /// Whether the thread can be selected by the guest scheduler.
    pub fn is_runnable(&self) -> bool {
        matches!(
            self,
            TState::Fetch | TState::Work { .. } | TState::SpinKernel { .. }
        )
    }

    /// Whether the thread consumes CPU without making progress.
    pub fn is_spinning(&self) -> bool {
        matches!(self, TState::SpinKernel { .. })
    }
}

/// One guest thread.
#[derive(Clone, Debug)]
pub struct GThread {
    /// VM-local VCPU slot the thread is affine to.
    pub vcpu: usize,
    /// Lock currently held, if any (at most one in this model).
    pub held: Option<u32>,
    /// Execution state.
    pub state: TState,
    /// Rounds completed (count of `Mark::RoundEnd` seen).
    pub rounds: u64,
    /// Published progress counter (incremented by `Op::Advance`).
    pub progress: u64,
    /// Work segment stashed by a timer-interrupt injection, restored by
    /// [`AfterWork::ReleaseThenResume`].
    pub resume: Option<(Cycles, AfterWork)>,
    /// Threads currently spin-waiting on this thread's progress.
    pub spin_waiters: Vec<usize>,
    /// Threads futex-blocked on this thread's progress, with their
    /// targets.
    pub blocked_waiters: Vec<(usize, u64)>,
}

impl GThread {
    /// A fresh thread pinned to `vcpu`, ready to fetch its first op.
    pub fn new(vcpu: usize) -> Self {
        GThread {
            vcpu,
            held: None,
            state: TState::Fetch,
            rounds: 0,
            progress: 0,
            resume: None,
            spin_waiters: Vec::new(),
            blocked_waiters: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runnability_classification() {
        assert!(TState::Fetch.is_runnable());
        assert!(TState::Work {
            remaining: Cycles(1),
            then: AfterWork::Fetch
        }
        .is_runnable());
        assert!(TState::SpinKernel {
            lock: 0,
            since: Cycles(0),
            purpose: LockPurpose::Critical { hold: Cycles(1) }
        }
        .is_runnable());
        assert!(!TState::BlockedBarrier { id: 0 }.is_runnable());
        assert!(!TState::BlockedPeer { peer: 0, target: 1 }.is_runnable());
        assert!(!TState::Sleep { until: Cycles(5) }.is_runnable());
        assert!(!TState::Done.is_runnable());
    }

    #[test]
    fn spinning_classification() {
        assert!(TState::SpinKernel {
            lock: 1,
            since: Cycles(2),
            purpose: LockPurpose::BarrierEnter { id: 0 }
        }
        .is_spinning());
        assert!(!TState::Fetch.is_spinning());
    }

    #[test]
    fn new_thread_is_fetchable() {
        let t = GThread::new(3);
        assert_eq!(t.vcpu, 3);
        assert_eq!(t.state, TState::Fetch);
        assert!(t.held.is_none());
        assert_eq!(t.rounds, 0);
    }
}
