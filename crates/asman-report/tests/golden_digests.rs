//! Golden-digest regression pins for every `repro` figure target.
//!
//! Each figure runs once at problem class S (the quick CI class) with
//! the default seed and a fixed round count, and its fully serialized
//! artifact is hashed with FNV-1a — the same stable, dependency-free
//! digest the cluster experiment and the differential auditor use. The
//! pinned values below are the repository's contract that *any* change
//! to simulation behavior is intentional: an innocent-looking refactor
//! that shifts one event reorders one scheduling decision, changes one
//! series value, and flips the digest.
//!
//! When a change legitimately alters results (new feature, fixed bug),
//! re-pin by running this test and copying the table from the failure
//! message — the assertion prints every actual digest on mismatch.
//!
//! Digests are worker-count independent by construction (cells never
//! share state; see `jobs_bitident.rs`), so the runs here use all
//! available parallelism.

use asman_cluster::ChurnPlan;
use asman_report::cluster::{self, ClusterParams};
use asman_report::soak::{self, SoakParams};
use asman_report::figures::{
    fig01, fig02, fig07, fig08, fig09, fig10, fig11, fig12, FigureParams,
};
use asman_workloads::ProblemClass;
use serde::Serialize;

/// The canonical quick-run parameters: class S, default seed, two
/// rounds. Matches the CI smoke configuration.
fn params() -> FigureParams {
    FigureParams {
        class: ProblemClass::S,
        seed: 42,
        rounds: 2,
        jobs: 0,
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn digest<T: Serialize>(artifact: &T) -> String {
    let json = serde_json::to_string(artifact).expect("serialize artifact");
    format!("{:016x}", fnv1a(&json))
}

/// Every figure target and its pinned class-S digest.
const GOLDEN: [(&str, &str); 10] = [
    ("fig1", "82af5c9243647087"),
    ("fig2", "73707e33e0ece968"),
    ("fig7", "e78fc80a04d78280"),
    ("fig8", "557e5716fbe6e5a4"),
    ("fig9", "1142403903bf7e59"),
    ("fig10", "823b95d9766b284e"),
    ("fig11", "d43218a300fe0ab0"),
    ("fig12", "399e7ab0f4dc7f8f"),
    ("cluster", "4ae12ea99738a6a4"),
    ("soak", "bab5c163a43c7001"),
];

fn actual_digests() -> Vec<(&'static str, String)> {
    let p = params();
    vec![
        ("fig1", digest(&fig01::run(&p))),
        ("fig2", digest(&fig02::run(&p))),
        ("fig7", digest(&fig07::run(&p))),
        ("fig8", digest(&fig08::run(&p))),
        ("fig9", digest(&fig09::run(&p))),
        ("fig10", digest(&fig10::run(&p))),
        ("fig11", digest(&fig11::run(&p))),
        ("fig12", digest(&fig12::run(&p))),
        (
            "cluster",
            digest(&cluster::run(&ClusterParams {
                epochs: 6,
                ..ClusterParams::default()
            })),
        ),
        // A miniature churned soak: long enough to cross several audit
        // checkpoints and slot-reuse cycles, short enough for CI.
        (
            "soak",
            digest(&soak::run(&SoakParams {
                epochs: 800,
                churn: ChurnPlan::generate(42, 5, 800, 3),
                audit_every: 200,
                crosscheck_epochs: 200,
                ..SoakParams::default()
            })),
        ),
    ]
}

#[test]
fn every_repro_target_matches_its_pinned_digest() {
    let actual = actual_digests();
    let table: String = actual
        .iter()
        .map(|(name, d)| format!("    ({name:?}, {d:?}),\n"))
        .collect();
    for ((name, pinned), (aname, adigest)) in GOLDEN.iter().zip(actual.iter()) {
        assert_eq!(name, aname, "target order drifted");
        assert_eq!(
            pinned, adigest,
            "digest for `{name}` changed; if intentional, re-pin GOLDEN as:\n{table}"
        );
    }
}
