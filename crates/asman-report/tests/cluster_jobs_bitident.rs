//! Regression test for the parallel cluster epoch driver: the entire
//! cluster experiment must be bit-identical regardless of how many
//! workers advance the hosts within each epoch. Sweeps jobs ∈ {1, 2, 8}
//! (sequential, fewer workers than hosts, more workers than hosts) over
//! all three placement policies, clean and under a fault plan that
//! exercises abort, slow-host, and crash recovery, and compares:
//!
//! * the serialized [`ClusterExperiment`] (every policy's full
//!   `ClusterReport` plus its digest),
//! * the merged flight-recorder streams of every host,
//! * the merged metrics registries (per-host scheduler counters and
//!   the cluster recovery counters),
//! * the telemetry series report (`repro series`: epoch samples,
//!   anomaly flags, latency quantiles), and
//! * the migration-span cost table derived from the flight streams.
//!
//! Any divergence means worker scheduling leaked into simulation
//! results — the one thing the epoch-barrier design must never allow.

use asman_cluster::Policy;
use asman_report::cluster::{self, ClusterParams, CLUSTER_STREAM_BUDGET};
use asman_report::{flightrec, series};
use asman_sim::{merge_streams, CatMask, FaultPlan};

const JOBS_SWEEP: [usize; 3] = [1, 2, 8];

fn params(jobs: usize, faults: FaultPlan) -> ClusterParams {
    ClusterParams {
        hosts: 4,
        gangs: 2,
        epochs: 6,
        seed: 42,
        jobs,
        policies: Policy::ALL.to_vec(),
        faults,
        max_moves: 1,
    }
}

fn faulted_plan() -> FaultPlan {
    FaultPlan::parse("abort@0,slow@2:h2:30,crash@4:h1").expect("valid plan")
}

/// Serialized experiment JSON for one jobs count.
fn experiment_json(jobs: usize, faults: FaultPlan) -> String {
    let exp = cluster::run(&params(jobs, faults));
    String::from_utf8(serde_json::to_vec_pretty(&exp).expect("serialize")).expect("utf8")
}

/// Flight streams and metrics for one (jobs, policy) cell, rendered to
/// comparable bytes.
fn flight_and_metrics(jobs: usize, policy: Policy, faults: FaultPlan) -> (Vec<u8>, Vec<String>) {
    let (streams, metrics) = cluster::capture_flight(
        &params(jobs, faults),
        policy,
        CatMask::ALL,
        100_000,
        CLUSTER_STREAM_BUDGET,
    );
    let flight = serde_json::to_vec(&streams.into_iter().collect::<Vec<_>>()).expect("serialize");
    let counters: Vec<String> = metrics
        .counters()
        .map(|(name, value)| format!("{name}={value}"))
        .collect();
    (flight, counters)
}

#[test]
fn clean_experiment_bit_identical_across_jobs() {
    let baseline = experiment_json(1, FaultPlan::empty());
    assert!(baseline.contains("\"digest\""));
    for jobs in &JOBS_SWEEP[1..] {
        assert_eq!(
            baseline,
            experiment_json(*jobs, FaultPlan::empty()),
            "clean cluster experiment differs between jobs=1 and jobs={jobs}"
        );
    }
}

#[test]
fn faulted_experiment_bit_identical_across_jobs() {
    let baseline = experiment_json(1, faulted_plan());
    // The plan actually fired: recovery shows up in the report.
    assert!(
        baseline.contains("recovery"),
        "fault plan should leave recovery evidence in the report"
    );
    for jobs in &JOBS_SWEEP[1..] {
        assert_eq!(
            baseline,
            experiment_json(*jobs, faulted_plan()),
            "faulted cluster experiment differs between jobs=1 and jobs={jobs}"
        );
    }
}

/// Serialized telemetry series report for one jobs count.
fn series_json(jobs: usize, faults: FaultPlan) -> String {
    let rep = series::run(&series::SeriesParams {
        cluster: params(jobs, faults),
        ..series::SeriesParams::default()
    });
    String::from_utf8(serde_json::to_vec_pretty(&rep).expect("serialize")).expect("utf8")
}

#[test]
fn series_artifact_bit_identical_across_jobs_clean_and_faulted() {
    for faults in [FaultPlan::empty(), faulted_plan()] {
        let baseline = series_json(1, faults.clone());
        assert!(baseline.contains("\"samples\""));
        for jobs in &JOBS_SWEEP[1..] {
            assert_eq!(
                baseline,
                series_json(*jobs, faults.clone()),
                "series artifact differs between jobs=1 and jobs={jobs}"
            );
        }
    }
}

/// Migration-span cost table for one (jobs, policy) cell.
fn spans_json(jobs: usize, policy: Policy, faults: FaultPlan) -> Vec<u8> {
    let (streams, _) = cluster::capture_flight(
        &params(jobs, faults),
        policy,
        CatMask::ALL,
        100_000,
        CLUSTER_STREAM_BUDGET,
    );
    let merged = merge_streams(streams.into_iter().map(|(_, events)| events).collect());
    serde_json::to_vec_pretty(&flightrec::migration_spans(&merged)).expect("serialize")
}

#[test]
fn migration_span_table_bit_identical_across_jobs() {
    let spans_1 = spans_json(1, Policy::VcrdAware, faulted_plan());
    assert!(
        String::from_utf8_lossy(&spans_1).contains("\"span\""),
        "faulted vcrd-aware run must produce migration spans"
    );
    for jobs in &JOBS_SWEEP[1..] {
        assert_eq!(
            spans_1,
            spans_json(*jobs, Policy::VcrdAware, faulted_plan()),
            "span cost table differs between jobs=1 and jobs={jobs}"
        );
    }
}

#[test]
fn flight_streams_and_metrics_bit_identical_across_jobs() {
    for policy in Policy::ALL {
        let (flight_1, metrics_1) = flight_and_metrics(1, policy, faulted_plan());
        assert!(!flight_1.is_empty());
        assert!(
            metrics_1.iter().any(|c| c.starts_with("host0.")),
            "metrics registry must carry per-host counters: {metrics_1:?}"
        );
        for jobs in &JOBS_SWEEP[1..] {
            let (flight_n, metrics_n) = flight_and_metrics(*jobs, policy, faulted_plan());
            assert_eq!(
                flight_1, flight_n,
                "{policy:?} flight streams differ between jobs=1 and jobs={jobs}"
            );
            assert_eq!(
                metrics_1, metrics_n,
                "{policy:?} metrics registry differs between jobs=1 and jobs={jobs}"
            );
        }
    }
}
