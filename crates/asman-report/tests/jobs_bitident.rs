//! Regression test for the parallel sweep executor: figure output must be
//! bit-identical regardless of the worker count. Runs the full Figure 9
//! grid (49 independent machines at class S) sequentially and on four
//! workers, and compares the serialized artifacts byte for byte. The
//! flight-recorder trace bundle gets the same treatment: every exported
//! artifact (Chrome trace, LHP episodes, metrics, summary) must be
//! byte-identical between `--jobs 1` and `--jobs 4`.

use asman_report::figures::{fig09, FigureParams};
use asman_report::flightrec;
use asman_sim::CatMask;
use asman_workloads::ProblemClass;

fn fig09_json(jobs: usize) -> String {
    let fig = fig09::run(&FigureParams {
        class: ProblemClass::S,
        seed: 1,
        rounds: 2,
        jobs,
    });
    String::from_utf8(serde_json::to_vec_pretty(&fig).expect("serialize")).expect("utf8")
}

#[test]
fn fig09_bit_identical_between_jobs_1_and_4() {
    let sequential = fig09_json(1);
    let parallel = fig09_json(4);
    assert!(
        !sequential.is_empty(),
        "fig09 artifact should not be empty"
    );
    assert_eq!(
        sequential, parallel,
        "fig09 artifact differs between --jobs 1 and --jobs 4"
    );
}

fn trace_artifacts(jobs: usize) -> Vec<(String, Vec<u8>)> {
    let p = FigureParams {
        class: ProblemClass::S,
        seed: 1,
        rounds: 2,
        jobs,
    };
    flightrec::capture_bundles(&p, CatMask::ALL, 100_000)
        .into_iter()
        .flat_map(|b| {
            [
                (format!("trace_{}", b.sched), b.chrome_json),
                (format!("lhp_{}", b.sched), b.lhp_json),
                (format!("metrics_{}", b.sched), b.metrics_json),
                (format!("summary_{}", b.sched), b.summary.into_bytes()),
            ]
        })
        .collect()
}

#[test]
fn trace_bundle_bit_identical_between_jobs_1_and_4() {
    let sequential = trace_artifacts(1);
    let parallel = trace_artifacts(4);
    assert_eq!(sequential.len(), parallel.len());
    for ((name_s, bytes_s), (name_p, bytes_p)) in sequential.iter().zip(parallel.iter()) {
        assert_eq!(name_s, name_p);
        assert!(!bytes_s.is_empty(), "{name_s} artifact should not be empty");
        assert_eq!(
            bytes_s, bytes_p,
            "{name_s} differs between --jobs 1 and --jobs 4"
        );
    }
}
