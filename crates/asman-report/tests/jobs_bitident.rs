//! Regression test for the parallel sweep executor: figure output must be
//! bit-identical regardless of the worker count. Runs the full Figure 9
//! grid (49 independent machines at class S) sequentially and on four
//! workers, and compares the serialized artifacts byte for byte.

use asman_report::figures::{fig09, FigureParams};
use asman_workloads::ProblemClass;

fn fig09_json(jobs: usize) -> String {
    let fig = fig09::run(&FigureParams {
        class: ProblemClass::S,
        seed: 1,
        rounds: 2,
        jobs,
    });
    String::from_utf8(serde_json::to_vec_pretty(&fig).expect("serialize")).expect("utf8")
}

#[test]
fn fig09_bit_identical_between_jobs_1_and_4() {
    let sequential = fig09_json(1);
    let parallel = fig09_json(4);
    assert!(
        !sequential.is_empty(),
        "fig09 artifact should not be empty"
    );
    assert_eq!(
        sequential, parallel,
        "fig09 artifact differs between --jobs 1 and --jobs 4"
    );
}
