//! End-to-end CLI contract tests for the `repro` binary.
//!
//! Argument parsing happens before any simulation work, so every case
//! here is instant: `--help` exits 0 with the usage text on stdout;
//! every malformed invocation exits 2 with a `repro:`-prefixed
//! diagnostic plus the usage text on stderr. Pinning the exit codes
//! keeps shell scripts and the CI pipeline honest — `$?` is part of
//! the interface.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Assert a malformed invocation exits 2 and names the problem.
fn assert_usage_error(args: &[&str], needle: &str) {
    let out = repro(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} must exit 2, got {:?}\nstderr: {}",
        out.status.code(),
        stderr(&out)
    );
    let err = stderr(&out);
    assert!(
        err.contains(needle),
        "{args:?} stderr must mention `{needle}`:\n{err}"
    );
    assert!(
        err.contains("usage: repro"),
        "{args:?} stderr must include the usage text:\n{err}"
    );
}

#[test]
fn help_exits_zero_with_usage_on_stdout() {
    for flag in ["--help", "-h"] {
        let out = repro(&[flag]);
        assert_eq!(out.status.code(), Some(0), "{flag} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage: repro"), "{flag} prints usage");
        // The cluster target and its flags are documented.
        assert!(stdout.contains("cluster"), "usage lists the cluster target");
        assert!(stdout.contains("--hosts"), "usage documents --hosts");
        assert!(stdout.contains("--policy"), "usage documents --policy");
        assert!(out.stderr.is_empty(), "{flag} writes nothing to stderr");
    }
}

#[test]
fn unknown_flag_exits_two() {
    assert_usage_error(&["--bogus"], "unknown option `--bogus`");
}

#[test]
fn unknown_target_exits_two() {
    assert_usage_error(&["fig99"], "unknown target `fig99`");
}

#[test]
fn missing_values_exit_two() {
    assert_usage_error(&["--seed"], "--seed needs a value");
    assert_usage_error(&["--jobs"], "--jobs needs a value");
    assert_usage_error(&["--trace"], "--trace needs a directory");
    assert_usage_error(&["cluster", "--policy"], "--policy needs a value");
}

#[test]
fn non_numeric_values_exit_two() {
    assert_usage_error(&["--seed", "banana"], "`banana` is not a number");
    assert_usage_error(&["--class", "q"], "unknown class `q`");
}

#[test]
fn bad_cluster_flags_exit_two() {
    assert_usage_error(&["cluster", "--policy", "bogus"], "unknown policy `bogus`");
    assert_usage_error(&["cluster", "--hosts", "1"], "at least 2");
    assert_usage_error(&["cluster", "--vms", "0"], "at least 1");
    assert_usage_error(&["cluster", "--epochs", "0"], "at least 1");
}

#[test]
fn bad_jobs_and_bench_flags_exit_two() {
    assert_usage_error(&["--jobs", "banana"], "`banana` is not a number");
    assert_usage_error(&["cluster", "--jobs", "2x"], "`2x` is not a number");
    assert_usage_error(&["cluster", "--bench", "--bench-hosts"], "needs a comma list");
    assert_usage_error(
        &["cluster", "--bench", "--bench-hosts", "2,x"],
        "`x` is not a number",
    );
    assert_usage_error(
        &["cluster", "--bench", "--bench-hosts", "1"],
        "at least 2",
    );
    assert_usage_error(
        &["cluster", "--bench", "--bench-jobs", "1,,4"],
        "is not a number",
    );
}

/// `--jobs 0` means "one worker per core" everywhere (SweepRunner's
/// convention), so it must be accepted, not rejected as malformed.
#[test]
fn jobs_zero_means_auto_and_exits_zero() {
    let out = repro(&["cluster", "--jobs", "0", "--epochs", "1", "--policy", "static", "-q"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "--jobs 0 must run with auto parallelism\nstderr: {}",
        stderr(&out)
    );
}

#[test]
fn usage_documents_bench_flags() {
    let out = repro(&["--help"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for flag in ["--bench", "--bench-hosts", "--bench-jobs", "--jobs"] {
        assert!(stdout.contains(flag), "usage documents {flag}");
    }
}

#[test]
fn bad_series_flags_exit_two() {
    assert_usage_error(&["series", "--window"], "--window needs a value");
    assert_usage_error(&["series", "--window", "banana"], "`banana` is not a number");
    assert_usage_error(&["series", "--window", "0"], "at least 1");
    assert_usage_error(&["series", "--nsigma"], "--nsigma needs a value");
    assert_usage_error(&["series", "--nsigma", "3x"], "`3x` is not a number");
    assert_usage_error(&["series", "--nsigma", "0"], "positive finite");
    assert_usage_error(&["series", "--nsigma", "-2.5"], "positive finite");
}

#[test]
fn usage_documents_series_target_and_flags() {
    let out = repro(&["--help"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("series"), "usage lists the series target");
    for flag in ["--window", "--nsigma"] {
        assert!(stdout.contains(flag), "usage documents {flag}");
    }
}

#[test]
fn series_runs_and_renders_the_timeline() {
    let out = repro(&["series", "--epochs", "2", "--policy", "static", "-q"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "series must run\nstderr: {}",
        stderr(&out)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Cluster series"), "series prints its header:\n{stdout}");
    assert!(stdout.contains("reaction:"), "series prints the reaction line:\n{stdout}");
}

#[test]
fn usage_documents_soak_target_and_flags() {
    let out = repro(&["--help"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("soak"), "usage lists the soak target");
    for flag in ["--churn", "--audit-every"] {
        assert!(stdout.contains(flag), "usage documents {flag}");
    }
}

#[test]
fn bad_churn_plans_exit_two() {
    assert_usage_error(&["soak", "--churn"], "--churn needs a plan");
    assert_usage_error(&["soak", "--churn", "explode@3"], "unknown churn kind");
    assert_usage_error(&["soak", "--churn", "rand:42"], "want rand:SEED:RATE");
    assert_usage_error(&["soak", "--churn", "rand:42:0"], "churn rate must be 1..=100");
    assert_usage_error(
        &["soak", "--churn", "depart@1:h9:v0", "--hosts", "3"],
        "names host 9",
    );
    assert_usage_error(&["soak", "--audit-every", "0"], "at least 1");
}

#[test]
fn soak_runs_asserts_and_renders_the_summary() {
    let out = repro(&[
        "soak",
        "--epochs",
        "40",
        "--churn",
        "arrive@2:bg1,depart@5:h1:v0",
        "--audit-every",
        "10",
        "-q",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "soak must run\nstderr: {}",
        stderr(&out)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("soak: 40 epochs"), "soak prints its header:\n{stdout}");
    assert!(stdout.contains("churn: 1 arrivals"), "soak prints churn outcome:\n{stdout}");
    assert!(
        stdout.contains("[PASS] jobs 1 vs 4 bit-identical"),
        "soak prints the determinism check:\n{stdout}"
    );
}

#[test]
fn usage_documents_checkpoint_and_bisect_flags() {
    let out = repro(&["--help"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bisect"), "usage lists the bisect target");
    for flag in [
        "--checkpoint-every",
        "--resume",
        "--b-policy",
        "--b-seed",
        "--b-faults",
        "--b-churn",
        "--b-mutate",
    ] {
        assert!(stdout.contains(flag), "usage documents {flag}");
    }
}

#[test]
fn bad_checkpoint_flags_exit_two() {
    assert_usage_error(&["soak", "--checkpoint-every"], "needs a value");
    assert_usage_error(
        &["soak", "--checkpoint-every", "banana"],
        "`banana` is not a number",
    );
    assert_usage_error(&["soak", "--checkpoint-every", "0"], "at least 1");
    // Checkpoints are artifacts; without an artifact directory there is
    // nowhere to put them.
    assert_usage_error(
        &["soak", "--checkpoint-every", "5"],
        "needs --json DIR",
    );
    assert_usage_error(&["soak", "--resume"], "needs a checkpoint file");
    assert_usage_error(
        &["soak", "--resume", "/nonexistent/CKPT_000001.json"],
        "cannot read",
    );
}

#[test]
fn resume_conflicts_with_scenario_flags() {
    // The conflict is caught before the file is even opened — the
    // scenario comes from the checkpoint, full stop.
    for (flag, val) in [
        ("--seed", "7"),
        ("--hosts", "4"),
        ("--vms", "3"),
        ("--churn", "rand:1:2"),
        ("--faults", "abort@1"),
        ("--max-moves", "2"),
    ] {
        assert_usage_error(
            &["soak", "--resume", "/nonexistent/CKPT.json", flag, val],
            "conflicts with --resume",
        );
    }
}

/// End-to-end through real checkpoint files: a tiny soak writes them,
/// a resumed run finishes from one, and the two poison cases — a
/// version from the future and a horizon the checkpoint has already
/// passed — exit 2 with pointed messages.
#[test]
fn resume_round_trip_version_and_horizon_checks() {
    let dir = std::env::temp_dir().join(format!("asman-cli-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dirs = dir.to_str().expect("utf8 temp dir");
    let out = repro(&[
        "soak",
        "--epochs",
        "4",
        "--checkpoint-every",
        "2",
        "--json",
        dirs,
        "-q",
    ]);
    assert_eq!(out.status.code(), Some(0), "soak runs\nstderr: {}", stderr(&out));
    let ck2 = dir.join("CKPT_000000002.json");
    let ck4 = dir.join("CKPT_000000004.json");
    assert!(ck2.exists() && ck4.exists(), "soak wrote both checkpoints");

    let out = repro(&["soak", "--resume", ck2.to_str().unwrap(), "--epochs", "4", "-q"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "resume from a real checkpoint runs\nstderr: {}",
        stderr(&out)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("soak: 4 epochs"),
        "resumed soak renders the summary"
    );

    // `--resume DIR` picks the newest checkpoint by numeric epoch —
    // here CKPT_000000004.json, so the horizon must be raised past 4.
    let out = repro(&["soak", "--resume", dirs, "--epochs", "6", "-q"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "resume from the artifact directory runs\nstderr: {}",
        stderr(&out)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("soak: 6 epochs"),
        "directory resume picked the newest checkpoint and finished"
    );

    // Horizon already reached: nothing left to run.
    assert_usage_error(
        &["soak", "--resume", ck4.to_str().unwrap(), "--epochs", "4"],
        "raise --epochs past the checkpoint",
    );

    // A checkpoint from a future schema version is refused, not
    // misread.
    let text = std::fs::read_to_string(&ck2).expect("read checkpoint");
    assert!(text.contains("\"version\": 2"), "checkpoint carries its version");
    let future = dir.join("CKPT_future.json");
    std::fs::write(&future, text.replace("\"version\": 2", "\"version\": 99")).unwrap();
    assert_usage_error(
        &["soak", "--resume", future.to_str().unwrap()],
        "99 unsupported (this build reads versions 1..=2)",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bisect_identical_twin_exits_zero_and_divergence_exits_one() {
    let out = repro(&["bisect", "--epochs", "4", "-q"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "identical sides exit 0\nstderr: {}",
        stderr(&out)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("bit-identical"),
        "negative twin says so"
    );
    let out = repro(&["bisect", "--epochs", "4", "--b-seed", "43", "-q"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "diverging sides exit 1\nstderr: {}",
        stderr(&out)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("first divergent epoch: 0"),
        "a seed difference diverges before any epoch runs"
    );
}

#[test]
fn bad_bisect_flags_exit_two() {
    assert_usage_error(&["bisect", "--b-policy"], "--b-policy needs a value");
    assert_usage_error(&["bisect", "--b-policy", "bogus"], "unknown policy");
    assert_usage_error(&["bisect", "--b-seed", "x"], "`x` is not a number");
    assert_usage_error(&["bisect", "--b-mutate"], "--b-mutate needs a value");
    assert_usage_error(&["bisect", "--b-mutate", "bogus"], "unknown mutation");
    assert_usage_error(
        &["bisect", "--hosts", "3", "--b-faults", "crash@2:h7"],
        "host 7",
    );
}

/// In a build without the audit feature the boost-skip mutation cannot
/// be injected; the CLI must say which build to use. (The audit build
/// accepts it, so the case only exists in the default build.)
#[cfg(not(feature = "audit"))]
#[test]
fn boost_skip_mutation_requires_audit_build() {
    assert_usage_error(
        &["bisect", "--b-mutate", "boost-skip"],
        "requires a build with --features audit",
    );
}

#[test]
fn bad_max_moves_flags_exit_two() {
    assert_usage_error(&["cluster", "--max-moves"], "--max-moves needs a value");
    assert_usage_error(
        &["cluster", "--max-moves", "banana"],
        "`banana` is not a number",
    );
    assert_usage_error(&["cluster", "--max-moves", "0"], "at least 1");
}

#[test]
fn usage_documents_max_moves() {
    let out = repro(&["--help"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--max-moves"), "usage documents --max-moves");
}

#[test]
fn bad_fault_plans_exit_two() {
    assert_usage_error(&["cluster", "--faults"], "--faults needs a plan");
    assert_usage_error(&["cluster", "--faults", "explode@3"], "unknown fault");
    assert_usage_error(&["cluster", "--faults", "crash@2"], "crash");
    assert_usage_error(&["cluster", "--faults", "slow@1:h2:0"], "1..=99");
    assert_usage_error(&["cluster", "--faults", "rand:banana"], "rand:");
    // Plans may only name hosts the cluster actually has.
    assert_usage_error(
        &["cluster", "--hosts", "3", "--faults", "crash@2:h7"],
        "host 7",
    );
}
