//! Property tests for the checkpoint/restore round trip.
//!
//! The contract under test: take any run configuration (random
//! scenario seed, policy, fault plan, churn plan) and any epoch `E`
//! inside the horizon; capture a checkpoint at `E`, push it through
//! the full JSON file encoding, decode it back, rebuild the cluster
//! from the embedded config in a fresh "process", replay to `E`,
//! validate field-by-field, apply, and run to the end. The final state
//! — rendered as the horizon checkpoint's canonical JSON, plus the
//! state digest and every per-host machine fingerprint — must be
//! byte-identical to the uninterrupted run, for worker counts 1 and 4
//! on either side of the restore.

use asman_cluster::{
    scenario::ConsolidationSpec, Checkpoint, CheckpointConfig, ChurnPlan, ClusterConfig, Policy,
};
use asman_sim::FaultPlan;
use proptest::prelude::*;

const EPOCHS: u64 = 8;

fn config(seed: u64, policy: Policy, faults: &str, churn_rate: u32) -> CheckpointConfig {
    let d = ClusterConfig::default();
    let spec = ConsolidationSpec {
        seed,
        ..ConsolidationSpec::default()
    };
    let churn = if churn_rate == 0 {
        ChurnPlan::empty()
    } else {
        ChurnPlan::generate(seed, churn_rate, EPOCHS, spec.hosts)
    };
    CheckpointConfig {
        scenario: spec,
        epoch_ms: d.epoch_ms,
        epochs: EPOCHS,
        policy,
        cooldown_epochs: d.cooldown_epochs,
        retry_cap: d.retry_cap,
        audit_every: d.audit_every,
        model: d.model,
        faults: FaultPlan::parse(faults).expect("valid fault plan"),
        churn,
        slot_reuse: churn_rate != 0,
        series_capacity: 64,
    }
}

/// Everything the run produced, rendered to comparable bytes: the
/// horizon checkpoint's canonical JSON (config + full control state +
/// machine fingerprints + digest) and the raw digest.
fn final_artifacts(c: &mut asman_cluster::Cluster, cfg: &CheckpointConfig) -> (String, u64) {
    let ck = Checkpoint::capture(c, cfg.clone());
    let json = String::from_utf8(serde_json::to_vec_pretty(&ck.to_value()).expect("serialize"))
        .expect("utf8");
    (json, c.state_digest())
}

fn straight_through(cfg: &CheckpointConfig, jobs: usize) -> (String, u64) {
    let mut c = cfg.build_cluster(jobs);
    for _ in 0..cfg.epochs {
        c.run_epoch();
    }
    final_artifacts(&mut c, cfg)
}

/// Checkpoint at `at` under `jobs_before` workers, round-trip the
/// bytes, restore under `jobs_after` workers, finish the run.
fn save_restore_finish(
    cfg: &CheckpointConfig,
    at: u64,
    jobs_before: usize,
    jobs_after: usize,
) -> (String, u64) {
    let mut c = cfg.build_cluster(jobs_before);
    for _ in 0..at {
        c.run_epoch();
    }
    let ck = Checkpoint::capture(&c, cfg.clone());
    // The full file round trip: value -> pretty JSON bytes -> parse ->
    // decode. Any field the encoding drops or mangles dies here or in
    // the divergence checks below.
    let bytes = serde_json::to_vec_pretty(&ck.to_value()).expect("serialize");
    let text = String::from_utf8(bytes).expect("utf8");
    let ck = Checkpoint::from_value(&serde_json::from_str(&text).expect("parse"))
        .expect("decode checkpoint");
    assert_eq!(ck.state.epoch, at);
    // "Fresh process": everything below uses only the decoded artifact.
    let mut c = ck.config.build_cluster(jobs_after);
    for _ in 0..at {
        c.run_epoch();
    }
    let errs = ck.validate(&c);
    assert!(errs.is_empty(), "replay diverged from checkpoint: {errs:?}");
    ck.apply(&mut c);
    for _ in at..cfg.epochs {
        c.run_epoch();
    }
    final_artifacts(&mut c, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Save -> restore -> run-to-end is byte-identical to the
    /// uninterrupted run for random configs and checkpoint epochs,
    /// with worker counts 1 and 4 on both sides of the restore.
    #[test]
    fn round_trip_is_byte_identical(
        seed in 1u64..500,
        policy_vcrd in any::<bool>(),
        faults in prop_oneof![
            Just(""),
            Just("abort@1"),
            Just("abort@2,abort@5"),
            Just("crash@3:h1"),
        ],
        churn_rate in 0u32..3,
        at in 1u64..EPOCHS,
    ) {
        let policy = if policy_vcrd { Policy::VcrdAware } else { Policy::Static };
        let cfg = config(seed, policy, faults, churn_rate);
        let want = straight_through(&cfg, 1);
        prop_assert_eq!(
            &straight_through(&cfg, 4), &want,
            "straight-through must be jobs-independent"
        );
        for (jb, ja) in [(1, 1), (1, 4), (4, 1)] {
            let got = save_restore_finish(&cfg, at, jb, ja);
            prop_assert_eq!(
                &got, &want,
                "resumed run (jobs {} -> {}) differs from straight-through at checkpoint epoch {}",
                jb, ja, at
            );
        }
    }
}
