//! Property tests for the checkpoint/restore round trip.
//!
//! The contract under test: take any run configuration (random
//! scenario seed, policy, fault plan, churn plan) and any epoch `E`
//! inside the horizon; capture a checkpoint at `E`, push it through
//! the full JSON file encoding, decode it back, rebuild the cluster
//! from the embedded config in a fresh "process", replay to `E`,
//! validate field-by-field, apply, and run to the end. The final state
//! — rendered as the horizon checkpoint's canonical JSON, plus the
//! state digest and every per-host machine fingerprint — must be
//! byte-identical to the uninterrupted run, for worker counts 1 and 4
//! on either side of the restore.
//!
//! The same battery sweeps the per-epoch move budget (`max_moves` in
//! {1, 2, 4, 8}): every configuration must additionally conserve VMs
//! (registry = initial + arrivals, resident = registry − departures)
//! and respect the planner's per-host endpoint caps (within one epoch,
//! no host is the source of two migrations or the destination of two
//! migrations, and at most `max_moves` commit). A deterministic
//! multi-chain scenario pins the checkpoint-v2 case the fuzz sweep
//! cannot guarantee to hit: a boundary with **two** live retry chains
//! in flight.

use asman_cluster::{
    scenario::ConsolidationSpec, Checkpoint, CheckpointConfig, ChurnPlan, ClusterConfig, Policy,
};
use asman_sim::FaultPlan;
use proptest::prelude::*;

const EPOCHS: u64 = 8;

fn config(
    seed: u64,
    policy: Policy,
    faults: &str,
    churn_rate: u32,
    max_moves: usize,
) -> CheckpointConfig {
    let d = ClusterConfig::default();
    let spec = ConsolidationSpec {
        seed,
        ..ConsolidationSpec::default()
    };
    let churn = if churn_rate == 0 {
        ChurnPlan::empty()
    } else {
        ChurnPlan::generate(seed, churn_rate, EPOCHS, spec.hosts)
    };
    CheckpointConfig {
        scenario: spec,
        epoch_ms: d.epoch_ms,
        epochs: EPOCHS,
        policy,
        cooldown_epochs: d.cooldown_epochs,
        retry_cap: d.retry_cap,
        audit_every: d.audit_every,
        model: d.model,
        faults: if faults.is_empty() {
            FaultPlan::empty()
        } else {
            FaultPlan::parse(faults).expect("valid fault plan")
        },
        churn,
        slot_reuse: churn_rate != 0,
        series_capacity: 64,
        max_moves,
    }
}

/// Everything the run produced, rendered to comparable bytes: the
/// horizon checkpoint's canonical JSON (config + full control state +
/// machine fingerprints + digest) and the raw digest.
fn final_artifacts(c: &mut asman_cluster::Cluster, cfg: &CheckpointConfig) -> (String, u64) {
    let ck = Checkpoint::capture(c, cfg.clone());
    let json = String::from_utf8(serde_json::to_vec_pretty(&ck.to_value()).expect("serialize"))
        .expect("utf8");
    (json, c.state_digest())
}

fn straight_through(cfg: &CheckpointConfig, jobs: usize) -> (String, u64) {
    let mut c = cfg.build_cluster(jobs);
    for _ in 0..cfg.epochs {
        c.run_epoch();
    }
    final_artifacts(&mut c, cfg)
}

/// Checkpoint at `at` under `jobs_before` workers, round-trip the
/// bytes, restore under `jobs_after` workers, finish the run.
fn save_restore_finish(
    cfg: &CheckpointConfig,
    at: u64,
    jobs_before: usize,
    jobs_after: usize,
) -> (String, u64) {
    let mut c = cfg.build_cluster(jobs_before);
    for _ in 0..at {
        c.run_epoch();
    }
    let ck = Checkpoint::capture(&c, cfg.clone());
    // The full file round trip: value -> pretty JSON bytes -> parse ->
    // decode. Any field the encoding drops or mangles dies here or in
    // the divergence checks below.
    let bytes = serde_json::to_vec_pretty(&ck.to_value()).expect("serialize");
    let text = String::from_utf8(bytes).expect("utf8");
    let ck = Checkpoint::from_value(&serde_json::from_str(&text).expect("parse"))
        .expect("decode checkpoint");
    assert_eq!(ck.state.epoch, at);
    // "Fresh process": everything below uses only the decoded artifact.
    let mut c = ck.config.build_cluster(jobs_after);
    for _ in 0..at {
        c.run_epoch();
    }
    let errs = ck.validate(&c);
    assert!(errs.is_empty(), "replay diverged from checkpoint: {errs:?}");
    ck.apply(&mut c);
    for _ in at..cfg.epochs {
        c.run_epoch();
    }
    final_artifacts(&mut c, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Save -> restore -> run-to-end is byte-identical to the
    /// uninterrupted run for random configs and checkpoint epochs,
    /// with worker counts 1 and 4 on both sides of the restore.
    #[test]
    fn round_trip_is_byte_identical(
        seed in 1u64..500,
        policy_vcrd in any::<bool>(),
        faults in prop_oneof![
            Just(""),
            Just("abort@1"),
            Just("abort@2,abort@5"),
            Just("crash@3:h1"),
        ],
        churn_rate in 0u32..3,
        max_moves in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        at in 1u64..EPOCHS,
    ) {
        let policy = if policy_vcrd { Policy::VcrdAware } else { Policy::Static };
        let cfg = config(seed, policy, faults, churn_rate, max_moves);
        let want = straight_through(&cfg, 1);
        prop_assert_eq!(
            &straight_through(&cfg, 4), &want,
            "straight-through must be jobs-independent"
        );
        for (jb, ja) in [(1, 1), (1, 4), (4, 1)] {
            let got = save_restore_finish(&cfg, at, jb, ja);
            prop_assert_eq!(
                &got, &want,
                "resumed run (jobs {} -> {}) differs from straight-through at checkpoint epoch {}",
                jb, ja, at
            );
        }
    }

    /// Under any move budget, every run conserves its VM population
    /// and never lets one epoch use a host as a double source or
    /// double destination — the planner's endpoint caps, observed from
    /// the committed migration log rather than the planner's own
    /// bookkeeping.
    #[test]
    fn multi_move_runs_conserve_vms_and_respect_caps(
        seed in 1u64..500,
        faults in prop_oneof![
            Just(""),
            Just("abort@1"),
            Just("abort@2,abort@5"),
            Just("crash@3:h1"),
        ],
        churn_rate in 0u32..3,
        max_moves in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
    ) {
        let cfg = config(seed, Policy::VcrdAware, faults, churn_rate, max_moves);
        let mut c = cfg.build_cluster(1);
        let initial = c.vm_count() as u64;
        for _ in 0..cfg.epochs {
            c.run_epoch();
        }
        let (arrivals, departures, ..) = c.churn_counts();
        prop_assert_eq!(
            c.vm_count() as u64, initial + arrivals,
            "registry must grow only by admitted arrivals"
        );
        prop_assert_eq!(
            c.resident_vm_count() as u64, initial + arrivals - departures,
            "resident population must track arrivals minus departures"
        );
        // Endpoint caps, per epoch, over committed migrations (crash
        // evacuations are forced bulk moves and live in a separate
        // record stream).
        let report = c.report();
        let mut epochs: Vec<u64> = report.migrations.iter().map(|m| m.epoch).collect();
        epochs.dedup();
        for e in epochs {
            let at: Vec<_> = report.migrations.iter().filter(|m| m.epoch == e).collect();
            prop_assert!(
                at.len() <= max_moves,
                "epoch {}: {} migrations exceed budget {}", e, at.len(), max_moves
            );
            let mut srcs: Vec<usize> = at.iter().map(|m| m.from).collect();
            let mut dsts: Vec<usize> = at.iter().map(|m| m.to).collect();
            srcs.sort_unstable();
            dsts.sort_unstable();
            let (s, d) = (srcs.len(), dsts.len());
            srcs.dedup();
            dsts.dedup();
            prop_assert!(
                srcs.len() == s && dsts.len() == d,
                "epoch {}: a host served as a double endpoint", e
            );
        }
    }
}

/// The scenario the fuzz sweep cannot guarantee: a checkpoint boundary
/// with **two** retry chains alive at once. A departure empties host 1
/// and two gang arrivals land there back-to-back (admission always
/// picks the least-loaded host), so hosts 0 and 1 are both overloaded
/// sources; `max_moves: 2` plans both in the same epoch, and the
/// abort plan keeps both chains failing and backing off. The v2
/// checkpoint taken mid-flight must carry the whole ordered chain set
/// through the file round trip and finish byte-identical.
#[test]
fn checkpoint_v2_round_trips_with_two_live_chains() {
    let d = ClusterConfig::default();
    let cfg = CheckpointConfig {
        scenario: ConsolidationSpec {
            hosts: 6,
            ..ConsolidationSpec::default()
        },
        epoch_ms: d.epoch_ms,
        epochs: 12,
        policy: Policy::VcrdAware,
        cooldown_epochs: d.cooldown_epochs,
        retry_cap: 10,
        audit_every: d.audit_every,
        model: d.model,
        faults: FaultPlan::parse("abort@0,abort@1,abort@2,abort@3").expect("fault plan"),
        churn: ChurnPlan::parse("depart@0:h1:v0,arrive@0:gang3,arrive@0:gang3")
            .expect("churn plan"),
        slot_reuse: true,
        series_capacity: 64,
        max_moves: 2,
    };
    let at = 4;
    let mut c = cfg.build_cluster(1);
    for _ in 0..at {
        c.run_epoch();
    }
    let ck = Checkpoint::capture(&c, cfg.clone());
    assert!(
        ck.state.pending.len() >= 2,
        "boundary must hold more than one live chain, got {}",
        ck.state.pending.len()
    );
    let want = straight_through(&cfg, 1);
    for (jb, ja) in [(1, 1), (1, 4), (4, 1)] {
        assert_eq!(
            save_restore_finish(&cfg, at, jb, ja),
            want,
            "mid-flight multi-chain restore (jobs {jb} -> {ja}) must be byte-identical"
        );
    }
}
