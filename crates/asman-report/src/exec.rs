//! Parallel sweep executor.
//!
//! Every figure of the reproduction is a *sweep*: a grid of independent
//! (scheduler, rate, workload, round) cells, each of which builds its own
//! deterministic [`asman_hypervisor::Machine`] from a seed and runs it to
//! completion. Cells share no state, so they can run on worker threads —
//! determinism is preserved because parallelism is *across* simulations,
//! never inside one, and results are always collected in cell order.
//!
//! [`SweepRunner::run`] with `jobs == 1` degenerates to a plain in-order
//! loop on the calling thread, which is bit-identical to the historical
//! sequential behavior; any other job count produces bit-identical output
//! by construction (slot `i` always holds cell `i`'s result).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Executes a sweep's cells across a bounded pool of scoped threads,
/// returning results in deterministic cell order.
#[derive(Clone, Copy, Debug)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// Runner with an explicit worker count; `0` selects
    /// [`std::thread::available_parallelism`].
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            jobs
        };
        SweepRunner { jobs }
    }

    /// Runner sized to the host's available parallelism.
    pub fn auto() -> Self {
        SweepRunner::new(0)
    }

    /// The effective worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run every cell and return their results in cell order.
    ///
    /// With one job (or at most one cell) this is an ordinary sequential
    /// loop on the calling thread. Otherwise workers claim cells through
    /// an atomic cursor — claim order is racy, but each result lands in
    /// its own cell's slot, so the returned `Vec` is independent of
    /// thread scheduling.
    pub fn run<T, F>(&self, cells: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = cells.len();
        if self.jobs <= 1 || n <= 1 {
            return cells.into_iter().map(|cell| cell()).collect();
        }
        let slots: Vec<Mutex<Option<F>>> =
            cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = slots[i]
                        .lock()
                        .expect("cell slot poisoned")
                        .take()
                        .expect("cell claimed twice");
                    let out = cell();
                    *results[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker panicked before storing result")
            })
            .collect()
    }

    /// Apply `f` to every item on the worker pool, preserving item order.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let f = &f;
        self.run(items.into_iter().map(|item| move || f(item)).collect())
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let inputs: Vec<u64> = (0..37).collect();
        let seq = SweepRunner::new(1).map(inputs.clone(), |x| x * x + 1);
        let par = SweepRunner::new(8).map(inputs, |x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn order_is_deterministic_under_adversarial_latencies() {
        // Early cells sleep longest, so under any work-stealing order the
        // *completion* order is adversarial (reversed); the result order
        // must still be cell order.
        let n = 24usize;
        for jobs in [2usize, 3, 8] {
            let cells: Vec<_> = (0..n)
                .map(|i| {
                    move || {
                        std::thread::sleep(std::time::Duration::from_millis(
                            (n - i) as u64 % 7,
                        ));
                        i
                    }
                })
                .collect();
            let out = SweepRunner::new(jobs).run(cells);
            assert_eq!(out, (0..n).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert!(SweepRunner::new(0).jobs() >= 1);
        assert!(SweepRunner::auto().jobs() >= 1);
    }

    #[test]
    fn empty_and_single_cell_sweeps() {
        let empty: Vec<fn() -> u8> = Vec::new();
        assert!(SweepRunner::new(4).run(empty).is_empty());
        assert_eq!(SweepRunner::new(4).run(vec![|| 9u8]), vec![9]);
    }
}
