//! Parallel sweep executor — re-export of [`asman_sim::exec`].
//!
//! [`SweepRunner`] started life here driving the figure sweeps, then
//! moved one layer down into `asman-sim` when the cluster driver's
//! intra-epoch host advancement (`asman-cluster::Cluster::run_epoch`)
//! needed the same scoped-thread pool. This module remains so every
//! historical `crate::exec::SweepRunner` path keeps working.

pub use asman_sim::exec::SweepRunner;
