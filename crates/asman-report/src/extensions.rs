//! Comparison of the extension policies (§6 related work / §7 future
//! work) against the paper's three schedulers on the reference scenario.

use asman_hypervisor::CoschedPolicy;
use asman_sim::{Clock, Cycles};
use asman_workloads::{NasBenchmark, NasSpec};
use serde::Serialize;

use crate::figures::{FigureParams, ShapeCheck};
use crate::scenario::{dom0_vm, machine_for, Sched};
use asman_hypervisor::{CapMode, Machine, MachineConfig, VmSpec};

/// Result for one policy on the reference scenario (LU at 22.2%).
#[derive(Clone, Debug, Serialize)]
pub struct PolicyRow {
    /// Policy label.
    pub policy: String,
    /// Run time, simulated seconds.
    pub run_secs: f64,
    /// Fraction of time all four guest VCPUs were online together.
    pub all_online_frac: f64,
    /// Over-threshold (≥2^20) waits over the run.
    pub over_threshold: u64,
    /// VCRD raises (adaptive policies only).
    pub vcrd_raises: u64,
}

/// The extensions comparison panel.
#[derive(Clone, Debug, Serialize)]
pub struct Extensions {
    /// One row per policy.
    pub rows: Vec<PolicyRow>,
}

fn run_policy(policy: CoschedPolicy, params: &FigureParams) -> PolicyRow {
    let clk = Clock::default();
    let lu = NasSpec::new(NasBenchmark::LU, params.class, 4).build(params.seed ^ 7);
    let v1 = VmSpec::new("V1", 4, lu.into_boxed())
        .weight(32)
        .cap(CapMode::NonWorkConserving)
        .concurrent();
    let cfg = MachineConfig {
        seed: params.seed,
        policy,
        ..MachineConfig::default()
    };
    // Reuse the ASMan monitor wiring for Adaptive; plain Machine for the
    // rest (OutOfVm needs no observer — that is its point).
    let mut m = match policy {
        CoschedPolicy::Adaptive => machine_for(
            Sched::Asman,
            cfg,
            vec![dom0_vm("V0", 8, params.seed ^ 0xD0), v1],
        ),
        _ => Machine::new(cfg, vec![dom0_vm("V0", 8, params.seed ^ 0xD0), v1]),
    };
    m.run_to_completion(clk.secs(4_000));
    let end = m.vm_kernel(1).stats().finished_at.unwrap_or(m.now());
    PolicyRow {
        policy: format!("{policy:?}"),
        run_secs: clk.to_secs(end),
        all_online_frac: m.vm_accounting(1).all_online_frac(end.max(Cycles(1))),
        over_threshold: m.vm_kernel(1).stats().wait_hist.count_at_least_pow2(20),
        vcrd_raises: m.vm_accounting(1).vcrd_raises,
    }
}

/// Helper so `NasSpec::build` output can be boxed inline.
trait IntoBoxed {
    fn into_boxed(self) -> Box<dyn asman_workloads::Program>;
}
impl IntoBoxed for asman_workloads::PhasedProgram {
    fn into_boxed(self) -> Box<dyn asman_workloads::Program> {
        Box::new(self)
    }
}

/// Run the extensions panel (one machine per policy, fanned over the
/// sweep runner).
pub fn run(params: &FigureParams) -> Extensions {
    let policies = vec![
        CoschedPolicy::None,
        CoschedPolicy::Static,
        CoschedPolicy::Adaptive,
        CoschedPolicy::Relaxed,
        CoschedPolicy::OutOfVm,
    ];
    let rows = params.runner().map(policies, |p| run_policy(p, params));
    Extensions { rows }
}

impl Extensions {
    /// Text table.
    pub fn render(&self) -> String {
        let mut s = String::from("Extensions panel — LU @ 22.2% online rate, all policies\n");
        s.push_str(&format!(
            "{:<10} {:>9} {:>9} {:>10} {:>8}\n",
            "policy", "run(s)", "all-on%", ">2^20", "raises"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<10} {:>9.1} {:>9.1} {:>10} {:>8}\n",
                r.policy,
                r.run_secs,
                r.all_online_frac * 100.0,
                r.over_threshold,
                r.vcrd_raises
            ));
        }
        s
    }

    /// Qualitative expectations across the policy spectrum.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let get = |name: &str| {
            self.rows
                .iter()
                .find(|r| r.policy == name)
                .expect("policy row")
        };
        let credit = get("None");
        let asman = get("Adaptive");
        let oov = get("OutOfVm");
        let relaxed = get("Relaxed");
        vec![
            ShapeCheck::new(
                "guest-assisted ASMan beats the plain Credit scheduler",
                asman.run_secs < credit.run_secs,
                format!("{:.1}s vs {:.1}s", asman.run_secs, credit.run_secs),
            ),
            ShapeCheck::new(
                "out-of-VM inference (future work) lands between Credit and ASMan",
                oov.run_secs <= credit.run_secs * 1.02 && oov.run_secs >= asman.run_secs * 0.98,
                format!(
                    "Credit {:.1}s, OutOfVm {:.1}s, ASMan {:.1}s",
                    credit.run_secs, oov.run_secs, asman.run_secs
                ),
            ),
            ShapeCheck::new(
                "relaxed coscheduling (skew-bounded) helps less than full ganging",
                relaxed.run_secs >= asman.run_secs * 0.98,
                format!("{:.1}s vs {:.1}s", relaxed.run_secs, asman.run_secs),
            ),
            ShapeCheck::new(
                "ASMan achieves the highest simultaneity",
                self.rows.iter().all(|r| {
                    r.policy == "Adaptive"
                        || r.policy == "Static"
                        || r.all_online_frac <= asman.all_online_frac + 0.02
                }),
                format!("ASMan all-online {:.1}%", asman.all_online_frac * 100.0),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_workloads::ProblemClass;

    #[test]
    fn panel_runs_all_policies_class_s() {
        let ext = run(&FigureParams {
            class: ProblemClass::S,
            seed: 42,
            rounds: 2,
            jobs: 1,
        });
        assert_eq!(ext.rows.len(), 5);
        assert!(!ext.render().is_empty());
        for check in ext.shape_checks() {
            assert!(check.holds, "{} — {}", check.claim, check.evidence);
        }
    }
}
