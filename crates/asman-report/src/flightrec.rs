//! Flight-recorder exporters and the `repro trace` driver.
//!
//! Takes the merged cross-layer event stream of a traced
//! [`Machine`](asman_hypervisor::Machine) and turns it into run
//! artifacts:
//!
//! * **Chrome trace-event JSON** (`trace_<sched>.json`) — loadable in
//!   [Perfetto](https://ui.perfetto.dev). One track per PCPU (what ran
//!   on it, as complete spans), one VMM-side track per VCPU (wake,
//!   steal, migrate, park and credit instants), one track per guest
//!   thread (spin and hold spans, futex/barrier instants), and one
//!   track per lock showing detected lock-holder-preemption episodes.
//! * **LHP episodes** (`lhp_<sched>.json`) — the
//!   [`LhpSummary`] of [`detect_lhp`] over the merged stream.
//! * **Metrics** (`metrics_<sched>.json`) — the run's
//!   [`MetricsRegistry`] dump.
//! * **Text summary** (`summary_<sched>.txt`, also printed) — per
//!   category seen/retained/dropped counts and the worst LHP episodes.
//!
//! Everything here is deterministic: the event stream is merged with a
//! stable sort inside the machine, spans are emitted in stream order and
//! leftover open spans are closed in sorted key order, so the artifacts
//! are byte-identical for any `--jobs` value.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use asman_hypervisor::Machine;
use asman_sim::flight::{CatMask, FlightEv, FlightEvent, PEER_FUTEX_BIT};
use asman_sim::lhp::{detect_lhp, LhpEpisode, LhpSummary};
use asman_sim::registry::MetricsRegistry;
use asman_sim::{Clock, Cycles};
use asman_workloads::{NasBenchmark, NasSpec};
use serde::{Serialize, Value};

use crate::figures::FigureParams;
use crate::scenario::{Sched, SingleVmScenario};

/// Simulated window traced by [`capture_bundles`] (seconds).
pub const TRACE_WINDOW_SECS: u64 = 3;

/// Default per-category, per-layer event capacity for `repro trace`.
pub const TRACE_CAPACITY: usize = 200_000;

/// How many worst LHP episodes the summary retains.
const LHP_KEEP: usize = 20;

// ---------------------------------------------------------------- topology

/// Machine topology snapshot used to name exporter tracks.
struct Topo {
    vm_names: Vec<String>,
    /// First global VCPU index of each VM (VCPU ids are contiguous per VM).
    vm_first_vcpu: Vec<u32>,
    vm_vcpus: Vec<u32>,
    pcpus: u32,
    clock: Clock,
}

impl Topo {
    fn from_machine(m: &Machine) -> Topo {
        let n = m.vm_count();
        let mut vm_names = Vec::with_capacity(n);
        let mut vm_first_vcpu = Vec::with_capacity(n);
        let mut vm_vcpus = Vec::with_capacity(n);
        for vm in 0..n {
            let ids = m.vm_vcpu_ids(vm);
            vm_names.push(m.vm_name(vm).to_string());
            vm_first_vcpu.push(ids.first().map(|&v| v as u32).unwrap_or(0));
            vm_vcpus.push(ids.len() as u32);
        }
        Topo {
            vm_names,
            vm_first_vcpu,
            vm_vcpus,
            pcpus: m.config().pcpus as u32,
            clock: m.config().clock,
        }
    }

    /// Map a global VCPU index to `(vm, slot)`.
    fn locate(&self, vcpu: u32) -> (u32, u32) {
        for (vm, (&first, &count)) in self
            .vm_first_vcpu
            .iter()
            .zip(self.vm_vcpus.iter())
            .enumerate()
        {
            if vcpu >= first && vcpu < first + count {
                return (vm as u32, vcpu - first);
            }
        }
        (u32::MAX, vcpu)
    }

    fn us(&self, t: Cycles) -> f64 {
        self.clock.to_secs(t) * 1e6
    }
}

// ------------------------------------------------- chrome trace-event JSON

// Track ids within a VM's process: guest threads use their own small
// indices, the VMM-side per-VCPU rows and the per-VM VMM row sit above
// them, and LHP episode rows live in their own per-VM process.
const TID_VMM_VCPU_BASE: u64 = 5_000;
const TID_VMM_ROW: u64 = 4_999;
/// Cluster migration lifecycle spans live on their own pid-0 row.
const TID_MIG_ROW: u64 = 4_998;
const PID_LHP_BASE: u64 = 1_000;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn span(name: String, pid: u64, tid: u64, ts: f64, dur: f64, args: Value) -> Value {
    obj(vec![
        ("name", Value::Str(name)),
        ("ph", Value::Str("X".to_string())),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("ts", Value::F64(ts)),
        ("dur", Value::F64(dur)),
        ("args", args),
    ])
}

fn instant(name: String, pid: u64, tid: u64, ts: f64, args: Value) -> Value {
    obj(vec![
        ("name", Value::Str(name)),
        ("ph", Value::Str("i".to_string())),
        ("s", Value::Str("t".to_string())),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("ts", Value::F64(ts)),
        ("args", args),
    ])
}

fn meta_name(kind: &str, pid: u64, tid: Option<u64>, name: &str) -> Value {
    let mut fields = vec![
        ("name", Value::Str(kind.to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::U64(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid", Value::U64(tid)));
    }
    fields.push((
        "args",
        obj(vec![("name", Value::Str(name.to_string()))]),
    ));
    obj(fields)
}

fn futex_name(futex: u32) -> String {
    if futex & PEER_FUTEX_BIT != 0 {
        format!("peer t{}", futex & !PEER_FUTEX_BIT)
    } else {
        format!("f{futex}")
    }
}

/// Build the Chrome trace-event document for a merged event stream.
///
/// `end` closes spans still open when the recording window ended.
fn chrome_trace(events: &[FlightEvent], episodes: &[LhpEpisode], topo: &Topo, end: Cycles) -> Value {
    let mut out: Vec<Value> = Vec::new();

    // Metadata: process and thread names, fixed order.
    out.push(meta_name("process_name", 0, None, "PCPUs"));
    for p in 0..topo.pcpus {
        out.push(meta_name("thread_name", 0, Some(p as u64), &format!("pcpu{p}")));
    }
    for (vm, name) in topo.vm_names.iter().enumerate() {
        let pid = vm as u64 + 1;
        out.push(meta_name("process_name", pid, None, name));
        out.push(meta_name("thread_name", pid, Some(TID_VMM_ROW), "vmm"));
        for slot in 0..topo.vm_vcpus[vm] {
            out.push(meta_name(
                "thread_name",
                pid,
                Some(TID_VMM_VCPU_BASE + slot as u64),
                &format!("v{slot} (vmm)"),
            ));
        }
    }

    // Guest thread rows discovered from the stream; named below once the
    // per-VM thread population is known.
    let mut guest_threads: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    let mut has_migrations = false;
    for e in events {
        match e.ev {
            FlightEv::LockContend { vm, thread, .. }
            | FlightEv::LockAcquire { vm, thread, .. }
            | FlightEv::LockRelease { vm, thread, .. }
            | FlightEv::FutexBlock { vm, thread, .. }
            | FlightEv::FutexWake { vm, thread, .. }
            | FlightEv::BarrierArrive { vm, thread, .. }
            | FlightEv::BarrierRelease { vm, thread, .. } => {
                guest_threads.insert((vm, thread));
            }
            FlightEv::MigratePrepare { .. }
            | FlightEv::MigrateCopy { .. }
            | FlightEv::MigrateCommit { .. }
            | FlightEv::MigrateAbort { .. }
            | FlightEv::MigrateRetry { .. } => has_migrations = true,
            _ => {}
        }
    }
    if has_migrations {
        out.push(meta_name("thread_name", 0, Some(TID_MIG_ROW), "migrations"));
    }
    for &(vm, thread) in &guest_threads {
        out.push(meta_name(
            "thread_name",
            vm as u64 + 1,
            Some(thread as u64),
            &format!("t{thread}"),
        ));
    }

    // Open-span state. Keys are small integers; leftovers are flushed in
    // sorted key order so output stays deterministic.
    let mut running: HashMap<u32, (Cycles, u32)> = HashMap::new(); // vcpu -> (t0, pcpu)
    let mut spinning: HashMap<(u32, u32), (Cycles, u32)> = HashMap::new(); // (vm,thread) -> (t0, lock)
    let mut holding: HashMap<(u32, u32, u32), Cycles> = HashMap::new(); // (vm,thread,lock) -> t0
    // span id -> (t0, vm, from, to, attempt, pages); one slice per attempt.
    let mut mig_open: HashMap<u32, (Cycles, u32, u32, u32, u32, u64)> = HashMap::new();

    let vcpu_label = |vcpu: u32| {
        let (vm, slot) = topo.locate(vcpu);
        match topo.vm_names.get(vm as usize) {
            Some(name) => format!("{name}/v{slot}"),
            None => format!("v{vcpu}"),
        }
    };
    let close_run = |out: &mut Vec<Value>, vcpu: u32, t0: Cycles, pcpu: u32, t1: Cycles| {
        out.push(span(
            vcpu_label(vcpu),
            0,
            pcpu as u64,
            topo.us(t0),
            topo.us(t1.saturating_sub(t0)),
            obj(vec![("vcpu", Value::U64(vcpu as u64))]),
        ));
    };

    for e in events {
        let t = e.t;
        match e.ev {
            FlightEv::Dispatch { vcpu, pcpu, .. } => {
                running.insert(vcpu, (t, pcpu));
            }
            FlightEv::Preempt { vcpu, .. } | FlightEv::Block { vcpu, .. } => {
                if let Some((t0, pcpu)) = running.remove(&vcpu) {
                    close_run(&mut out, vcpu, t0, pcpu, t);
                }
            }
            FlightEv::Wake { vcpu, vm, boost } => {
                let (_, slot) = topo.locate(vcpu);
                out.push(instant(
                    if boost { "wake+boost".to_string() } else { "wake".to_string() },
                    vm as u64 + 1,
                    TID_VMM_VCPU_BASE + slot as u64,
                    topo.us(t),
                    Value::Null,
                ));
            }
            FlightEv::Steal { vcpu, vm, from, to } | FlightEv::Migrate { vcpu, vm, from, to } => {
                let (_, slot) = topo.locate(vcpu);
                out.push(instant(
                    format!("{} {from}->{to}", e.ev.kind()),
                    vm as u64 + 1,
                    TID_VMM_VCPU_BASE + slot as u64,
                    topo.us(t),
                    Value::Null,
                ));
            }
            FlightEv::CreditAssign { vcpu, vm, income, credit } => {
                let (_, slot) = topo.locate(vcpu);
                out.push(instant(
                    "credit".to_string(),
                    vm as u64 + 1,
                    TID_VMM_VCPU_BASE + slot as u64,
                    topo.us(t),
                    obj(vec![
                        ("income", Value::I64(income)),
                        ("credit", Value::I64(credit)),
                    ]),
                ));
            }
            FlightEv::Park { vcpu, vm } | FlightEv::Unpark { vcpu, vm } => {
                let (_, slot) = topo.locate(vcpu);
                out.push(instant(
                    e.ev.kind().to_string(),
                    vm as u64 + 1,
                    TID_VMM_VCPU_BASE + slot as u64,
                    topo.us(t),
                    Value::Null,
                ));
            }
            FlightEv::CoschedBurst { vm, boosted } => {
                out.push(instant(
                    "cosched burst".to_string(),
                    vm as u64 + 1,
                    TID_VMM_ROW,
                    topo.us(t),
                    obj(vec![("boosted", Value::U64(boosted as u64))]),
                ));
            }
            FlightEv::VcrdChange { vm, high } => {
                out.push(instant(
                    if high { "VCRD high".to_string() } else { "VCRD low".to_string() },
                    vm as u64 + 1,
                    TID_VMM_ROW,
                    topo.us(t),
                    Value::Null,
                ));
            }
            FlightEv::LockContend { vm, thread, lock, .. } => {
                spinning.insert((vm, thread), (t, lock));
            }
            FlightEv::LockAcquire { vm, thread, lock, .. } => {
                if let Some((t0, l)) = spinning.remove(&(vm, thread)) {
                    if l == lock {
                        out.push(span(
                            format!("spin L{lock}"),
                            vm as u64 + 1,
                            thread as u64,
                            topo.us(t0),
                            topo.us(t.saturating_sub(t0)),
                            Value::Null,
                        ));
                    }
                }
                holding.insert((vm, thread, lock), t);
            }
            FlightEv::LockRelease { vm, thread, lock, .. } => {
                if let Some(t0) = holding.remove(&(vm, thread, lock)) {
                    out.push(span(
                        format!("hold L{lock}"),
                        vm as u64 + 1,
                        thread as u64,
                        topo.us(t0),
                        topo.us(t.saturating_sub(t0)),
                        Value::Null,
                    ));
                }
            }
            FlightEv::FutexBlock { vm, thread, futex, .. } => {
                out.push(instant(
                    format!("futex block {}", futex_name(futex)),
                    vm as u64 + 1,
                    thread as u64,
                    topo.us(t),
                    Value::Null,
                ));
            }
            FlightEv::FutexWake { vm, thread, futex, woken, .. } => {
                out.push(instant(
                    format!("futex wake {}", futex_name(futex)),
                    vm as u64 + 1,
                    thread as u64,
                    topo.us(t),
                    obj(vec![("woken", Value::U64(woken as u64))]),
                ));
            }
            FlightEv::BarrierArrive { vm, thread, barrier, arrived, .. } => {
                out.push(instant(
                    format!("arrive b{barrier}"),
                    vm as u64 + 1,
                    thread as u64,
                    topo.us(t),
                    obj(vec![("arrived", Value::U64(arrived as u64))]),
                ));
            }
            FlightEv::BarrierRelease { vm, thread, barrier, woken, .. } => {
                out.push(instant(
                    format!("release b{barrier}"),
                    vm as u64 + 1,
                    thread as u64,
                    topo.us(t),
                    obj(vec![("woken", Value::U64(woken as u64))]),
                ));
            }
            // Cluster-layer fault events: host-wide, so they land on the
            // VMM row. `vm` in these is the cluster-wide id (carried in
            // args, not mapped to a local pid).
            FlightEv::HostCrash { host } => {
                out.push(instant(
                    format!("host {host} CRASH"),
                    0,
                    TID_VMM_ROW,
                    topo.us(t),
                    Value::Null,
                ));
            }
            FlightEv::HostDerate { host, pct } => {
                out.push(instant(
                    format!("host {host} derate {pct}%"),
                    0,
                    TID_VMM_ROW,
                    topo.us(t),
                    obj(vec![("pct", Value::U64(pct as u64))]),
                ));
            }
            // The migration lifecycle renders as causal duration spans:
            // each attempt's prepare opens a slice on the migration row,
            // closed by its commit (duration == injected pause) or abort
            // (duration == abort penalty). The span id ties a retry
            // chain's slices together across host streams.
            FlightEv::MigratePrepare { span: sp, vm, from, to, attempt } => {
                mig_open.insert(sp, (t, vm, from, to, attempt, 0));
            }
            FlightEv::MigrateCopy { span: sp, pages, .. } => {
                if let Some(o) = mig_open.get_mut(&sp) {
                    o.5 += pages;
                }
            }
            FlightEv::MigrateCommit { span: sp, vm, to, pause } => {
                if let Some((t0, _, from, _, attempt, pages)) = mig_open.remove(&sp) {
                    out.push(span(
                        format!("migrate vm{vm} {from}->{to}"),
                        0,
                        TID_MIG_ROW,
                        topo.us(t0),
                        topo.us(t.saturating_sub(t0)),
                        obj(vec![
                            ("span", Value::U64(sp as u64)),
                            ("attempt", Value::U64(attempt as u64)),
                            ("pages", Value::U64(pages)),
                            ("pause_cycles", Value::U64(pause)),
                        ]),
                    ));
                }
            }
            FlightEv::MigrateAbort { span: sp, vm, attempt } => {
                if let Some((t0, _, from, to, _, pages)) = mig_open.remove(&sp) {
                    out.push(span(
                        format!("migrate ABORT vm{vm} {from}->{to} (attempt {attempt})"),
                        0,
                        TID_MIG_ROW,
                        topo.us(t0),
                        topo.us(t.saturating_sub(t0)),
                        obj(vec![
                            ("span", Value::U64(sp as u64)),
                            ("attempt", Value::U64(attempt as u64)),
                            ("pages", Value::U64(pages)),
                        ]),
                    ));
                } else {
                    out.push(instant(
                        format!("migration abort (attempt {attempt})"),
                        0,
                        TID_VMM_ROW,
                        topo.us(t),
                        obj(vec![
                            ("span", Value::U64(sp as u64)),
                            ("cluster_vm", Value::U64(vm as u64)),
                        ]),
                    ));
                }
            }
            FlightEv::MigrateRetry { span: sp, vm, attempt } => {
                out.push(instant(
                    format!("migration retry (attempt {attempt})"),
                    0,
                    TID_MIG_ROW,
                    topo.us(t),
                    obj(vec![
                        ("span", Value::U64(sp as u64)),
                        ("cluster_vm", Value::U64(vm as u64)),
                    ]),
                ));
            }
            FlightEv::Evacuate { vm, from, to } => {
                out.push(instant(
                    format!("evacuate {from}->{to}"),
                    0,
                    TID_VMM_ROW,
                    topo.us(t),
                    obj(vec![("cluster_vm", Value::U64(vm as u64))]),
                ));
            }
        }
    }

    // Close whatever the recording window cut off, in sorted key order.
    let mut open_runs: Vec<_> = running.into_iter().collect();
    open_runs.sort_by_key(|&(vcpu, _)| vcpu);
    for (vcpu, (t0, pcpu)) in open_runs {
        close_run(&mut out, vcpu, t0, pcpu, end);
    }
    let mut open_holds: Vec<_> = holding.into_iter().collect();
    open_holds.sort_by_key(|&(key, _)| key);
    for ((vm, thread, lock), t0) in open_holds {
        out.push(span(
            format!("hold L{lock} (open)"),
            vm as u64 + 1,
            thread as u64,
            topo.us(t0),
            topo.us(end.saturating_sub(t0)),
            Value::Null,
        ));
    }
    let mut open_migs: Vec<_> = mig_open.into_iter().collect();
    open_migs.sort_by_key(|&(sp, _)| sp);
    for (sp, (t0, vm, from, to, attempt, pages)) in open_migs {
        out.push(span(
            format!("migrate vm{vm} {from}->{to} (open)"),
            0,
            TID_MIG_ROW,
            topo.us(t0),
            topo.us(end.saturating_sub(t0)),
            obj(vec![
                ("span", Value::U64(sp as u64)),
                ("attempt", Value::U64(attempt as u64)),
                ("pages", Value::U64(pages)),
            ]),
        ));
    }

    // LHP episode tracks: one process per VM with episodes, one row per
    // lock. Episodes arrive sorted from the detector.
    let mut lhp_vms: Vec<u32> = episodes.iter().map(|e| e.vm).collect();
    lhp_vms.sort_unstable();
    lhp_vms.dedup();
    for &vm in &lhp_vms {
        let name = topo
            .vm_names
            .get(vm as usize)
            .map(String::as_str)
            .unwrap_or("?");
        out.push(meta_name(
            "process_name",
            PID_LHP_BASE + vm as u64,
            None,
            &format!("{name} LHP episodes"),
        ));
    }
    for ep in episodes {
        out.push(span(
            format!("LHP L{} holder t{}", ep.lock, ep.holder_thread),
            PID_LHP_BASE + ep.vm as u64,
            ep.lock as u64,
            topo.us(ep.start),
            topo.us(ep.end.saturating_sub(ep.start)),
            obj(vec![
                ("holder_vcpu", Value::U64(ep.holder_vcpu as u64)),
                ("preempted_for_us", Value::F64(topo.us(ep.preempted_for))),
                ("wasted_spin_us", Value::F64(topo.us(ep.wasted_spin))),
                ("waiters", Value::U64(ep.waiters as u64)),
            ]),
        ));
    }

    obj(vec![
        ("displayTimeUnit", Value::Str("ms".to_string())),
        ("traceEvents", Value::Array(out)),
    ])
}

// -------------------------------------------------- migration cost table

/// Per-span cost row of one causal migration chain: everything the
/// cluster charged for it, summed over attempts. Derived entirely from
/// the flight stream, so the table covers exactly what the trace shows
/// (events dropped at capacity drop out of both together).
#[derive(Clone, Debug, Serialize)]
pub struct MigrationSpan {
    /// Causal span id minted at the chain's first `prepare`.
    pub span: u32,
    /// Cluster-wide VM id being moved.
    pub vm: u32,
    /// Source host of the first attempt.
    pub from: u32,
    /// Destination host.
    pub to: u32,
    /// Attempts observed (1 = committed first try).
    pub attempts: u32,
    /// Dirty pages copied, summed over every attempt.
    pub pages_copied: u64,
    /// Guest-visible pause of the committing attempt, in cycles.
    pub pause_cycles: u64,
    /// Guest-visible dead time of failed attempts, in cycles.
    pub penalty_cycles: u64,
    /// Whether the chain eventually committed.
    pub committed: bool,
    /// Timestamp of the first `prepare`, in cycles.
    pub start: u64,
    /// Timestamp of the final `commit`/`abort`, in cycles.
    pub end: u64,
}

/// Fold a merged (or per-host) event stream into its migration cost
/// table, one row per span id, in span order. Abort penalties re-derive
/// from the stream's timestamps: each abort is stamped at the end of
/// its penalty window, so `abort.t - prepare.t` is the dead time.
pub fn migration_spans(events: &[FlightEvent]) -> Vec<MigrationSpan> {
    use std::collections::BTreeMap;
    let mut spans: BTreeMap<u32, MigrationSpan> = BTreeMap::new();
    let mut last_prepare: BTreeMap<u32, Cycles> = BTreeMap::new();
    for e in events {
        match e.ev {
            FlightEv::MigratePrepare { span, vm, from, to, attempt } => {
                let s = spans.entry(span).or_insert(MigrationSpan {
                    span,
                    vm,
                    from,
                    to,
                    attempts: 0,
                    pages_copied: 0,
                    pause_cycles: 0,
                    penalty_cycles: 0,
                    committed: false,
                    start: e.t.as_u64(),
                    end: e.t.as_u64(),
                });
                s.attempts = s.attempts.max(attempt);
                last_prepare.insert(span, e.t);
            }
            FlightEv::MigrateCopy { span, pages, .. } => {
                if let Some(s) = spans.get_mut(&span) {
                    s.pages_copied += pages;
                }
            }
            FlightEv::MigrateCommit { span, pause, .. } => {
                if let Some(s) = spans.get_mut(&span) {
                    s.pause_cycles = pause;
                    s.committed = true;
                    s.end = e.t.as_u64();
                }
            }
            FlightEv::MigrateAbort { span, .. } => {
                if let Some(s) = spans.get_mut(&span) {
                    if let Some(&t0) = last_prepare.get(&span) {
                        s.penalty_cycles += e.t.saturating_sub(t0).as_u64();
                    }
                    s.end = e.t.as_u64();
                }
            }
            _ => {}
        }
    }
    spans.into_values().collect()
}

// ------------------------------------------------------------ the bundle

/// Serialized artifacts of one traced run.
pub struct TraceArtifacts {
    /// Scheduler label (`"Credit"`, `"ASMan"`).
    pub sched: &'static str,
    /// Chrome trace-event JSON (Perfetto-loadable).
    pub chrome_json: Vec<u8>,
    /// LHP episode summary JSON.
    pub lhp_json: Vec<u8>,
    /// Metrics registry JSON.
    pub metrics_json: Vec<u8>,
    /// Human-readable run summary.
    pub summary: String,
}

/// Capture a traced machine's artifacts: drains the flight recorders,
/// detects LHP episodes, exports the metrics registry and renders the
/// Chrome trace plus text summary.
pub fn capture(m: &mut Machine, sched: &'static str) -> TraceArtifacts {
    let topo = Topo::from_machine(m);
    let totals = m.flight_totals();
    let end = m.now();
    let events = m.flight_events();
    let episodes = detect_lhp(&events);
    let lhp = LhpSummary::from_episodes(&episodes, LHP_KEEP);

    let mut reg = MetricsRegistry::new();
    m.export_metrics(&mut reg);
    reg.inc("lhp.episodes", lhp.episodes);
    reg.inc("lhp.preempted_cycles", lhp.total_preempted.as_u64());
    reg.inc("lhp.wasted_spin_cycles", lhp.total_wasted_spin.as_u64());

    let mut summary = format!("flight recorder — {sched}, {} events retained\n", events.len());
    summary.push_str(&format!(
        "  {:>8} {:>12} {:>12} {:>12}\n",
        "category", "seen", "retained", "dropped"
    ));
    let mut total_dropped = 0;
    for &(cat, seen, dropped) in &totals {
        total_dropped += dropped;
        summary.push_str(&format!(
            "  {:>8} {:>12} {:>12} {:>12}\n",
            cat.name(),
            seen,
            seen - dropped,
            dropped
        ));
    }
    if total_dropped > 0 {
        summary.push_str(&format!(
            "  warning: {total_dropped} events dropped at capacity; raise the buffer \
             capacity or narrow --trace-cats for a complete trace\n"
        ));
    }
    let ms = |c: Cycles| topo.clock.to_ms(c);
    summary.push_str(&format!(
        "LHP: {} episodes, holder off-CPU {:.2} ms, wasted waiter spin {:.2} ms\n",
        lhp.episodes,
        ms(lhp.total_preempted),
        ms(lhp.total_wasted_spin)
    ));
    for ep in lhp.worst.iter().take(5) {
        summary.push_str(&format!(
            "  worst: vm{} L{} holder t{} at {:.1} ms: off-CPU {:.2} ms, wasted {:.2} ms, {} waiter(s)\n",
            ep.vm,
            ep.lock,
            ep.holder_thread,
            ms(ep.start),
            ms(ep.preempted_for),
            ms(ep.wasted_spin),
            ep.waiters
        ));
    }

    let chrome = chrome_trace(&events, &episodes, &topo, end);
    TraceArtifacts {
        sched,
        chrome_json: serde_json::to_vec_pretty(&chrome).expect("serialize chrome trace"),
        lhp_json: serde_json::to_vec_pretty(&lhp).expect("serialize lhp summary"),
        metrics_json: serde_json::to_vec_pretty(&reg).expect("serialize metrics"),
        summary,
    }
}

/// Run the `repro trace` scenario — the paper's most scheduler-sensitive
/// single-VM cell (LU at the 22.2 % online rate, Figure 1's testbed) —
/// under Credit and ASMan with flight recording on, and capture both
/// bundles. The two runs go through the sweep runner, so `--jobs`
/// parallelism applies; artifacts are bit-identical for every job count.
pub fn capture_bundles(p: &FigureParams, cats: CatMask, capacity: usize) -> Vec<TraceArtifacts> {
    p.runner().map(vec![Sched::Credit, Sched::Asman], |sched| {
        let sc = SingleVmScenario::new(sched, 32, p.seed);
        let lu = NasSpec::new(NasBenchmark::LU, p.class, 4).build(p.seed ^ 7);
        let mut m = sc.build(Box::new(lu));
        m.enable_flight(cats, capacity);
        let clk = m.config().clock;
        m.run_until(clk.secs(TRACE_WINDOW_SECS));
        capture(&mut m, sched.label())
    })
}

/// Write a bundle's artifacts into `dir` (created if missing); returns
/// the paths written.
pub fn write_bundles(dir: &Path, bundles: &[TraceArtifacts]) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for b in bundles {
        let tag = b.sched.to_ascii_lowercase();
        for (name, bytes) in [
            (format!("trace_{tag}.json"), &b.chrome_json),
            (format!("lhp_{tag}.json"), &b.lhp_json),
            (format!("metrics_{tag}.json"), &b.metrics_json),
            (format!("summary_{tag}.txt"), &b.summary.clone().into_bytes()),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, bytes)?;
            paths.push(path);
        }
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asman_sim::flight::VM_UNPATCHED;

    fn topo2() -> Topo {
        Topo {
            vm_names: vec!["V0".to_string(), "V1".to_string()],
            vm_first_vcpu: vec![0, 2],
            vm_vcpus: vec![2, 2],
            pcpus: 2,
            clock: Clock::default(),
        }
    }

    fn events_of(doc: &Value) -> &Vec<Value> {
        let Value::Object(top) = doc else { panic!("not an object") };
        let Some((_, Value::Array(evs))) = top.iter().find(|(k, _)| k == "traceEvents") else {
            panic!("no traceEvents array");
        };
        evs
    }

    fn field<'a>(ev: &'a Value, name: &str) -> &'a Value {
        let Value::Object(fields) = ev else { panic!("event not an object") };
        &fields.iter().find(|(k, _)| k == name).expect(name).1
    }

    #[test]
    fn locate_maps_global_vcpus_to_vm_slots() {
        let t = topo2();
        assert_eq!(t.locate(0), (0, 0));
        assert_eq!(t.locate(3), (1, 1));
        assert_eq!(t.locate(9).0, u32::MAX);
    }

    #[test]
    fn chrome_trace_builds_pcpu_spans_and_lock_spans() {
        let clk = Clock::default();
        let t = |ms: u64| clk.ms(ms);
        let evs = vec![
            FlightEvent { t: t(1), ev: FlightEv::Dispatch { vcpu: 2, vm: 1, pcpu: 0 } },
            FlightEvent {
                t: t(2),
                ev: FlightEv::LockContend { vm: 1, vcpu: 2, thread: 0, lock: 3 },
            },
            FlightEvent {
                t: t(3),
                ev: FlightEv::LockAcquire { vm: 1, vcpu: 2, thread: 0, lock: 3, wait: 100 },
            },
            FlightEvent {
                t: t(4),
                ev: FlightEv::LockRelease { vm: 1, vcpu: 2, thread: 0, lock: 3 },
            },
            FlightEvent { t: t(5), ev: FlightEv::Preempt { vcpu: 2, vm: 1, pcpu: 0 } },
            // Still running at end-of-window: closed at `end`.
            FlightEvent { t: t(6), ev: FlightEv::Dispatch { vcpu: 0, vm: 0, pcpu: 1 } },
        ];
        let doc = chrome_trace(&evs, &[], &topo2(), t(10));
        let events = events_of(&doc);
        let spans: Vec<&Value> = events
            .iter()
            .filter(|e| *field(e, "ph") == Value::Str("X".to_string()))
            .collect();
        // spin L3, hold L3, V1/v0 on pcpu0, V0/v0 closed at end.
        assert_eq!(spans.len(), 4);
        assert!(spans
            .iter()
            .any(|s| *field(s, "name") == Value::Str("V1/v0".to_string())));
        assert!(spans
            .iter()
            .any(|s| *field(s, "name") == Value::Str("spin L3".to_string())));
        assert!(spans
            .iter()
            .any(|s| *field(s, "name") == Value::Str("hold L3".to_string())));
        // Metadata names every PCPU row.
        let metas: Vec<&Value> = events
            .iter()
            .filter(|e| *field(e, "ph") == Value::Str("M".to_string()))
            .collect();
        assert!(metas.len() >= 2 + 2);
        // The open dispatch on pcpu1 runs 6 ms..10 ms.
        let open = spans
            .iter()
            .find(|s| *field(s, "name") == Value::Str("V0/v0".to_string()))
            .unwrap();
        let Value::F64(dur) = field(open, "dur") else { panic!("dur not f64") };
        assert!((dur - 4_000.0).abs() < 1.0, "4 ms = 4000 us, got {dur}");
    }

    #[test]
    fn lhp_episodes_get_their_own_process() {
        let clk = Clock::default();
        let ep = LhpEpisode {
            vm: 1,
            lock: 7,
            holder_vcpu: 3,
            holder_thread: 1,
            start: clk.ms(1),
            end: clk.ms(2),
            preempted_for: clk.us(500),
            wasted_spin: clk.us(300),
            waiters: 2,
        };
        let doc = chrome_trace(&[], &[ep], &topo2(), clk.ms(3));
        let events = events_of(&doc);
        let lhp_span = events
            .iter()
            .find(|e| *field(e, "ph") == Value::Str("X".to_string()))
            .expect("episode span");
        assert_eq!(*field(lhp_span, "pid"), Value::U64(PID_LHP_BASE + 1));
        assert_eq!(*field(lhp_span, "tid"), Value::U64(7));
        assert!(events.iter().any(|e| {
            *field(e, "ph") == Value::Str("M".to_string())
                && format!("{:?}", field(e, "args")).contains("LHP")
        }));
    }

    /// A contended two-VM overcommit with tiny per-category buffers:
    /// several categories must overflow, and the drop accounting has to
    /// survive end to end — per-category dropped counts in the text
    /// summary, the warn-once latch on the overflowing layer, and a
    /// merged stream that stays time-ordered past capacity.
    #[test]
    fn capture_reports_drops_and_merge_stays_ordered_past_capacity() {
        use asman_hypervisor::{MachineConfig, VmSpec};
        use asman_workloads::{Op, ScriptProgram};

        asman_sim::trace::set_overflow_warnings(false);
        let clk = Clock::default();
        let mk = || {
            Box::new(
                ScriptProgram::homogeneous(
                    "locky",
                    2,
                    vec![
                        Op::CriticalSection { lock: 0, hold: clk.us(150) },
                        Op::Compute(clk.us(80)),
                    ],
                )
                .looping(),
            )
        };
        let mut m = crate::machine_for(
            crate::Sched::Credit,
            MachineConfig { pcpus: 2, ..MachineConfig::default() },
            vec![VmSpec::new("a", 2, mk()), VmSpec::new("b", 2, mk())],
        );
        m.enable_flight(CatMask::ALL, 64);
        m.run_until(clk.ms(50));

        let totals = m.flight_totals();
        let overflowed: Vec<_> = totals
            .iter()
            .filter(|&&(_, _, dropped)| dropped > 0)
            .collect();
        assert!(
            !overflowed.is_empty(),
            "the 64-event buffers must overflow in 50 ms of contention"
        );
        let warned_somewhere = overflowed.iter().any(|&&(cat, _, _)| {
            m.flight().warned(cat)
                || (0..m.vm_count()).any(|vm| m.vm_kernel(vm).flight().warned(cat))
        });
        assert!(warned_somewhere, "an overflowing layer must latch its warning");

        let art = capture(&mut m, "Credit");
        for &&(cat, seen, dropped) in &overflowed {
            let row = format!(
                "  {:>8} {:>12} {:>12} {:>12}\n",
                cat.name(),
                seen,
                seen - dropped,
                dropped
            );
            assert!(
                art.summary.contains(&row),
                "summary must carry the `{}` drop row:\n{}",
                cat.name(),
                art.summary
            );
        }
        assert!(
            art.summary.contains("warning:") && art.summary.contains("dropped at capacity"),
            "summary must warn about drops:\n{}",
            art.summary
        );
        asman_sim::trace::set_overflow_warnings(true);
    }

    #[test]
    fn merged_stream_stays_ordered_past_capacity() {
        use asman_hypervisor::{MachineConfig, VmSpec};
        use asman_workloads::{Op, ScriptProgram};

        asman_sim::trace::set_overflow_warnings(false);
        let clk = Clock::default();
        let mk = || {
            Box::new(
                ScriptProgram::homogeneous(
                    "locky",
                    2,
                    vec![
                        Op::CriticalSection { lock: 0, hold: clk.us(150) },
                        Op::Compute(clk.us(80)),
                    ],
                )
                .looping(),
            )
        };
        let mut m = crate::machine_for(
            crate::Sched::Credit,
            MachineConfig { pcpus: 2, ..MachineConfig::default() },
            vec![VmSpec::new("a", 2, mk()), VmSpec::new("b", 2, mk())],
        );
        m.enable_flight(CatMask::ALL, 64);
        m.run_until(clk.ms(50));
        assert!(m.flight_totals().iter().any(|&(_, _, d)| d > 0));
        let events = m.flight_events();
        assert!(!events.is_empty());
        assert!(
            events.windows(2).all(|w| w[0].t <= w[1].t),
            "merged stream must stay time-ordered past capacity"
        );
        asman_sim::trace::set_overflow_warnings(true);
    }

    /// One abort-then-commit retry chain: the chrome trace must carry
    /// one slice per attempt on the migration row (abort slice spans
    /// the penalty window, commit slice spans the pause), and the cost
    /// table must fold both attempts into one span row.
    #[test]
    fn migration_chain_renders_spans_and_cost_table() {
        let clk = Clock::default();
        let t = |ms: u64| clk.ms(ms);
        let sp = 7u32;
        let evs = vec![
            FlightEvent {
                t: t(1),
                ev: FlightEv::MigratePrepare { span: sp, vm: 3, from: 0, to: 2, attempt: 1 },
            },
            FlightEvent { t: t(1), ev: FlightEv::MigrateCopy { span: sp, vm: 3, pages: 100 } },
            FlightEvent { t: t(3), ev: FlightEv::MigrateAbort { span: sp, vm: 3, attempt: 1 } },
            FlightEvent { t: t(5), ev: FlightEv::MigrateRetry { span: sp, vm: 3, attempt: 2 } },
            FlightEvent {
                t: t(5),
                ev: FlightEv::MigratePrepare { span: sp, vm: 3, from: 0, to: 2, attempt: 2 },
            },
            FlightEvent { t: t(5), ev: FlightEv::MigrateCopy { span: sp, vm: 3, pages: 40 } },
            FlightEvent {
                t: t(6),
                ev: FlightEv::MigrateCommit {
                    span: sp,
                    vm: 3,
                    to: 2,
                    pause: clk.ms(1).as_u64(),
                },
            },
        ];
        let doc = chrome_trace(&evs, &[], &topo2(), t(10));
        let events = events_of(&doc);
        let slices: Vec<&Value> = events
            .iter()
            .filter(|e| {
                *field(e, "ph") == Value::Str("X".to_string())
                    && *field(e, "tid") == Value::U64(TID_MIG_ROW)
            })
            .collect();
        assert_eq!(slices.len(), 2, "one slice per attempt");
        let abort = slices
            .iter()
            .find(|s| *field(s, "name") == Value::Str("migrate ABORT vm3 0->2 (attempt 1)".into()))
            .expect("abort slice");
        let Value::F64(dur) = field(abort, "dur") else { panic!("dur not f64") };
        assert!((dur - 2_000.0).abs() < 1.0, "abort spans 1ms..3ms = 2000us, got {dur}");
        assert!(slices
            .iter()
            .any(|s| *field(s, "name") == Value::Str("migrate vm3 0->2".into())));
        assert!(
            events.iter().any(|e| *field(e, "ph") == Value::Str("M".into())
                && format!("{:?}", field(e, "args")).contains("migrations")),
            "migration row must be named"
        );

        let table = migration_spans(&evs);
        assert_eq!(table.len(), 1);
        let row = &table[0];
        assert_eq!((row.span, row.vm, row.from, row.to), (sp, 3, 0, 2));
        assert_eq!(row.attempts, 2);
        assert_eq!(row.pages_copied, 140, "pages sum over attempts");
        assert_eq!(row.pause_cycles, clk.ms(1).as_u64());
        assert_eq!(row.penalty_cycles, t(3).saturating_sub(t(1)).as_u64());
        assert!(row.committed);
        assert_eq!((row.start, row.end), (t(1).as_u64(), t(6).as_u64()));
    }

    /// A prepare cut off by the recording window closes at `end` and an
    /// uncommitted chain reads as such in the cost table.
    #[test]
    fn open_migration_span_closes_at_window_end() {
        let clk = Clock::default();
        let evs = vec![FlightEvent {
            t: clk.ms(2),
            ev: FlightEv::MigratePrepare { span: 0, vm: 1, from: 1, to: 0, attempt: 1 },
        }];
        let doc = chrome_trace(&evs, &[], &topo2(), clk.ms(4));
        let open = events_of(&doc)
            .iter()
            .find(|e| *field(e, "name") == Value::Str("migrate vm1 1->0 (open)".into()))
            .expect("open slice");
        let Value::F64(dur) = field(open, "dur") else { panic!("dur not f64") };
        assert!((dur - 2_000.0).abs() < 1.0);
        let table = migration_spans(&evs);
        assert_eq!(table.len(), 1);
        assert!(!table[0].committed);
        assert_eq!(table[0].pause_cycles, 0);
    }

    #[test]
    fn futex_names_distinguish_peer_flags() {
        assert_eq!(futex_name(4), "f4");
        assert_eq!(futex_name(PEER_FUTEX_BIT | 2), "peer t2");
        // Exercise the unpatched sentinel to keep the import honest.
        assert_eq!(VM_UNPATCHED, u32::MAX);
    }
}
