//! Generic parameter sweep: benchmark × online rate × scheduler.
//!
//! ```text
//! sweep [--bench LU,SP,...|all] [--rates 100,66.7,40,22.2]
//!       [--scheds credit,asman,con] [--class s|w|a] [--seed N] [--csv]
//! ```
//!
//! Prints one row per (benchmark, rate, scheduler) with run time,
//! slowdown vs the 100% Credit baseline, spin waste and VCRD activity —
//! the workhorse for exploring beyond the paper's fixed grid.

use asman_report::{Sched, SingleVmScenario};
use asman_workloads::{NasBenchmark, NasSpec, ProblemClass};

struct Args {
    benches: Vec<NasBenchmark>,
    rates: Vec<(u32, f64)>,
    scheds: Vec<Sched>,
    class: ProblemClass,
    seed: u64,
    csv: bool,
}

fn weight_for(rate_pct: f64) -> u32 {
    // Invert Equation 2 with V0 weight 256, |P| = 8, |C| = 4:
    // rate = 2w/(w+256)  =>  w = 256*rate/(2-rate).
    let rate = rate_pct / 100.0;
    ((256.0 * rate / (2.0 - rate)).round() as u32).max(1)
}

fn parse() -> Args {
    let mut benches = vec![NasBenchmark::LU];
    let mut rates = vec![(256, 100.0), (128, 66.7), (64, 40.0), (32, 22.2)];
    let mut scheds = vec![Sched::Credit, Sched::Asman];
    let mut class = ProblemClass::S;
    let mut seed = 42;
    let mut csv = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench" => {
                let v = it.next().expect("--bench LIST");
                if v == "all" {
                    benches = NasBenchmark::ALL.to_vec();
                } else {
                    benches = v
                        .split(',')
                        .map(|n| {
                            NasBenchmark::ALL
                                .into_iter()
                                .find(|b| b.name().eq_ignore_ascii_case(n))
                                .unwrap_or_else(|| panic!("unknown benchmark {n}"))
                        })
                        .collect();
                }
            }
            "--rates" => {
                rates = it
                    .next()
                    .expect("--rates LIST")
                    .split(',')
                    .map(|r| {
                        let pct: f64 = r.parse().expect("rate percent");
                        (weight_for(pct), pct)
                    })
                    .collect();
            }
            "--scheds" => {
                scheds = it
                    .next()
                    .expect("--scheds LIST")
                    .split(',')
                    .map(|s| match s {
                        "credit" => Sched::Credit,
                        "asman" => Sched::Asman,
                        "con" => Sched::Con,
                        other => panic!("unknown scheduler {other}"),
                    })
                    .collect();
            }
            "--class" => {
                class = match it.next().as_deref() {
                    Some("s") => ProblemClass::S,
                    Some("w") => ProblemClass::W,
                    Some("a") => ProblemClass::A,
                    other => panic!("unknown class {other:?}"),
                };
            }
            "--seed" => seed = it.next().expect("--seed N").parse().expect("seed"),
            "--csv" => csv = true,
            other => panic!("unknown argument {other}"),
        }
    }
    Args {
        benches,
        rates,
        scheds,
        class,
        seed,
        csv,
    }
}

fn main() {
    let args = parse();
    if args.csv {
        println!("bench,rate_pct,sched,run_secs,slowdown,spin_secs,vcrd_raises,high_frac");
    } else {
        println!(
            "{:<6} {:>7} {:<7} {:>9} {:>9} {:>9} {:>7} {:>6}",
            "bench", "rate%", "sched", "run(s)", "slowdown", "spin(s)", "raises", "high%"
        );
    }
    for bench in &args.benches {
        // Baseline: Credit at 100%.
        let base = SingleVmScenario::new(Sched::Credit, 256, args.seed).run(Box::new(
            NasSpec::new(*bench, args.class, 4).build(args.seed ^ 7),
        ));
        for &(w, pct) in &args.rates {
            for &sched in &args.scheds {
                let out = SingleVmScenario::new(sched, w, args.seed).run(Box::new(
                    NasSpec::new(*bench, args.class, 4).build(args.seed ^ 7),
                ));
                let spin = out.spin_kernel_secs + out.spin_pipeline_secs + out.spin_barrier_secs;
                if args.csv {
                    println!(
                        "{},{},{},{:.3},{:.3},{:.3},{},{:.3}",
                        bench.name(),
                        pct,
                        sched.label(),
                        out.run_secs,
                        out.run_secs / base.run_secs,
                        spin,
                        out.vcrd_raises,
                        out.vcrd_high_frac
                    );
                } else {
                    println!(
                        "{:<6} {:>7.1} {:<7} {:>9.1} {:>9.2} {:>9.2} {:>7} {:>6.1}",
                        bench.name(),
                        pct,
                        sched.label(),
                        out.run_secs,
                        out.run_secs / base.run_secs,
                        spin,
                        out.vcrd_raises,
                        out.vcrd_high_frac * 100.0
                    );
                }
            }
        }
    }
}
