//! Calibration probe for the multi-VM combinations (not a paper figure).
fn main() {
    use asman_report::{
        multivm::{paper_combination, MultiVmScenario},
        Sched,
    };
    use asman_workloads::ProblemClass;
    for which in [1u8, 2] {
        let mut sc =
            MultiVmScenario::new(Sched::Asman, paper_combination(which), ProblemClass::W, 42);
        sc.rounds = 3;
        let rows = sc.run();
        for r in &rows {
            asman_report::progress!(
                "combo{} {} mean={:.1}s raises={} online={:.2}",
                which, r.workload, r.mean_round_secs, r.vcrd_raises, r.online_rate
            );
        }
    }
}
