//! Diagnostic probe: sample VM1's VCPU states over time at a low online
//! rate to inspect duty-cycle geometry (calibration aid, not a paper
//! experiment).

use asman_report::{Sched, SingleVmScenario};
use asman_sim::Clock;
use asman_workloads::{NasBenchmark, NasSpec, ProblemClass};

fn main() {
    let sched = match std::env::args().nth(1).as_deref() {
        Some("asman") => Sched::Asman,
        _ => Sched::Credit,
    };
    let clk = Clock::default();
    let sc = SingleVmScenario::new(sched, 32, 42); // 22.2%
    let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::W, 4).build(7);
    let mut m = sc.build(Box::new(lu));
    // Warm up 2 s, then sample ~1 ms for 400 ms.
    m.run_until(clk.secs(2));
    let mut next = m.now();
    let step = clk.us(1000);
    let end = m.now() + clk.ms(400);
    while m.now() < end {
        let stop = next;
        m.run_until(stop);
        let snap = m.vcpu_snapshot(1);
        let states: String = snap
            .iter()
            .map(|(d, _)| match d {
                1 => 'R',
                0 => '.',
                _ => '_',
            })
            .collect();
        let credits: Vec<i64> = snap.iter().map(|(_, c)| c / 1_000_000).collect();
        println!(
            "{:9.1}ms {} credits(M){:?} vcrd={:?}",
            clk.to_ms(m.now()),
            states,
            credits,
            m.vm_vcrd(1)
        );
        next = stop + step;
    }
    let acct = m.vm_accounting(1);
    asman_report::progress!(
        "high_all_online_frac={:.3} bursts={} raises={}",
        acct.high_all_online_frac(),
        acct.cosched_bursts,
        acct.vcrd_raises
    );
}

// (extended diagnostics appended by calibration work; see main above)
