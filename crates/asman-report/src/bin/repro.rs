//! Regenerate the paper's figures.
//!
//! ```text
//! repro [fig1|fig2|fig7|fig8|fig9|fig10|fig11|fig12|all|timeline]
//!       [--class s|w|a] [--seed N] [--rounds N] [--json DIR]
//! ```
//!
//! `timeline` renders an ASCII Gantt chart of the guest VM's VCPU duty
//! cycles at a 22.2% online rate, under Credit and under ASMan — the
//! visual core of the paper in two panels.
//!
//! Prints each figure's table and shape checks; `--json DIR` additionally
//! writes the raw series as JSON artifacts.

use std::fs;
use std::path::PathBuf;

use asman_report::figures::{
    fig01, fig02, fig07, fig08, fig09, fig10, fig11, fig12, FigureParams, ShapeCheck,
};
use asman_workloads::ProblemClass;

struct Args {
    which: Vec<String>,
    params: FigureParams,
    json_dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut which = Vec::new();
    let mut params = FigureParams::default();
    let mut json_dir = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--class" => {
                params.class = match it.next().as_deref() {
                    Some("s") => ProblemClass::S,
                    Some("w") => ProblemClass::W,
                    Some("a") => ProblemClass::A,
                    other => panic!("unknown class {other:?} (use s|w|a)"),
                };
            }
            "--seed" => {
                params.seed = it.next().expect("--seed N").parse().expect("seed number");
            }
            "--rounds" => {
                params.rounds = it
                    .next()
                    .expect("--rounds N")
                    .parse()
                    .expect("rounds number");
            }
            "--json" => {
                json_dir = Some(PathBuf::from(it.next().expect("--json DIR")));
            }
            fig => which.push(fig.to_string()),
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = [
            "fig1", "fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        ]
        .map(String::from)
        .to_vec();
    }
    Args {
        which,
        params,
        json_dir,
    }
}

fn emit<T: serde::Serialize>(
    args: &Args,
    name: &str,
    table: String,
    checks: Vec<ShapeCheck>,
    value: &T,
) {
    println!("{table}");
    for c in &checks {
        println!(
            "  [{}] {} — {}",
            if c.holds { "PASS" } else { "MISS" },
            c.claim,
            c.evidence
        );
    }
    println!();
    if let Some(dir) = &args.json_dir {
        fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join(format!("{name}.json"));
        fs::write(&path, serde_json::to_vec_pretty(value).expect("serialize")).expect("write json");
        eprintln!("wrote {}", path.display());
    }
}

fn run_timeline(p: &FigureParams) {
    use asman_report::{Sched, SingleVmScenario, Timeline};
    use asman_sim::Clock;
    use asman_workloads::{NasBenchmark, NasSpec};
    let clk = Clock::default();
    for sched in [Sched::Credit, Sched::Asman] {
        let sc = SingleVmScenario::new(sched, 32, p.seed);
        let lu = NasSpec::new(NasBenchmark::LU, p.class, 4).build(p.seed ^ 7);
        let mut m = sc.build(Box::new(lu));
        m.enable_schedule_trace(500_000);
        m.run_until(clk.secs(3));
        let tl = Timeline::from_machine(&m);
        println!(
            "LU @ 22.2% under {} — guest VCPU duty cycles, 400 ms window\n(# online, + partial, . offline; rows: dom0 x8 then guest x4)",
            sched.label()
        );
        println!("{}", tl.gantt(clk.secs(2), clk.secs(2) + clk.ms(400), 100));
    }
}

fn main() {
    let args = parse_args();
    let p = &args.params;
    eprintln!(
        "class={:?} seed={} rounds={} figures={:?}",
        p.class, p.seed, p.rounds, args.which
    );
    for fig in args.which.clone() {
        let t0 = std::time::Instant::now();
        match fig.as_str() {
            "fig1" => {
                let f = fig01::run(p);
                emit(&args, "fig01", f.render(), f.shape_checks(), &f);
            }
            "fig2" => {
                let f = fig02::run(p);
                emit(&args, "fig02", f.render(), f.shape_checks(), &f);
            }
            "fig7" => {
                let f = fig07::run(p);
                emit(&args, "fig07", f.render(), f.shape_checks(), &f);
            }
            "fig8" => {
                let f = fig08::run(p);
                emit(&args, "fig08", f.render(), f.shape_checks(), &f);
            }
            "fig9" => {
                let f = fig09::run(p);
                emit(&args, "fig09", f.render(), f.shape_checks(), &f);
            }
            "fig10" => {
                let f = fig10::run(p);
                emit(&args, "fig10", f.render(), f.shape_checks(), &f);
            }
            "fig11" => {
                let f = fig11::run(p);
                emit(&args, "fig11", f.render(), f.shape_checks(), &f);
            }
            "fig12" => {
                let f = fig12::run(p);
                emit(&args, "fig12", f.render(), f.shape_checks(), &f);
            }
            "timeline" => run_timeline(p),
            "extensions" => {
                let f = asman_report::extensions::run(p);
                emit(&args, "extensions", f.render(), f.shape_checks(), &f);
            }
            other => eprintln!("unknown figure {other}"),
        }
        eprintln!("[{fig} took {:.1?}]", t0.elapsed());
    }
}
