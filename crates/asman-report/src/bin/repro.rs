//! Regenerate the paper's figures.
//!
//! ```text
//! repro [fig1|fig2|fig7|fig8|fig9|fig10|fig11|fig12|all|timeline|extensions|perf|trace|audit]
//!       [--class s|w|a] [--seed N] [--rounds N] [--jobs N] [--json DIR]
//!       [--trace DIR] [--trace-cats LIST] [--cells N] [-q]
//! ```
//!
//! `timeline` renders an ASCII Gantt chart of the guest VM's VCPU duty
//! cycles at a 22.2% online rate, under Credit and under ASMan — the
//! visual core of the paper in two panels.
//!
//! `perf` benchmarks the simulation engine itself (events/sec with the
//! flight recorder disabled, gated — armed but recording nothing — and
//! fully capturing) and writes `BENCH_engine.json`.
//!
//! `audit` runs the differential oracle harness: `--cells N` randomized
//! scenario cells (default 200), each executed on both the optimized
//! engine and the naive oracle, comparing digests and full flight-event
//! streams; exits non-zero on any divergence. Build with
//! `--features audit` to also run the in-engine invariant auditor.
//!
//! `trace` flight-records the Figure 1 testbed (LU at the 22.2% online
//! rate) under Credit and ASMan, and writes Perfetto-loadable Chrome
//! trace JSON, LHP episode summaries and a metrics dump into the
//! `--trace` directory. Passing `--trace DIR` alongside figure targets
//! appends the trace bundle to the run.
//!
//! `series` re-runs the consolidation cluster with the telemetry layer
//! armed and renders the epoch × metric sparkline timeline, the
//! trailing-window Nσ anomaly pass, per-host scheduler-latency
//! quantiles and the reaction-latency summary; `--json DIR` writes
//! `CLUSTER_series_<policy>.json` per policy.
//!
//! Prints each figure's table and shape checks; `--json DIR` additionally
//! writes the raw series as JSON artifacts.

use std::fs;
use std::path::PathBuf;

use asman_cluster::{ChurnSpec, Policy};
use asman_report::bisect::Mutation;
use asman_report::figures::{
    fig01, fig02, fig07, fig08, fig09, fig10, fig11, fig12, FigureParams, ShapeCheck,
};
use asman_report::{flightrec, logger, progress};
use asman_sim::{CatMask, FaultPlan, FaultSpec};
use asman_workloads::ProblemClass;

struct Args {
    which: Vec<String>,
    params: FigureParams,
    json_dir: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    trace_cats: CatMask,
    audit_cells: usize,
    hosts: usize,
    cluster_vms: usize,
    cluster_epochs: u64,
    cluster_policy: Option<Policy>,
    cluster_faults: FaultPlan,
    cluster_churn: ChurnSpec,
    cluster_epochs_set: bool,
    audit_every: u64,
    cluster_bench: bool,
    bench_hosts: Vec<usize>,
    bench_jobs: Vec<usize>,
    series_window: usize,
    series_nsigma: f64,
    max_moves: Option<usize>,
    checkpoint_every: u64,
    resume: Option<PathBuf>,
    scenario_flags_set: Vec<&'static str>,
    b_policy: Option<Policy>,
    b_seed: Option<u64>,
    b_faults: Option<FaultSpec>,
    b_churn: Option<ChurnSpec>,
    b_mutate: Option<Mutation>,
}

impl Args {
    /// The resolved per-epoch move budget: explicit `--max-moves`, or
    /// the scale default `max(1, hosts/8)` — 1 for every pinned
    /// scenario (hosts <= 8), so defaults keep golden digests intact.
    fn resolved_max_moves(&self) -> usize {
        self.max_moves.unwrap_or_else(|| (self.hosts / 8).max(1))
    }
}

const KNOWN_TARGETS: [&str; 17] = [
    "fig1",
    "fig2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "timeline",
    "extensions",
    "perf",
    "trace",
    "audit",
    "cluster",
    "series",
    "soak",
    "bisect",
];

fn usage() -> String {
    format!(
        "usage: repro [TARGET ...] [OPTIONS]\n\n\
         Targets (default: all figures):\n  \
         {}\n  \
         all         every figN target\n\n\
         Options:\n  \
         --class s|w|a   NAS problem class (default w)\n  \
         --seed N        base RNG seed (default 42)\n  \
         --rounds N      measured rounds for round-based figures (default 5)\n  \
         --jobs N        sweep worker threads; 0 = one per core (default 0).\n                  \
         Results are bit-identical for every value.\n  \
         --json DIR      also write raw series as JSON artifacts into DIR\n  \
         --trace DIR     write the flight-recorder bundle (Chrome trace,\n                  \
         LHP episodes, metrics) into DIR; implies the `trace` target\n  \
         --trace-cats L  comma-separated categories to record\n                  \
         (sched,credit,cosched,lock,futex,barrier; default all)\n  \
         --cells N       audit grid size for the `audit` target (default 200)\n  \
         --hosts N       cluster target: simulated hosts (default 3)\n  \
         --vms N         cluster target: gang VMs consolidated on host 0 (default 2)\n  \
         --epochs N      cluster target: balancer epochs (default 8)\n  \
         --policy P      cluster target: compare only static vs P\n                  \
         (static|least-loaded|vcrd-aware; default: all three)\n  \
         --faults PLAN   cluster target: inject faults. PLAN is either a\n                  \
         comma list of crash@E:hH | slow@E:hH:P | abort@E tokens,\n                  \
         or rand:SEED for a generated plan\n  \
         --churn PLAN    soak target: VM arrival/departure schedule. PLAN is\n                  \
         a comma list of arrive@E:gangN[:wW] | arrive@E:bgN[:wW] |\n                  \
         depart@E:hH:vV tokens, or rand:SEED:RATE for a generated\n                  \
         plan (RATE%% arrival + RATE%% departure chance per epoch)\n  \
         --audit-every N soak target: audit + occupancy-checkpoint cadence\n                  \
         in epochs (default 1000; the end-of-run audit always runs)\n  \
         --max-moves N   cluster-family targets: concurrent migrations the\n                  \
         balancer may plan per epoch (default: hosts/8, floored at 1;\n                  \
         1 reproduces the historical single-move driver bit-for-bit)\n  \
         --checkpoint-every N\n                  \
         soak target: write a CKPT_<epoch>.json checkpoint into the\n                  \
         --json directory every N epochs (requires --json DIR)\n  \
         --resume CKPT   soak target: resume from a checkpoint file, or from\n                  \
         a directory (picks the newest CKPT_<epoch>.json by\n                  \
         numeric epoch). The run\n                  \
         replays to the checkpoint epoch, verifies the replay against\n                  \
         the artifact, applies its state, and continues — output is\n                  \
         byte-identical to the uninterrupted run. The scenario comes\n                  \
         from the checkpoint: --hosts/--vms/--seed/--churn/--faults\n                  \
         conflict with --resume (--epochs/--jobs/--json still apply)\n  \
         --b-policy P    bisect target: side B's policy (default: side A's)\n  \
         --b-seed N      bisect target: side B's seed (default: side A's)\n  \
         --b-faults PLAN bisect target: side B's fault plan\n  \
         --b-churn PLAN  bisect target: side B's churn plan\n  \
         --b-mutate M    bisect target: inject a behavioral mutation into\n                  \
         side B: dirty-undercount (halved dirty-page rate) or\n                  \
         boost-skip (host 0 skips BOOST; needs --features audit)\n  \
         --bench         cluster target: run the hosts x jobs performance\n                  \
         grid instead of the consolidation experiment and write\n                  \
         BENCH_cluster.json (warmup + median-of-3 per cell)\n  \
         --bench-hosts L comma list of host counts for --bench (default 2,4,8)\n  \
         --bench-jobs L  comma list of worker counts for --bench\n                  \
         (default 1,2,4,8; 0 = one per core)\n  \
         --window N      series target: trailing-window length in epochs\n                  \
         for the anomaly pass (default 4)\n  \
         --nsigma X      series target: flag samples more than X sigma\n                  \
         above the trailing mean (default 3.0)\n  \
         -q, --quiet     suppress progress lines on stderr\n  \
         -h, --help      show this help",
        KNOWN_TARGETS.join(" "),
    )
}

fn fail(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("{}", usage());
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut which = Vec::new();
    let mut params = FigureParams::default();
    let mut json_dir = None;
    let mut trace_dir = None;
    let mut trace_cats = CatMask::ALL;
    let mut audit_cells = 200usize;
    let mut hosts = 3usize;
    let mut cluster_vms = 2usize;
    let mut cluster_epochs = 8u64;
    let mut cluster_policy = None;
    let mut cluster_faults: Option<FaultSpec> = None;
    let mut cluster_churn: Option<ChurnSpec> = None;
    let mut cluster_epochs_set = false;
    let mut audit_every = 1_000u64;
    let mut cluster_bench = false;
    let mut bench_hosts = vec![2usize, 4, 8];
    let mut bench_jobs = vec![1usize, 2, 4, 8];
    let mut series_window = asman_report::series::DEFAULT_WINDOW;
    let mut series_nsigma = asman_report::series::DEFAULT_NSIGMA;
    let mut max_moves: Option<usize> = None;
    let mut checkpoint_every = 0u64;
    let mut resume = None;
    let mut scenario_flags_set: Vec<&'static str> = Vec::new();
    let mut b_policy = None;
    let mut b_seed = None;
    let mut b_faults: Option<FaultSpec> = None;
    let mut b_churn: Option<ChurnSpec> = None;
    let mut b_mutate = None;
    // Comma-separated numeric list for the bench grid flags; any
    // non-numeric element exits 2 like every other malformed value.
    fn parse_list(flag: &str, v: &str) -> Vec<usize> {
        let vals: Vec<usize> = v
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("{flag} `{tok}` is not a number")))
            })
            .collect();
        if vals.is_empty() {
            fail(&format!("{flag} needs at least one value"));
        }
        vals
    }
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            "-q" | "--quiet" => logger::set_quiet(true),
            "--trace" => {
                trace_dir = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| fail("--trace needs a directory")),
                ));
            }
            "--trace-cats" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--trace-cats needs a category list"));
                trace_cats = CatMask::parse(&v).unwrap_or_else(|| {
                    fail(&format!(
                        "--trace-cats `{v}` has an unknown category \
                         (known: sched,credit,cosched,lock,futex,barrier,fault)"
                    ))
                });
            }
            "--class" => {
                params.class = match it.next().as_deref().map(str::to_ascii_lowercase).as_deref() {
                    Some("s") => ProblemClass::S,
                    Some("w") => ProblemClass::W,
                    Some("a") => ProblemClass::A,
                    Some(other) => fail(&format!("unknown class `{other}` (use s|w|a)")),
                    None => fail("--class needs a value (s|w|a)"),
                };
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| fail("--seed needs a value"));
                params.seed = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--seed `{v}` is not a number")));
                scenario_flags_set.push("--seed");
            }
            "--rounds" => {
                let v = it.next().unwrap_or_else(|| fail("--rounds needs a value"));
                params.rounds = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--rounds `{v}` is not a number")));
            }
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| fail("--jobs needs a value"));
                params.jobs = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--jobs `{v}` is not a number")));
            }
            "--json" => {
                json_dir = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| fail("--json needs a directory")),
                ));
            }
            "--cells" => {
                let v = it.next().unwrap_or_else(|| fail("--cells needs a value"));
                audit_cells = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--cells `{v}` is not a number")));
            }
            "--hosts" => {
                let v = it.next().unwrap_or_else(|| fail("--hosts needs a value"));
                hosts = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--hosts `{v}` is not a number")));
                if hosts < 2 {
                    fail("--hosts must be at least 2 (migration needs a destination)");
                }
                scenario_flags_set.push("--hosts");
            }
            "--vms" => {
                let v = it.next().unwrap_or_else(|| fail("--vms needs a value"));
                cluster_vms = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--vms `{v}` is not a number")));
                if cluster_vms < 1 {
                    fail("--vms must be at least 1");
                }
                scenario_flags_set.push("--vms");
            }
            "--epochs" => {
                let v = it.next().unwrap_or_else(|| fail("--epochs needs a value"));
                cluster_epochs = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--epochs `{v}` is not a number")));
                if cluster_epochs < 1 {
                    fail("--epochs must be at least 1");
                }
                cluster_epochs_set = true;
            }
            "--faults" => {
                let v = it.next().unwrap_or_else(|| fail("--faults needs a plan"));
                cluster_faults = Some(
                    FaultSpec::parse(&v).unwrap_or_else(|e| fail(&format!("--faults {e}"))),
                );
                scenario_flags_set.push("--faults");
            }
            "--churn" => {
                let v = it.next().unwrap_or_else(|| fail("--churn needs a plan"));
                cluster_churn = Some(
                    ChurnSpec::parse(&v).unwrap_or_else(|e| fail(&format!("--churn {e}"))),
                );
                scenario_flags_set.push("--churn");
            }
            "--audit-every" => {
                let v = it.next().unwrap_or_else(|| fail("--audit-every needs a value"));
                audit_every = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--audit-every `{v}` is not a number")));
                if audit_every < 1 {
                    fail("--audit-every must be at least 1");
                }
            }
            "--window" => {
                let v = it.next().unwrap_or_else(|| fail("--window needs a value"));
                series_window = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--window `{v}` is not a number")));
                if series_window < 1 {
                    fail("--window must be at least 1");
                }
            }
            "--nsigma" => {
                let v = it.next().unwrap_or_else(|| fail("--nsigma needs a value"));
                series_nsigma = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--nsigma `{v}` is not a number")));
                if !series_nsigma.is_finite() || series_nsigma <= 0.0 {
                    fail("--nsigma must be a positive finite number");
                }
            }
            "--max-moves" => {
                let v = it.next().unwrap_or_else(|| fail("--max-moves needs a value"));
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--max-moves `{v}` is not a number")));
                if n < 1 {
                    fail("--max-moves must be at least 1");
                }
                max_moves = Some(n);
                scenario_flags_set.push("--max-moves");
            }
            "--checkpoint-every" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--checkpoint-every needs a value"));
                checkpoint_every = v.parse().unwrap_or_else(|_| {
                    fail(&format!("--checkpoint-every `{v}` is not a number"))
                });
                if checkpoint_every < 1 {
                    fail("--checkpoint-every must be at least 1");
                }
            }
            "--resume" => {
                resume = Some(PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| fail("--resume needs a checkpoint file")),
                ));
            }
            "--b-policy" => {
                let v = it.next().unwrap_or_else(|| {
                    fail("--b-policy needs a value (static|least-loaded|vcrd-aware)")
                });
                b_policy = Some(Policy::parse(&v).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown policy `{v}` (use static|least-loaded|vcrd-aware)"
                    ))
                }));
            }
            "--b-seed" => {
                let v = it.next().unwrap_or_else(|| fail("--b-seed needs a value"));
                b_seed = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("--b-seed `{v}` is not a number"))),
                );
            }
            "--b-faults" => {
                let v = it.next().unwrap_or_else(|| fail("--b-faults needs a plan"));
                b_faults = Some(
                    FaultSpec::parse(&v).unwrap_or_else(|e| fail(&format!("--b-faults {e}"))),
                );
            }
            "--b-churn" => {
                let v = it.next().unwrap_or_else(|| fail("--b-churn needs a plan"));
                b_churn = Some(
                    ChurnSpec::parse(&v).unwrap_or_else(|e| fail(&format!("--b-churn {e}"))),
                );
            }
            "--b-mutate" => {
                let v = it.next().unwrap_or_else(|| {
                    fail("--b-mutate needs a value (dirty-undercount|boost-skip)")
                });
                b_mutate = Some(Mutation::parse(&v).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown mutation `{v}` (use dirty-undercount|boost-skip)"
                    ))
                }));
            }
            "--bench" => cluster_bench = true,
            "--bench-hosts" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--bench-hosts needs a comma list"));
                bench_hosts = parse_list("--bench-hosts", &v);
                if bench_hosts.iter().any(|&h| h < 2) {
                    fail("--bench-hosts values must be at least 2");
                }
            }
            "--bench-jobs" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--bench-jobs needs a comma list"));
                bench_jobs = parse_list("--bench-jobs", &v);
            }
            "--policy" => {
                let v = it.next().unwrap_or_else(|| {
                    fail("--policy needs a value (static|least-loaded|vcrd-aware)")
                });
                cluster_policy = Some(Policy::parse(&v).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown policy `{v}` (use static|least-loaded|vcrd-aware)"
                    ))
                }));
            }
            flag if flag.starts_with('-') => fail(&format!("unknown option `{flag}`")),
            "all" => which.push("all".to_string()),
            fig if KNOWN_TARGETS.contains(&fig) => which.push(fig.to_string()),
            other => fail(&format!("unknown target `{other}`")),
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        let mut all: Vec<String> = [
            "fig1", "fig2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        ]
        .map(String::from)
        .to_vec();
        // Keep explicitly named non-figure targets alongside `all`.
        all.extend(which.into_iter().filter(|w| w != "all" && !w.starts_with("fig")));
        which = all;
    }
    // `--trace DIR` alongside figure targets appends the trace bundle.
    if trace_dir.is_some() && !which.iter().any(|w| w == "trace") {
        which.push("trace".to_string());
    }
    // Resolve the fault spec now that epochs/hosts are final, and
    // reject plans naming hosts the cluster won't have.
    let cluster_faults = match cluster_faults {
        Some(spec) => {
            let plan = spec.resolve(cluster_epochs, hosts);
            if let Some(h) = plan.max_host() {
                if h >= hosts {
                    fail(&format!(
                        "--faults names host {h} but the cluster only has {hosts} hosts"
                    ));
                }
            }
            plan
        }
        None => FaultPlan::empty(),
    };
    // A soak with no explicit --epochs runs the full default horizon,
    // not the 8-epoch cluster-experiment default.
    let cluster_churn = cluster_churn.unwrap_or_default();
    if let Some(h) = cluster_churn.resolve(1, hosts).max_host() {
        if h >= hosts {
            fail(&format!(
                "--churn names host {h} but the cluster only has {hosts} hosts"
            ));
        }
    }
    // Checkpoints are artifacts: they need somewhere to land.
    if checkpoint_every != 0 && json_dir.is_none() {
        fail("--checkpoint-every needs --json DIR to write checkpoints into");
    }
    if let Some(m) = b_mutate {
        if !m.available() {
            fail(&format!(
                "--b-mutate {} requires a build with --features audit",
                m.label()
            ));
        }
    }
    Args {
        which,
        params,
        json_dir,
        trace_dir,
        trace_cats,
        audit_cells,
        hosts,
        cluster_vms,
        cluster_epochs,
        cluster_policy,
        cluster_faults,
        cluster_churn,
        cluster_epochs_set,
        audit_every,
        cluster_bench,
        bench_hosts,
        bench_jobs,
        series_window,
        series_nsigma,
        max_moves,
        checkpoint_every,
        resume,
        scenario_flags_set,
        b_policy,
        b_seed,
        b_faults,
        b_churn,
        b_mutate,
    }
}

fn emit<T: serde::Serialize>(
    args: &Args,
    name: &str,
    table: String,
    checks: Vec<ShapeCheck>,
    value: &T,
) {
    println!("{table}");
    for c in &checks {
        println!(
            "  [{}] {} — {}",
            if c.holds { "PASS" } else { "MISS" },
            c.claim,
            c.evidence
        );
    }
    println!();
    if let Some(dir) = &args.json_dir {
        fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join(format!("{name}.json"));
        fs::write(&path, serde_json::to_vec_pretty(value).expect("serialize")).expect("write json");
        progress!("wrote {}", path.display());
    }
}

/// Flight-record the Figure 1 testbed under both schedulers and write
/// the bundle (Chrome trace, LHP episodes, metrics, text summary) into
/// the `--trace` directory (falling back to `--json`, then `.`).
fn run_trace(args: &Args) {
    let dir = args
        .trace_dir
        .clone()
        .or_else(|| args.json_dir.clone())
        .unwrap_or_else(|| PathBuf::from("."));
    let bundles =
        flightrec::capture_bundles(&args.params, args.trace_cats, flightrec::TRACE_CAPACITY);
    for b in &bundles {
        println!("{}", b.summary);
    }
    let paths = flightrec::write_bundles(&dir, &bundles).expect("write trace bundle");
    for p in paths {
        progress!("wrote {}", p.display());
    }
}

fn run_timeline(p: &FigureParams) {
    use asman_report::{Sched, SingleVmScenario, Timeline};
    use asman_sim::Clock;
    use asman_workloads::{NasBenchmark, NasSpec};
    let clk = Clock::default();
    // Render both panels as strings on the sweep runner, then print in
    // the fixed Credit-then-ASMan order.
    let panels = p
        .runner()
        .map(vec![Sched::Credit, Sched::Asman], |sched| {
            let sc = SingleVmScenario::new(sched, 32, p.seed);
            let lu = NasSpec::new(NasBenchmark::LU, p.class, 4).build(p.seed ^ 7);
            let mut m = sc.build(Box::new(lu));
            m.enable_schedule_trace(500_000);
            m.run_until(clk.secs(3));
            let tl = Timeline::from_machine(&m);
            format!(
                "LU @ 22.2% under {} — guest VCPU duty cycles, 400 ms window\n(# online, + partial, . offline; rows: dom0 x8 then guest x4)\n{}",
                sched.label(),
                tl.gantt(clk.secs(2), clk.secs(2) + clk.ms(400), 100)
            )
        });
    for panel in panels {
        println!("{panel}");
    }
}

/// Benchmark the simulation engine: run the reference LU scenario under
/// both schedulers single-threaded and report events/sec from
/// `Machine::perf()`. Writes `BENCH_engine.json` (into the `--json`
/// directory, or the working directory).
fn run_perf(args: &Args) {
    use asman_report::{Sched, SingleVmScenario};
    use asman_workloads::{NasBenchmark, NasSpec};
    use serde::Serialize;

    #[derive(Serialize)]
    struct PerfRow {
        sched: &'static str,
        events: u64,
        wall_secs: f64,
        events_per_sec: f64,
        gated_events_per_sec: f64,
        gated_overhead_pct: f64,
        traced_events_per_sec: f64,
        tracing_overhead_pct: f64,
    }
    #[derive(Serialize)]
    struct Bench {
        class: String,
        seed: u64,
        rows: Vec<PerfRow>,
        total_events: u64,
        total_wall_secs: f64,
        events_per_sec: f64,
        gated_events_per_sec: f64,
        traced_events_per_sec: f64,
    }

    /// Flight-recorder state during a measurement run.
    #[derive(Clone, Copy, PartialEq)]
    enum Rec {
        /// Recorder fully disabled: record sites are a single branch.
        Off,
        /// Recorder armed with an empty category mask: record sites
        /// build their payloads and are rejected per category — the
        /// worst case of "tracing compiled in but not recording".
        Gated,
        /// Full capture of every category.
        Traced,
    }

    // Measurement discipline (this used to be a single cold pass per
    // recorder state, which let `gated_overhead_pct` go negative):
    //
    // * **warmup** — one discarded run per recorder state eats one-off
    //   costs (cold page cache, allocator growth, branch training);
    // * **interleaving** — each sample measures Off, then Gated, then
    //   Traced back to back, so slow host-load drift lands on every
    //   state of a sample equally instead of on whichever state
    //   happened to run during a busy period;
    // * **min-of-N** — the simulation is deterministic, so every run of
    //   a state does identical work and all wall-time variance is host
    //   interference; the minimum sample is therefore the best estimate
    //   of the true cost (the standard `timeit` argument).
    const SAMPLES: usize = 5;
    const REPS: usize = 2;
    const TRACED_CAPACITY: usize = 250_000;
    const STATES: [Rec; 3] = [Rec::Off, Rec::Gated, Rec::Traced];
    let p = &args.params;
    let run_once = |sched: Sched, rec: Rec| -> (u64, f64) {
        let sc = SingleVmScenario::new(sched, 32, p.seed);
        let lu = NasSpec::new(NasBenchmark::LU, p.class, 4).build(p.seed ^ 7);
        let mut m = sc.build(Box::new(lu));
        match rec {
            Rec::Off => {}
            Rec::Gated => m.enable_flight(asman_sim::CatMask(0), 0),
            Rec::Traced => m.enable_flight(asman_sim::CatMask::ALL, TRACED_CAPACITY),
        }
        let clk = m.config().clock;
        m.run_to_completion(clk.secs(sc.horizon_secs));
        let perf = m.perf();
        (perf.events, perf.wall.as_secs_f64())
    };
    // All three recorder states of one scheduler, measured together:
    // returns the median (events, wall) per state in STATES order.
    let measure_states = |sched: Sched| -> [(u64, f64); 3] {
        for rec in STATES {
            run_once(sched, rec); // warmup, discarded
        }
        let mut samples: [Vec<(u64, f64)>; 3] = Default::default();
        for _ in 0..SAMPLES {
            for (k, &rec) in STATES.iter().enumerate() {
                let (mut events, mut wall) = (0u64, 0.0f64);
                for _ in 0..REPS {
                    let (e, w) = run_once(sched, rec);
                    events += e;
                    wall += w;
                }
                samples[k].push((events, wall));
            }
        }
        samples.map(|mut s| {
            // Event counts are identical across samples (the simulation
            // is deterministic), so the min-by-wall sample is the
            // max-by-rate sample.
            s.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("wall times are finite"));
            s[0]
        })
    };
    let rate_of = |events: u64, wall: f64| if wall > 0.0 { events as f64 / wall } else { 0.0 };
    // Gated and traced runs execute a strict superset of the Off run's
    // instructions (same deterministic simulation plus gate checks /
    // ring writes), so their true overhead is >= 0 by construction; a
    // negative reading is residual interference and is floored at zero.
    let overhead_vs = |base: f64, rate: f64| {
        if base > 0.0 {
            ((base - rate) / base * 100.0).max(0.0)
        } else {
            0.0
        }
    };
    println!(
        "Engine benchmark — LU @ 22.2% online rate, sequential, \
         warmup + min of {SAMPLES} interleaved samples x {REPS} reps"
    );
    println!(
        "{:>8} {:>12} {:>10} {:>14} {:>13} {:>7} {:>13} {:>7}",
        "sched", "events", "wall(s)", "events/sec", "gated ev/s", "gate%", "traced ev/s", "trace%"
    );
    let mut rows = Vec::new();
    let (mut total_events, mut total_wall) = (0u64, 0.0f64);
    let (mut total_gt_events, mut total_gt_wall) = (0u64, 0.0f64);
    let (mut total_tr_events, mut total_tr_wall) = (0u64, 0.0f64);
    for sched in [Sched::Credit, Sched::Asman] {
        let [(events, wall), (gt_events, gt_wall), (tr_events, tr_wall)] = measure_states(sched);
        let rate = rate_of(events, wall);
        let gt_rate = rate_of(gt_events, gt_wall);
        let tr_rate = rate_of(tr_events, tr_wall);
        println!(
            "{:>8} {:>12} {:>10.3} {:>14.0} {:>13.0} {:>6.1}% {:>13.0} {:>6.1}%",
            sched.label(),
            events,
            wall,
            rate,
            gt_rate,
            overhead_vs(rate, gt_rate),
            tr_rate,
            overhead_vs(rate, tr_rate),
        );
        total_events += events;
        total_wall += wall;
        total_gt_events += gt_events;
        total_gt_wall += gt_wall;
        total_tr_events += tr_events;
        total_tr_wall += tr_wall;
        rows.push(PerfRow {
            sched: sched.label(),
            events,
            wall_secs: wall,
            events_per_sec: rate,
            gated_events_per_sec: gt_rate,
            gated_overhead_pct: overhead_vs(rate, gt_rate),
            traced_events_per_sec: tr_rate,
            tracing_overhead_pct: overhead_vs(rate, tr_rate),
        });
    }
    let combined = rate_of(total_events, total_wall);
    let gt_combined = rate_of(total_gt_events, total_gt_wall);
    let tr_combined = rate_of(total_tr_events, total_tr_wall);
    println!(
        "{:>8} {:>12} {:>10.3} {:>14.0} {:>13.0} {:>7} {:>13.0}",
        "total", total_events, total_wall, combined, gt_combined, "", tr_combined
    );
    let bench = Bench {
        class: format!("{:?}", p.class),
        seed: p.seed,
        rows,
        total_events,
        total_wall_secs: total_wall,
        events_per_sec: combined,
        gated_events_per_sec: gt_combined,
        traced_events_per_sec: tr_combined,
    };
    let dir = args.json_dir.clone().unwrap_or_else(|| PathBuf::from("."));
    fs::create_dir_all(&dir).expect("create json dir");
    let path = dir.join("BENCH_engine.json");
    fs::write(&path, serde_json::to_vec_pretty(&bench).expect("serialize")).expect("write json");
    progress!("wrote {}", path.display());
}

/// Differential oracle audit: run the optimized engine and the naive
/// oracle over a randomized scenario grid and demand bit-identical
/// behavior, then cross-check that the sweep digests are independent
/// of the worker count. Exits non-zero on any divergence, printing the
/// first mismatching event of each divergent cell with context.
fn run_audit(args: &Args) {
    use asman_report::audit;
    let report = audit::run_grid(args.audit_cells, args.params.seed, args.params.jobs);
    println!("{}", report.render());
    // jobs cross-check: the same leading cells under 1 and 4 workers
    // must produce identical digests.
    let sub = args.audit_cells.min(18);
    let seq = audit::run_grid(sub, args.params.seed, 1);
    let par = audit::run_grid(sub, args.params.seed, 4);
    let jobs_ok = seq.digests == par.digests;
    println!(
        "jobs cross-check over {sub} cells: {}",
        if jobs_ok {
            "1 and 4 workers bit-identical"
        } else {
            "FAILED — digests depend on worker count"
        }
    );
    if let Some(dir) = &args.json_dir {
        fs::create_dir_all(dir).expect("create json dir");
        let path = dir.join("AUDIT_diff.json");
        fs::write(&path, serde_json::to_vec_pretty(&report).expect("serialize"))
            .expect("write json");
        progress!("wrote {}", path.display());
    }
    if !report.ok() || !jobs_ok {
        std::process::exit(1);
    }
}

/// The policies a cluster-family target compares, from `--policy`.
fn cluster_policies(args: &Args) -> Vec<Policy> {
    match args.cluster_policy {
        // A single policy is always compared against the static
        // baseline, which anchors every shape check.
        Some(Policy::Static) => vec![Policy::Static],
        Some(p) => vec![Policy::Static, p],
        None => Policy::ALL.to_vec(),
    }
}

/// The multi-host consolidation experiment: compare placement policies
/// on the same seeded cluster, print the table and shape checks, and —
/// when an output directory is available — write the host-tagged
/// flight-recorder streams and migration-span cost table of each
/// compared policy.
fn run_cluster(args: &Args) {
    use asman_report::cluster;
    use serde::Serialize;

    if args.cluster_bench {
        run_cluster_bench(args);
        return;
    }
    let policies = cluster_policies(args);
    let p = cluster::ClusterParams {
        hosts: args.hosts,
        gangs: args.cluster_vms,
        epochs: args.cluster_epochs,
        seed: args.params.seed,
        jobs: args.params.jobs,
        policies: policies.clone(),
        faults: args.cluster_faults.clone(),
        max_moves: args.resolved_max_moves(),
    };
    let exp = cluster::run(&p);
    emit(args, "CLUSTER_consolidation", exp.render(), exp.shape_checks(), &exp);

    // Flight streams, tagged by host id, one artifact per policy.
    if let Some(dir) = args.trace_dir.clone().or_else(|| args.json_dir.clone()) {
        #[derive(Serialize)]
        struct HostStream {
            host: usize,
            events: Vec<asman_sim::FlightEvent>,
        }
        fs::create_dir_all(&dir).expect("create trace dir");
        for policy in policies {
            let (streams, metrics) = cluster::capture_flight(
                &p,
                policy,
                args.trace_cats,
                flightrec::TRACE_CAPACITY,
                cluster::CLUSTER_STREAM_BUDGET,
            );
            // Migration-span cost table: derived from the merged,
            // budgeted streams — it covers exactly what the flight
            // artifact shows.
            let merged = asman_sim::merge_streams(
                streams.iter().map(|(_, events)| events.clone()).collect(),
            );
            let spans = flightrec::migration_spans(&merged);
            let tagged: Vec<HostStream> = streams
                .into_iter()
                .map(|(host, events)| HostStream { host, events })
                .collect();
            let path = dir.join(format!("CLUSTER_flight_{}.json", policy.label()));
            fs::write(&path, serde_json::to_vec(&tagged).expect("serialize"))
                .expect("write flight streams");
            progress!("wrote {}", path.display());
            let path = dir.join(format!("CLUSTER_spans_{}.json", policy.label()));
            fs::write(&path, serde_json::to_vec_pretty(&spans).expect("serialize"))
                .expect("write migration spans");
            progress!("wrote {}", path.display());
            let path = dir.join(format!("CLUSTER_metrics_{}.json", policy.label()));
            fs::write(&path, serde_json::to_vec_pretty(&metrics).expect("serialize"))
                .expect("write cluster metrics");
            progress!("wrote {}", path.display());
        }
    }
}

/// The telemetry series report (`repro series`): the consolidation
/// cluster with the epoch sampler and latency histograms armed. Prints
/// the sparkline timeline, anomaly flags and reaction summary; with
/// `--json DIR`, writes one `CLUSTER_series_<policy>.json` per policy
/// (byte-identical for every `--jobs` value).
fn run_series(args: &Args) {
    use asman_report::{cluster, series};

    let p = series::SeriesParams {
        cluster: cluster::ClusterParams {
            hosts: args.hosts,
            gangs: args.cluster_vms,
            epochs: args.cluster_epochs,
            seed: args.params.seed,
            jobs: args.params.jobs,
            policies: cluster_policies(args),
            faults: args.cluster_faults.clone(),
            max_moves: args.resolved_max_moves(),
        },
        window: args.series_window,
        nsigma: args.series_nsigma,
    };
    let rep = series::run(&p);
    println!("{}", rep.render());
    if let Some(dir) = &args.json_dir {
        fs::create_dir_all(dir).expect("create json dir");
        for o in &rep.outcomes {
            let path = dir.join(format!("CLUSTER_series_{}.json", o.policy));
            fs::write(&path, serde_json::to_vec_pretty(o).expect("serialize"))
                .expect("write series json");
            progress!("wrote {}", path.display());
        }
    }
}

/// The long-horizon soak (`repro soak`): the consolidation cluster
/// driven for `--epochs` boundaries (default 100k) under `--churn`,
/// with amortized audits, occupancy checkpoints asserting the
/// bounded-memory invariant, and a jobs-1-vs-4 determinism prefix.
/// Exits non-zero when the cross-check digests diverge.
fn run_soak(args: &Args) {
    use asman_report::{checkpoint, soak};

    let defaults = soak::SoakParams::default();
    let p = if let Some(path) = &args.resume {
        // The checkpoint carries the scenario; flags that would rebuild
        // a *different* scenario are contradictions, not overrides.
        if let Some(flag) = args.scenario_flags_set.first() {
            fail(&format!(
                "{flag} conflicts with --resume: the scenario is rebuilt from the \
                 checkpoint (only --epochs, --jobs, --json and --checkpoint-every apply)"
            ));
        }
        // A directory means "the newest checkpoint in here", found by
        // numeric epoch (lexicographic order lies past epoch 999,999).
        let path = if path.is_dir() {
            checkpoint::latest_checkpoint(path).unwrap_or_else(|e| fail(&format!("--resume {e}")))
        } else {
            path.clone()
        };
        let ck = checkpoint::read_checkpoint(&path)
            .unwrap_or_else(|e| fail(&format!("--resume {e}")));
        // --epochs may extend or shorten the horizon; default to the
        // horizon the checkpointed run was headed for.
        let epochs = if args.cluster_epochs_set {
            args.cluster_epochs
        } else {
            ck.config.epochs
        };
        if ck.state.epoch >= epochs {
            fail(&format!(
                "--resume checkpoint is at epoch {} but the horizon is {epochs}; \
                 raise --epochs past the checkpoint",
                ck.state.epoch
            ));
        }
        soak::SoakParams {
            hosts: ck.config.scenario.hosts,
            gangs: ck.config.scenario.gangs,
            epochs,
            epoch_ms: ck.config.epoch_ms,
            seed: ck.config.scenario.seed,
            jobs: args.params.jobs,
            churn: ck.config.churn.clone(),
            audit_every: ck.config.audit_every,
            checkpoint_every: args.checkpoint_every,
            ckpt_dir: args.json_dir.clone(),
            max_moves: ck.config.max_moves,
            resume: Some(ck),
            ..defaults
        }
    } else {
        // A soak with no explicit --epochs runs its own long-horizon
        // default, not the 8-epoch cluster-experiment default.
        let epochs = if args.cluster_epochs_set {
            args.cluster_epochs
        } else {
            defaults.epochs
        };
        soak::SoakParams {
            hosts: args.hosts,
            gangs: args.cluster_vms,
            epochs,
            seed: args.params.seed,
            jobs: args.params.jobs,
            churn: args.cluster_churn.resolve(epochs, args.hosts),
            audit_every: args.audit_every.min(epochs),
            checkpoint_every: args.checkpoint_every,
            ckpt_dir: args.json_dir.clone(),
            max_moves: args.resolved_max_moves(),
            ..defaults
        }
    };
    let rep = soak::run(&p);
    emit(args, "SOAK_report", rep.render(), rep.shape_checks(), &rep);
    if !rep.jobs_identical() {
        std::process::exit(1);
    }
}

/// The divergence bisector (`repro bisect`): build side A from the
/// cluster-family flags and side B from the `--b-*` overrides (or an
/// injected `--b-mutate` behavioral mutation), then binary-search the
/// first epoch boundary whose cluster state digests differ and report
/// the first divergent flight event in context. Exits 0 when the runs
/// are bit-identical, 1 on divergence.
fn run_bisect(args: &Args) {
    use asman_cluster::{scenario::ConsolidationSpec, CheckpointConfig, ClusterConfig};
    use asman_report::bisect;

    let d = ClusterConfig::default();
    let epochs = args.cluster_epochs;
    let churn_a = args.cluster_churn.resolve(epochs, args.hosts);
    let a = CheckpointConfig {
        scenario: ConsolidationSpec {
            hosts: args.hosts,
            gangs: args.cluster_vms,
            seed: args.params.seed,
            ..ConsolidationSpec::default()
        },
        epoch_ms: d.epoch_ms,
        epochs,
        policy: args.cluster_policy.unwrap_or(Policy::VcrdAware),
        cooldown_epochs: d.cooldown_epochs,
        retry_cap: d.retry_cap,
        audit_every: d.audit_every,
        model: d.model,
        faults: args.cluster_faults.clone(),
        slot_reuse: !churn_a.is_empty(),
        churn: churn_a,
        series_capacity: 0,
        max_moves: args.resolved_max_moves(),
    };
    let mut b = a.clone();
    if let Some(p) = args.b_policy {
        b.policy = p;
    }
    if let Some(s) = args.b_seed {
        b.scenario.seed = s;
    }
    if let Some(spec) = &args.b_faults {
        b.faults = spec.resolve(epochs, args.hosts);
        if let Some(h) = b.faults.max_host() {
            if h >= args.hosts {
                fail(&format!(
                    "--b-faults names host {h} but the cluster only has {} hosts",
                    args.hosts
                ));
            }
        }
    }
    if let Some(spec) = &args.b_churn {
        b.churn = spec.resolve(epochs, args.hosts);
        if let Some(h) = b.churn.max_host() {
            if h >= args.hosts {
                fail(&format!(
                    "--b-churn names host {h} but the cluster only has {} hosts",
                    args.hosts
                ));
            }
        }
        b.slot_reuse = b.slot_reuse || !b.churn.is_empty();
    }
    // Slot reuse changes tombstone behavior, so both sides must agree
    // on it or the bisector would report the knob, not the real cause.
    let slot_reuse = a.slot_reuse || b.slot_reuse;
    let (mut a, mut b) = (a, b);
    a.slot_reuse = slot_reuse;
    b.slot_reuse = slot_reuse;
    let out = bisect::run(&bisect::BisectParams {
        a,
        b,
        jobs: args.params.jobs,
        mutate: args.b_mutate,
    });
    println!("{}", out.render());
    if !out.identical() {
        std::process::exit(1);
    }
}

/// The cluster performance grid (`repro cluster --bench`): hosts × jobs
/// cells on the uniform scaling scenario, warmup + median-of-3 each,
/// written to `BENCH_cluster.json` (into `--json` DIR, or the working
/// directory). Every cell cross-checks its report digest against the
/// row's `jobs = 1` baseline, so a nondeterministic "speedup" aborts
/// the bench instead of producing a lying artifact.
fn run_cluster_bench(args: &Args) {
    use asman_report::clusterbench;

    let p = clusterbench::BenchParams {
        hosts_grid: args.bench_hosts.clone(),
        jobs_grid: args.bench_jobs.clone(),
        epochs: args.cluster_epochs,
        seed: args.params.seed,
        max_moves: args.max_moves,
        ..clusterbench::BenchParams::default()
    };
    let bench = clusterbench::run(&p);
    println!("{}", bench.render());
    let dir = args.json_dir.clone().unwrap_or_else(|| PathBuf::from("."));
    fs::create_dir_all(&dir).expect("create json dir");
    let path = dir.join("BENCH_cluster.json");
    fs::write(&path, serde_json::to_vec_pretty(&bench).expect("serialize")).expect("write json");
    progress!("wrote {}", path.display());
}

fn main() {
    let args = parse_args();
    let p = &args.params;
    progress!(
        "class={:?} seed={} rounds={} figures={:?}",
        p.class,
        p.seed,
        p.rounds,
        args.which
    );
    for fig in args.which.clone() {
        let t0 = std::time::Instant::now();
        match fig.as_str() {
            "fig1" => {
                let f = fig01::run(p);
                emit(&args, "fig01", f.render(), f.shape_checks(), &f);
            }
            "fig2" => {
                let f = fig02::run(p);
                emit(&args, "fig02", f.render(), f.shape_checks(), &f);
            }
            "fig7" => {
                let f = fig07::run(p);
                emit(&args, "fig07", f.render(), f.shape_checks(), &f);
            }
            "fig8" => {
                let f = fig08::run(p);
                emit(&args, "fig08", f.render(), f.shape_checks(), &f);
            }
            "fig9" => {
                let f = fig09::run(p);
                emit(&args, "fig09", f.render(), f.shape_checks(), &f);
            }
            "fig10" => {
                let f = fig10::run(p);
                emit(&args, "fig10", f.render(), f.shape_checks(), &f);
            }
            "fig11" => {
                let f = fig11::run(p);
                emit(&args, "fig11", f.render(), f.shape_checks(), &f);
            }
            "fig12" => {
                let f = fig12::run(p);
                emit(&args, "fig12", f.render(), f.shape_checks(), &f);
            }
            "perf" => run_perf(&args),
            "trace" => run_trace(&args),
            "audit" => run_audit(&args),
            "cluster" => run_cluster(&args),
            "series" => run_series(&args),
            "soak" => run_soak(&args),
            "bisect" => run_bisect(&args),
            "timeline" => run_timeline(p),
            "extensions" => {
                let f = asman_report::extensions::run(p);
                emit(&args, "extensions", f.render(), f.shape_checks(), &f);
            }
            other => unreachable!("target `{other}` validated in parse_args"),
        }
        progress!("[{fig} took {:.1?}]", t0.elapsed());
    }
}
