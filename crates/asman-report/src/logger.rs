//! Progress logging for the report binaries.
//!
//! Every progress line the harness emits (`wrote …`, `[fig9 took …]`,
//! run headers) goes through [`progress!`], which writes to stderr
//! unless quiet mode is on. `repro -q` silences progress without
//! touching the actual results on stdout; hard errors still print
//! unconditionally.

use std::sync::atomic::{AtomicBool, Ordering};

static QUIET: AtomicBool = AtomicBool::new(false);

/// Enable or disable quiet mode. Quiet also silences the simulator's
/// trace-buffer overflow warnings (they go to stderr too).
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
    asman_sim::trace::set_overflow_warnings(!quiet);
}

/// Whether quiet mode is on.
pub fn is_quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Print a progress line to stderr unless quiet mode is on.
///
/// Takes the same arguments as `eprintln!`.
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        if !$crate::logger::is_quiet() {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_flag_round_trips() {
        assert!(!is_quiet());
        set_quiet(true);
        assert!(is_quiet());
        // No output is produced under quiet; the macro must still
        // compile and evaluate its guard.
        progress!("suppressed {}", 1);
        set_quiet(false);
        assert!(!is_quiet());
    }
}
