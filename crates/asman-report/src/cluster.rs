//! The cluster consolidation experiment (`repro cluster`).
//!
//! An operator consolidated several concurrent (gang) VMs onto host 0
//! while the other hosts run quiet background services. Per-host
//! adaptive coscheduling cannot help — host 0's gangs demand more
//! PCPUs than exist — so the experiment compares *cluster* placement
//! policies: `static` (never migrate), `least-loaded` (VCPU-count
//! balancing, blind to synchronization), and `vcrd-aware` (ASMan's
//! VCRD/spin telemetry driving live migration). `--jobs` drives two
//! layers of parallelism: policies run as independent sweep cells, and
//! within each cell the cluster driver advances its hosts to every
//! epoch boundary on a scoped worker pool
//! (`asman_cluster::ClusterConfig::jobs`). Neither layer reaches
//! inside a host's simulation, so results are bit-identical for any
//! worker count.

use asman_cluster::{
    scenario::{self, ConsolidationSpec},
    ClusterConfig, ClusterReport, Policy,
};
use asman_sim::{CatMask, FaultPlan, FlightEvent, MetricsRegistry, StreamBudget};
use serde::Serialize;
use std::fmt::Write as _;

use crate::exec::SweepRunner;
use crate::figures::ShapeCheck;

/// Parameters of the cluster experiment.
#[derive(Clone, Debug)]
pub struct ClusterParams {
    /// Host count (host 0 is the consolidated one).
    pub hosts: usize,
    /// Concurrent gang VMs packed onto host 0.
    pub gangs: usize,
    /// Balancer epochs to run.
    pub epochs: u64,
    /// Base seed.
    pub seed: u64,
    /// Sweep worker threads (0 = one per core).
    pub jobs: usize,
    /// Policies to compare, in cell order.
    pub policies: Vec<Policy>,
    /// Fault plan injected into every policy cell (empty = clean run).
    pub faults: FaultPlan,
    /// Per-epoch migration budget (`--max-moves`; 1 = the historical
    /// single-move driver and the golden-digest baseline).
    pub max_moves: usize,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            hosts: 3,
            gangs: 2,
            epochs: 8,
            seed: 42,
            jobs: 0,
            policies: Policy::ALL.to_vec(),
            faults: FaultPlan::empty(),
            max_moves: 1,
        }
    }
}

/// Default cross-host retention budget for cluster flight captures:
/// per-category capacities bound each host, but total memory grows
/// linearly with host count, so the merged capture is capped too.
pub const CLUSTER_STREAM_BUDGET: usize = 1_000_000;

impl ClusterParams {
    pub(crate) fn cluster_config(&self, policy: Policy) -> ClusterConfig {
        ClusterConfig {
            policy,
            epochs: self.epochs,
            faults: self.faults.clone(),
            // The same knob drives both layers of parallelism: policy
            // cells across the sweep, and host advancement within each
            // cluster's epochs. Both are bit-identical for any count.
            jobs: self.jobs,
            max_moves: self.max_moves,
            ..ClusterConfig::default()
        }
    }

    pub(crate) fn scenario_spec(&self) -> ConsolidationSpec {
        ConsolidationSpec {
            hosts: self.hosts,
            gangs: self.gangs,
            seed: self.seed,
            ..ConsolidationSpec::default()
        }
    }
}

/// One policy's result plus its content digest.
#[derive(Clone, Debug, Serialize)]
pub struct PolicyOutcome {
    /// The cluster run's full report.
    pub report: ClusterReport,
    /// FNV-1a digest of the serialized report — the bit-identity
    /// handle the jobs cross-checks and golden tests compare.
    pub digest: String,
}

/// The full experiment: one outcome per requested policy.
#[derive(Clone, Debug, Serialize)]
pub struct ClusterExperiment {
    /// Host count.
    pub hosts: usize,
    /// Gangs consolidated on host 0.
    pub gangs: usize,
    /// Epochs run.
    pub epochs: u64,
    /// Base seed.
    pub seed: u64,
    /// Per-policy outcomes, in [`ClusterParams::policies`] order.
    pub outcomes: Vec<PolicyOutcome>,
}

/// FNV-1a over a serialized report: stable, dependency-free digest.
pub fn digest_report(report: &ClusterReport) -> String {
    let json = serde_json::to_string(report).expect("serialize cluster report");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in json.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Run one policy cell to its report.
fn run_cell(p: &ClusterParams, policy: Policy) -> ClusterReport {
    scenario::consolidation_cluster(p.cluster_config(policy), &p.scenario_spec()).run()
}

/// Run the experiment: every requested policy as an independent sweep
/// cell.
pub fn run(p: &ClusterParams) -> ClusterExperiment {
    let outcomes = SweepRunner::new(p.jobs).map(p.policies.clone(), |policy| {
        let report = run_cell(p, policy);
        let digest = digest_report(&report);
        PolicyOutcome { report, digest }
    });
    ClusterExperiment {
        hosts: p.hosts,
        gangs: p.gangs,
        epochs: p.epochs,
        seed: p.seed,
        outcomes,
    }
}

/// Re-run one policy with the flight recorder armed on every host and
/// return the host-tagged streams plus the merged metrics registry —
/// per-host scheduler counters, gauges and histograms prefixed
/// `hostN.` and, when faults are armed, the cluster recovery counters.
/// Recording does not perturb the simulation, so the run matches its
/// digest-bearing twin.
///
/// `stream_budget` caps the *total* events retained across all hosts
/// (per-category capacities only bound each host): streams are
/// admitted in host order, each truncated to its time-ordered prefix
/// once the budget runs low, with warn-once drop accounting.
pub fn capture_flight(
    p: &ClusterParams,
    policy: Policy,
    mask: CatMask,
    capacity: usize,
    stream_budget: usize,
) -> (Vec<(usize, Vec<FlightEvent>)>, MetricsRegistry) {
    let mut cluster = scenario::consolidation_cluster(p.cluster_config(policy), &p.scenario_spec());
    cluster.enable_flight(mask, capacity);
    cluster.run();
    let mut reg = MetricsRegistry::new();
    for (h, m) in cluster.hosts().iter().enumerate() {
        let mut host_reg = MetricsRegistry::new();
        m.export_metrics(&mut host_reg);
        reg.merge_prefixed(&format!("host{h}."), &host_reg);
    }
    cluster.export_recovery_metrics(&mut reg);
    let mut budget = StreamBudget::new(stream_budget);
    let streams = cluster
        .drain_flight()
        .into_iter()
        .map(|(h, mut events)| {
            budget.admit(&mut events);
            (h, events)
        })
        .collect();
    (streams, reg)
}

impl ClusterExperiment {
    fn outcome(&self, label: &str) -> Option<&PolicyOutcome> {
        self.outcomes.iter().find(|o| o.report.policy == label)
    }

    /// Human-readable comparison table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "Cluster consolidation — {} hosts, {} gangs on host 0, {} epochs, seed {}",
            self.hosts, self.gangs, self.epochs, self.seed
        )
        .unwrap();
        writeln!(
            s,
            "{:>12} {:>6} {:>14} {:>14} {:>13} {:>18}",
            "policy", "moves", "spin Mcycles", "useful Mcyc", "pause Mcyc", "digest"
        )
        .unwrap();
        for o in &self.outcomes {
            let r = &o.report;
            writeln!(
                s,
                "{:>12} {:>6} {:>14.1} {:>14.1} {:>13.2} {:>18}",
                r.policy,
                r.migrations.len(),
                r.total_spin_cycles as f64 / 1e6,
                r.total_useful_cycles as f64 / 1e6,
                r.total_pause_cycles as f64 / 1e6,
                o.digest,
            )
            .unwrap();
        }
        for o in &self.outcomes {
            for m in &o.report.migrations {
                writeln!(
                    s,
                    "  [{}] epoch {}: {} host{} -> host{} ({} dirty pages, {:.2} Mcycles pause)",
                    o.report.policy,
                    m.epoch,
                    m.name,
                    m.from,
                    m.to,
                    m.dirty_pages,
                    m.pause as f64 / 1e6,
                )
                .unwrap();
            }
        }
        for o in &self.outcomes {
            let Some(rec) = &o.report.recovery else { continue };
            for a in &rec.aborts {
                writeln!(
                    s,
                    "  [{}] epoch {}: ABORT {} host{} -> host{} attempt {} ({:.2} Mcycles penalty)",
                    o.report.policy,
                    a.epoch,
                    a.name,
                    a.from,
                    a.to,
                    a.attempt,
                    a.penalty as f64 / 1e6,
                )
                .unwrap();
            }
            for e in &rec.evacuations {
                writeln!(
                    s,
                    "  [{}] epoch {}: EVACUATE {} host{} -> host{} ({:.2} Mcycles pause)",
                    o.report.policy,
                    e.epoch,
                    e.name,
                    e.from,
                    e.to,
                    e.pause as f64 / 1e6,
                )
                .unwrap();
            }
            writeln!(
                s,
                "  [{}] recovery: {} aborts / {} retries committed / {} abandoned / \
                 {} gave up / {} evacuations",
                o.report.policy,
                rec.aborts.len(),
                rec.retries_committed,
                rec.retries_abandoned,
                rec.gave_up,
                rec.evacuations.len(),
            )
            .unwrap();
        }
        s
    }

    /// The experiment's qualitative claims.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();
        if let Some(stat) = self.outcome("static") {
            checks.push(ShapeCheck {
                claim: "static placement never migrates".into(),
                holds: stat.report.migrations.is_empty(),
                evidence: format!("{} migrations", stat.report.migrations.len()),
            });
            if let Some(aware) = self.outcome("vcrd-aware") {
                let moved_gang = aware
                    .report
                    .migrations
                    .first()
                    .is_some_and(|m| m.name.starts_with("gang") && m.from == 0);
                checks.push(ShapeCheck {
                    claim: "vcrd-aware moves a gang off the consolidated host".into(),
                    holds: moved_gang,
                    evidence: match aware.report.migrations.first() {
                        Some(m) => format!("first move: {} host{} -> host{}", m.name, m.from, m.to),
                        None => "no migrations".into(),
                    },
                });
                checks.push(ShapeCheck {
                    claim: "vcrd-aware recovers wasted spin static placement cannot".into(),
                    holds: aware.report.total_spin_cycles < stat.report.total_spin_cycles,
                    evidence: format!(
                        "spin {:.1} Mcycles vs {:.1} static",
                        aware.report.total_spin_cycles as f64 / 1e6,
                        stat.report.total_spin_cycles as f64 / 1e6
                    ),
                });
            }
            if let Some(ll) = self.outcome("least-loaded") {
                checks.push(ShapeCheck {
                    claim: "least-loaded is synchronization-blind (its first move is not a gang)"
                        .into(),
                    holds: ll
                        .report
                        .migrations
                        .first()
                        .is_none_or(|m| !m.name.starts_with("gang")),
                    evidence: match ll.report.migrations.first() {
                        Some(m) => format!("first move: {}", m.name),
                        None => "no migrations".into(),
                    },
                });
            }
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClusterParams {
        ClusterParams {
            epochs: 6,
            jobs: 1,
            ..ClusterParams::default()
        }
    }

    #[test]
    fn experiment_shape_checks_hold() {
        let exp = run(&small());
        for c in exp.shape_checks() {
            assert!(c.holds, "{}: {}", c.claim, c.evidence);
        }
    }

    #[test]
    fn jobs_count_does_not_change_digests() {
        let seq = run(&small());
        let par = run(&ClusterParams {
            jobs: 4,
            ..small()
        });
        let d = |e: &ClusterExperiment| -> Vec<String> {
            e.outcomes.iter().map(|o| o.digest.clone()).collect()
        };
        assert_eq!(d(&seq), d(&par), "digests must be worker-count independent");
    }

    /// A plan that exercises the whole recovery machinery under the
    /// default scenario: epoch 0's first move aborts and commits on
    /// retry at epoch 1; host 1 crashes at epoch 4 and is evacuated.
    fn faulted() -> ClusterParams {
        ClusterParams {
            jobs: 1,
            faults: FaultPlan::parse("abort@0,crash@4:h1").unwrap(),
            ..ClusterParams::default()
        }
    }

    #[test]
    fn faulted_run_aborts_then_commits_the_retry() {
        let exp = run(&faulted());
        let aware = exp.outcome("vcrd-aware").expect("vcrd-aware cell");
        let rec = aware.report.recovery.as_ref().expect("faulted run carries recovery");
        assert!(!rec.aborts.is_empty(), "abort@0 must abort the first move");
        assert_eq!(rec.aborts[0].attempt, 1);
        assert!(rec.retries_committed >= 1, "the aborted move must commit on retry");
        // The committed retry lands one epoch after the abort and moves
        // the same VM to the same destination.
        let a = &rec.aborts[0];
        let m = aware
            .report
            .migrations
            .iter()
            .find(|m| m.vm == a.vm && m.epoch == a.epoch + 1)
            .expect("retry commits at the next epoch");
        assert_eq!((m.from, m.to), (a.from, a.to));
    }

    #[test]
    fn crash_evacuation_conserves_every_vm() {
        let exp = run(&faulted());
        for o in &exp.outcomes {
            let rec = o.report.recovery.as_ref().expect("recovery present");
            // Host 1 crashed, so nothing may report it as home.
            for row in &o.report.vm_rows {
                assert_ne!(row.host, 1, "{}: {} still on crashed host", o.report.policy, row.name);
            }
            assert_eq!(
                o.report.vm_rows.len(),
                exp.gangs + exp.hosts,
                "{}: VM count must be conserved",
                o.report.policy
            );
            assert_eq!(rec.host_health[1], asman_cluster::HostHealth::Crashed);
        }
    }

    #[test]
    fn faulted_digests_are_worker_count_independent() {
        let seq = run(&faulted());
        let par = run(&ClusterParams {
            jobs: 4,
            ..faulted()
        });
        let d = |e: &ClusterExperiment| -> Vec<String> {
            e.outcomes.iter().map(|o| o.digest.clone()).collect()
        };
        assert_eq!(d(&seq), d(&par), "faulted digests must be worker-count independent");
    }

    #[test]
    fn clean_runs_serialize_without_a_recovery_field() {
        let exp = run(&small());
        let json = serde_json::to_string(&exp.outcomes[0].report).unwrap();
        assert!(
            !json.contains("recovery"),
            "clean reports must stay byte-identical to the pre-fault format"
        );
        let f = run(&faulted());
        let json = serde_json::to_string(&f.outcomes[0].report).unwrap();
        assert!(json.contains("\"recovery\""));
    }

    #[test]
    fn faulted_capture_records_fault_events_and_recovery_metrics() {
        let p = faulted();
        let (streams, reg) = capture_flight(
            &p,
            asman_cluster::Policy::VcrdAware,
            CatMask::ALL,
            50_000,
            CLUSTER_STREAM_BUDGET,
        );
        let fault_evs: Vec<&str> = streams
            .iter()
            .flat_map(|(_, evs)| evs.iter())
            .filter(|e| e.ev.cat() == asman_sim::TraceCat::Fault)
            .map(|e| e.ev.kind())
            .collect();
        for kind in [
            "migrate_prepare",
            "migrate_copy",
            "migrate_commit",
            "migrate_abort",
            "migrate_retry",
            "host_crash",
            "evacuate",
        ] {
            assert!(fault_evs.contains(&kind), "flight stream missing {kind}: {fault_evs:?}");
        }
        assert!(reg.counter("cluster.migration.aborts").unwrap_or(0) >= 1);
        assert!(reg.counter("cluster.migration.retries_committed").unwrap_or(0) >= 1);
        assert_eq!(reg.counter("cluster.hosts.crashed"), Some(1));
        assert!(reg.counter("cluster.evacuations").unwrap_or(0) >= 1);
        // Per-host scheduler counters ride along, host-prefixed.
        assert!(reg.counters().any(|(name, _)| name.starts_with("host0.")));
    }

    /// Every attempt of a faulted run's retry chain shares the span id
    /// minted at its first prepare, end to end through the streams.
    #[test]
    fn retry_chain_shares_one_span_id() {
        use asman_sim::FlightEv;
        let p = faulted();
        let (streams, _) = capture_flight(
            &p,
            asman_cluster::Policy::VcrdAware,
            CatMask::ALL,
            50_000,
            CLUSTER_STREAM_BUDGET,
        );
        let mut abort_span = None;
        let mut retry_span = None;
        let mut commit_spans = Vec::new();
        for (_, evs) in &streams {
            for e in evs {
                match e.ev {
                    FlightEv::MigrateAbort { span, .. } => abort_span = Some(span),
                    FlightEv::MigrateRetry { span, .. } => retry_span = Some(span),
                    FlightEv::MigrateCommit { span, .. } => commit_spans.push(span),
                    _ => {}
                }
            }
        }
        let a = abort_span.expect("abort@0 recorded");
        assert_eq!(retry_span, Some(a), "retry reuses the aborted attempt's span");
        assert!(
            commit_spans.contains(&a),
            "the chain's commit carries the same span: {commit_spans:?}"
        );
    }

    #[test]
    fn flight_capture_tags_every_host() {
        let p = ClusterParams {
            epochs: 2,
            jobs: 1,
            ..ClusterParams::default()
        };
        let (streams, _) =
            capture_flight(&p, Policy::Static, CatMask::ALL, 50_000, CLUSTER_STREAM_BUDGET);
        assert_eq!(streams.len(), p.hosts);
        assert!(
            streams.iter().all(|(_, evs)| !evs.is_empty()),
            "every host must record activity"
        );
        for (h, evs) in &streams {
            assert!(*h < p.hosts);
            assert!(evs.windows(2).all(|w| w[0].t <= w[1].t), "streams are time-ordered");
        }
    }

    /// A tiny cross-host budget truncates the capture to the cap: host
    /// 0's stream is admitted first and later hosts get the leftovers,
    /// so total retention never exceeds the budget.
    #[test]
    fn stream_budget_caps_total_capture_memory() {
        asman_sim::trace::set_overflow_warnings(false);
        let p = ClusterParams {
            epochs: 2,
            jobs: 1,
            ..ClusterParams::default()
        };
        let (unbounded, _) =
            capture_flight(&p, Policy::Static, CatMask::ALL, 50_000, CLUSTER_STREAM_BUDGET);
        let total: usize = unbounded.iter().map(|(_, evs)| evs.len()).sum();
        assert!(total > 100, "capture must be big enough to truncate");
        let budget = total / 2;
        let (capped, _) = capture_flight(&p, Policy::Static, CatMask::ALL, 50_000, budget);
        let capped_total: usize = capped.iter().map(|(_, evs)| evs.len()).sum();
        assert_eq!(capped_total, budget, "budget must bind exactly");
        assert_eq!(
            capped[0].1.len(),
            unbounded[0].1.len().min(budget),
            "host 0 is admitted first"
        );
        for (h, evs) in &capped {
            assert!(
                evs.iter().zip(unbounded[*h].1.iter()).all(|(a, b)| a.t == b.t),
                "truncation keeps each stream's time-ordered prefix"
            );
        }
        asman_sim::trace::set_overflow_warnings(true);
    }
}
