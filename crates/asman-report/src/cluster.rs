//! The cluster consolidation experiment (`repro cluster`).
//!
//! An operator consolidated several concurrent (gang) VMs onto host 0
//! while the other hosts run quiet background services. Per-host
//! adaptive coscheduling cannot help — host 0's gangs demand more
//! PCPUs than exist — so the experiment compares *cluster* placement
//! policies: `static` (never migrate), `least-loaded` (VCPU-count
//! balancing, blind to synchronization), and `vcrd-aware` (ASMan's
//! VCRD/spin telemetry driving live migration). Policies run as
//! independent sweep cells, so `--jobs` parallelism never touches a
//! simulation's interior and results are bit-identical for any worker
//! count.

use asman_cluster::{
    scenario::{self, ConsolidationSpec},
    ClusterConfig, ClusterReport, Policy,
};
use asman_sim::{CatMask, FlightEvent};
use serde::Serialize;
use std::fmt::Write as _;

use crate::exec::SweepRunner;
use crate::figures::ShapeCheck;

/// Parameters of the cluster experiment.
#[derive(Clone, Debug)]
pub struct ClusterParams {
    /// Host count (host 0 is the consolidated one).
    pub hosts: usize,
    /// Concurrent gang VMs packed onto host 0.
    pub gangs: usize,
    /// Balancer epochs to run.
    pub epochs: u64,
    /// Base seed.
    pub seed: u64,
    /// Sweep worker threads (0 = one per core).
    pub jobs: usize,
    /// Policies to compare, in cell order.
    pub policies: Vec<Policy>,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            hosts: 3,
            gangs: 2,
            epochs: 8,
            seed: 42,
            jobs: 0,
            policies: Policy::ALL.to_vec(),
        }
    }
}

impl ClusterParams {
    fn cluster_config(&self, policy: Policy) -> ClusterConfig {
        ClusterConfig {
            policy,
            epochs: self.epochs,
            ..ClusterConfig::default()
        }
    }

    fn scenario_spec(&self) -> ConsolidationSpec {
        ConsolidationSpec {
            hosts: self.hosts,
            gangs: self.gangs,
            seed: self.seed,
            ..ConsolidationSpec::default()
        }
    }
}

/// One policy's result plus its content digest.
#[derive(Clone, Debug, Serialize)]
pub struct PolicyOutcome {
    /// The cluster run's full report.
    pub report: ClusterReport,
    /// FNV-1a digest of the serialized report — the bit-identity
    /// handle the jobs cross-checks and golden tests compare.
    pub digest: String,
}

/// The full experiment: one outcome per requested policy.
#[derive(Clone, Debug, Serialize)]
pub struct ClusterExperiment {
    /// Host count.
    pub hosts: usize,
    /// Gangs consolidated on host 0.
    pub gangs: usize,
    /// Epochs run.
    pub epochs: u64,
    /// Base seed.
    pub seed: u64,
    /// Per-policy outcomes, in [`ClusterParams::policies`] order.
    pub outcomes: Vec<PolicyOutcome>,
}

/// FNV-1a over a serialized report: stable, dependency-free digest.
pub fn digest_report(report: &ClusterReport) -> String {
    let json = serde_json::to_string(report).expect("serialize cluster report");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in json.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Run one policy cell to its report.
fn run_cell(p: &ClusterParams, policy: Policy) -> ClusterReport {
    scenario::consolidation_cluster(p.cluster_config(policy), &p.scenario_spec()).run()
}

/// Run the experiment: every requested policy as an independent sweep
/// cell.
pub fn run(p: &ClusterParams) -> ClusterExperiment {
    let outcomes = SweepRunner::new(p.jobs).map(p.policies.clone(), |policy| {
        let report = run_cell(p, policy);
        let digest = digest_report(&report);
        PolicyOutcome { report, digest }
    });
    ClusterExperiment {
        hosts: p.hosts,
        gangs: p.gangs,
        epochs: p.epochs,
        seed: p.seed,
        outcomes,
    }
}

/// Re-run one policy with the flight recorder armed on every host and
/// return the host-tagged streams (recording does not perturb the
/// simulation, so the run matches its digest-bearing twin).
pub fn capture_flight(
    p: &ClusterParams,
    policy: Policy,
    mask: CatMask,
    capacity: usize,
) -> Vec<(usize, Vec<FlightEvent>)> {
    let mut cluster = scenario::consolidation_cluster(p.cluster_config(policy), &p.scenario_spec());
    cluster.enable_flight(mask, capacity);
    cluster.run();
    cluster.drain_flight()
}

impl ClusterExperiment {
    fn outcome(&self, label: &str) -> Option<&PolicyOutcome> {
        self.outcomes.iter().find(|o| o.report.policy == label)
    }

    /// Human-readable comparison table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "Cluster consolidation — {} hosts, {} gangs on host 0, {} epochs, seed {}",
            self.hosts, self.gangs, self.epochs, self.seed
        )
        .unwrap();
        writeln!(
            s,
            "{:>12} {:>6} {:>14} {:>14} {:>13} {:>18}",
            "policy", "moves", "spin Mcycles", "useful Mcyc", "pause Mcyc", "digest"
        )
        .unwrap();
        for o in &self.outcomes {
            let r = &o.report;
            writeln!(
                s,
                "{:>12} {:>6} {:>14.1} {:>14.1} {:>13.2} {:>18}",
                r.policy,
                r.migrations.len(),
                r.total_spin_cycles as f64 / 1e6,
                r.total_useful_cycles as f64 / 1e6,
                r.total_pause_cycles as f64 / 1e6,
                o.digest,
            )
            .unwrap();
        }
        for o in &self.outcomes {
            for m in &o.report.migrations {
                writeln!(
                    s,
                    "  [{}] epoch {}: {} host{} -> host{} ({} dirty pages, {:.2} Mcycles pause)",
                    o.report.policy,
                    m.epoch,
                    m.name,
                    m.from,
                    m.to,
                    m.dirty_pages,
                    m.pause as f64 / 1e6,
                )
                .unwrap();
            }
        }
        s
    }

    /// The experiment's qualitative claims.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();
        if let Some(stat) = self.outcome("static") {
            checks.push(ShapeCheck {
                claim: "static placement never migrates".into(),
                holds: stat.report.migrations.is_empty(),
                evidence: format!("{} migrations", stat.report.migrations.len()),
            });
            if let Some(aware) = self.outcome("vcrd-aware") {
                let moved_gang = aware
                    .report
                    .migrations
                    .first()
                    .is_some_and(|m| m.name.starts_with("gang") && m.from == 0);
                checks.push(ShapeCheck {
                    claim: "vcrd-aware moves a gang off the consolidated host".into(),
                    holds: moved_gang,
                    evidence: match aware.report.migrations.first() {
                        Some(m) => format!("first move: {} host{} -> host{}", m.name, m.from, m.to),
                        None => "no migrations".into(),
                    },
                });
                checks.push(ShapeCheck {
                    claim: "vcrd-aware recovers wasted spin static placement cannot".into(),
                    holds: aware.report.total_spin_cycles < stat.report.total_spin_cycles,
                    evidence: format!(
                        "spin {:.1} Mcycles vs {:.1} static",
                        aware.report.total_spin_cycles as f64 / 1e6,
                        stat.report.total_spin_cycles as f64 / 1e6
                    ),
                });
            }
            if let Some(ll) = self.outcome("least-loaded") {
                checks.push(ShapeCheck {
                    claim: "least-loaded is synchronization-blind (its first move is not a gang)"
                        .into(),
                    holds: ll
                        .report
                        .migrations
                        .first()
                        .is_none_or(|m| !m.name.starts_with("gang")),
                    evidence: match ll.report.migrations.first() {
                        Some(m) => format!("first move: {}", m.name),
                        None => "no migrations".into(),
                    },
                });
            }
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClusterParams {
        ClusterParams {
            epochs: 6,
            jobs: 1,
            ..ClusterParams::default()
        }
    }

    #[test]
    fn experiment_shape_checks_hold() {
        let exp = run(&small());
        for c in exp.shape_checks() {
            assert!(c.holds, "{}: {}", c.claim, c.evidence);
        }
    }

    #[test]
    fn jobs_count_does_not_change_digests() {
        let seq = run(&small());
        let par = run(&ClusterParams {
            jobs: 4,
            ..small()
        });
        let d = |e: &ClusterExperiment| -> Vec<String> {
            e.outcomes.iter().map(|o| o.digest.clone()).collect()
        };
        assert_eq!(d(&seq), d(&par), "digests must be worker-count independent");
    }

    #[test]
    fn flight_capture_tags_every_host() {
        let p = ClusterParams {
            epochs: 2,
            jobs: 1,
            ..ClusterParams::default()
        };
        let streams = capture_flight(&p, Policy::Static, CatMask::ALL, 50_000);
        assert_eq!(streams.len(), p.hosts);
        assert!(
            streams.iter().all(|(_, evs)| !evs.is_empty()),
            "every host must record activity"
        );
        for (h, evs) in &streams {
            assert!(*h < p.hosts);
            assert!(evs.windows(2).all(|w| w[0].t <= w[1].t), "streams are time-ordered");
        }
    }
}
