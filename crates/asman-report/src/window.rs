//! Windowed measurement of spinlock waiting behaviour.
//!
//! The paper's Figures 1(b), 2 and 8 observe spinlock waits over a fixed
//! 30-second period while the benchmark runs. [`WaitWindow`] reproduces
//! that: it advances a machine to the window start, snapshots the wait
//! histogram, enables the per-wait trace, runs the window, and reports
//! the in-window population.

use asman_hypervisor::Machine;
use asman_sim::{Cycles, Log2Histogram};
use serde::{Deserialize, Serialize};

/// Spinlock-wait observations collected over one time window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WaitWindow {
    /// Window start (simulated seconds).
    pub start_secs: f64,
    /// Window length (simulated seconds).
    pub length_secs: f64,
    /// Spinlock acquisitions inside the window.
    pub locks: u64,
    /// In-window waits ≥ 2^10 cycles.
    pub over_2_10: u64,
    /// In-window waits ≥ 2^20 cycles.
    pub over_2_20: u64,
    /// In-window waits ≥ 2^25 cycles.
    pub over_2_25: u64,
    /// Individual wait samples ≥ 2^10 cycles, in observation order (the
    /// scatter series of Figures 2 and 8), as `log2`-style raw cycles.
    pub samples: Vec<u64>,
}

impl WaitWindow {
    /// Run `machine` and collect the wait behaviour of VM `vm` during
    /// `[start, start + length]`.
    pub fn collect(machine: &mut Machine, vm: usize, start: Cycles, length: Cycles) -> Self {
        let clk = machine.config().clock;
        // Disable tracing while reaching the window start.
        machine
            .vm_kernel_mut(vm)
            .stats_mut()
            .wait_trace
            .set_enabled(false);
        machine.run_until(start);
        let before: Log2Histogram = machine.vm_kernel(vm).stats().wait_hist.clone();
        let locks_before = machine.vm_kernel(vm).stats().lock_acquisitions;
        {
            let tr = &mut machine.vm_kernel_mut(vm).stats_mut().wait_trace;
            tr.clear();
            tr.set_enabled(true);
        }
        machine.run_until(start + length);
        machine
            .vm_kernel_mut(vm)
            .stats_mut()
            .wait_trace
            .set_enabled(false);
        let stats = machine.vm_kernel(vm).stats();
        let after = &stats.wait_hist;
        let cum = |h: &Log2Histogram, e: u32| h.count_at_least_pow2(e);
        WaitWindow {
            start_secs: clk.to_secs(start),
            length_secs: clk.to_secs(length),
            locks: stats.lock_acquisitions - locks_before,
            over_2_10: cum(after, 10) - cum(&before, 10),
            over_2_20: cum(after, 20) - cum(&before, 20),
            over_2_25: cum(after, 25) - cum(&before, 25),
            samples: stats
                .wait_trace
                .samples()
                .iter()
                .map(|(_, s)| s.wait.as_u64())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Sched, SingleVmScenario};
    use asman_sim::Clock;
    use asman_workloads::{NasBenchmark, NasSpec, ProblemClass};

    #[test]
    fn window_counts_match_samples() {
        let clk = Clock::default();
        let sc = SingleVmScenario::new(Sched::Credit, 64, 3);
        let lu = NasSpec::new(NasBenchmark::LU, ProblemClass::S, 4).build(1);
        let mut m = sc.build(Box::new(lu));
        let w = WaitWindow::collect(&mut m, 1, clk.ms(500), clk.secs(2));
        assert!(w.locks > 0, "window must observe lock activity");
        assert_eq!(w.samples.len() as u64, w.over_2_10);
        assert!(w.over_2_20 <= w.over_2_10);
        assert!(w.over_2_25 <= w.over_2_20);
        // Every retained sample is above the collection floor.
        assert!(w.samples.iter().all(|&s| s >= 1 << 10));
    }
}
