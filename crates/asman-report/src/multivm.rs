//! Multi-VM scenario machinery (§5.3, Figures 11–12).
//!
//! Four or six VMs (4 VCPUs, weight 256, work-conserving) run
//! combinations of concurrent (NAS) and high-throughput (SPEC-rate)
//! workloads in repeating batch rounds, next to the dom0 VM. The paper
//! reports the mean run time of each benchmark's first ten rounds and
//! checks the coefficient of variation stays below 10%.

use asman_hypervisor::{Machine, MachineConfig, VmSpec};
use asman_sim::OnlineStats;
use asman_workloads::{NasBenchmark, NasSpec, ProblemClass, SpecCpuKind, SpecCpuRate};
use serde::{Deserialize, Serialize};

use crate::scenario::{dom0_vm, machine_for, Sched};

/// One workload VM in a multi-VM combination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmWorkload {
    /// A NAS concurrent benchmark (4 threads), flagged as a concurrent VM
    /// for the static coscheduler.
    Nas(NasBenchmark),
    /// A SPEC CPU2000 rate workload (4 simultaneous copies).
    Spec(SpecCpuKind),
}

impl VmWorkload {
    /// Display name as in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            VmWorkload::Nas(b) => b.name(),
            VmWorkload::Spec(k) => k.name(),
        }
    }

    /// Whether the administrator would flag this VM as concurrent.
    pub fn concurrent(&self) -> bool {
        matches!(self, VmWorkload::Nas(_))
    }
}

/// A §5.3 experiment: several workload VMs running simultaneously.
#[derive(Clone, Debug)]
pub struct MultiVmScenario {
    /// The workload of each VM (V1, V2, …).
    pub workloads: Vec<VmWorkload>,
    /// Scheduler under test.
    pub sched: Sched,
    /// Problem class for the NAS VMs.
    pub class: ProblemClass,
    /// Rounds to average (the paper uses 10).
    pub rounds: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Give-up horizon in simulated seconds.
    pub horizon_secs: u64,
}

/// Per-VM result of a multi-VM run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MultiVmRow {
    /// VM name ("V1"…).
    pub vm: String,
    /// Benchmark name.
    pub workload: String,
    /// Mean run time of the first `rounds` rounds, simulated seconds.
    pub mean_round_secs: f64,
    /// Coefficient of variation of those round times.
    pub cov: f64,
    /// Rounds completed within the horizon.
    pub rounds_completed: usize,
    /// Measured VCPU online rate over the whole run.
    pub online_rate: f64,
    /// VCRD raises (ASMan only).
    pub vcrd_raises: u64,
}

impl MultiVmScenario {
    /// Standard configuration for a workload combination.
    pub fn new(sched: Sched, workloads: Vec<VmWorkload>, class: ProblemClass, seed: u64) -> Self {
        MultiVmScenario {
            workloads,
            sched,
            class,
            rounds: 10,
            seed,
            horizon_secs: 4_000,
        }
    }

    /// Build the machine (dom0 + one VM per workload).
    pub fn build(&self) -> Machine {
        let cfg = MachineConfig {
            seed: self.seed,
            ..MachineConfig::default()
        };
        let mut specs = vec![dom0_vm("V0", 8, self.seed ^ 0xD0)];
        for (i, w) in self.workloads.iter().enumerate() {
            let name = format!("V{}", i + 1);
            let seed = self.seed.wrapping_add(1 + i as u64);
            let mut spec = match w {
                VmWorkload::Nas(b) => VmSpec::new(
                    name,
                    4,
                    Box::new(NasSpec::new(*b, self.class, 4).repeating().build(seed)),
                ),
                VmWorkload::Spec(k) => {
                    VmSpec::new(name, 4, Box::new(SpecCpuRate::new(*k, 4, seed)))
                }
            };
            if w.concurrent() {
                spec = spec.concurrent();
            }
            specs.push(spec);
        }
        machine_for(self.sched, cfg, specs)
    }

    /// Run until every workload VM completed `rounds` rounds (or the
    /// horizon) and report per-VM results.
    pub fn run(&self) -> Vec<MultiVmRow> {
        let mut m = self.build();
        let clk = m.config().clock;
        let need = self.rounds;
        let n_vms = self.workloads.len();
        m.run_while(clk.secs(self.horizon_secs), |m| {
            (1..=n_vms).any(|vm| m.vm_kernel(vm).stats().vm_rounds_completed() < need)
        });
        let elapsed = m.now();
        (0..n_vms)
            .map(|i| {
                let vm = i + 1;
                let stats = m.vm_kernel(vm).stats();
                let done = stats.vm_rounds_completed().min(need);
                let mut rounds_stats = OnlineStats::new();
                let mut steady = OnlineStats::new();
                let mut prev = asman_sim::Cycles::ZERO;
                for r in 0..done {
                    let t = stats.vm_round_time(r).expect("completed round");
                    let secs = clk.to_secs(t - prev);
                    rounds_stats.record(secs);
                    if r > 0 {
                        // The variation statistic excludes round 0: its
                        // cold-start transient (empty caches, initial
                        // credit alignment) is not round-to-round noise.
                        steady.record(secs);
                    }
                    prev = t;
                }
                MultiVmRow {
                    vm: m.vm_name(vm).to_string(),
                    workload: self.workloads[i].name().to_string(),
                    mean_round_secs: rounds_stats.mean(),
                    cov: steady.coefficient_of_variation(),
                    rounds_completed: done,
                    online_rate: m.vm_accounting(vm).online_rate(elapsed),
                    vcrd_raises: m.vm_accounting(vm).vcrd_raises,
                }
            })
            .collect()
    }
}

/// Run the same combination under several schedulers, fanning the
/// independent machines over `runner`'s worker pool. Row order follows
/// `scheds`, and every row is identical to a sequential
/// [`MultiVmScenario::run`] — each scheduler gets its own machine built
/// from the same seeds.
pub fn run_under_schedulers(
    base: &MultiVmScenario,
    scheds: &[Sched],
    runner: &crate::exec::SweepRunner,
) -> Vec<Vec<MultiVmRow>> {
    runner.map(scheds.to_vec(), |sched| {
        MultiVmScenario {
            sched,
            ..base.clone()
        }
        .run()
    })
}

/// The paper's four combinations (Figures 11(a), 11(b), 12(a), 12(b)).
pub fn paper_combination(which: u8) -> Vec<VmWorkload> {
    use NasBenchmark::{LU, SP};
    use SpecCpuKind::{Bzip2, Gcc};
    match which {
        1 => vec![
            VmWorkload::Spec(Bzip2),
            VmWorkload::Spec(Gcc),
            VmWorkload::Nas(SP),
            VmWorkload::Nas(LU),
        ],
        2 => vec![
            VmWorkload::Nas(LU),
            VmWorkload::Nas(LU),
            VmWorkload::Nas(SP),
            VmWorkload::Nas(SP),
        ],
        3 => vec![
            VmWorkload::Spec(Bzip2),
            VmWorkload::Spec(Bzip2),
            VmWorkload::Spec(Gcc),
            VmWorkload::Spec(Gcc),
            VmWorkload::Nas(SP),
            VmWorkload::Nas(LU),
        ],
        4 => vec![
            VmWorkload::Spec(Bzip2),
            VmWorkload::Spec(Gcc),
            VmWorkload::Nas(SP),
            VmWorkload::Nas(SP),
            VmWorkload::Nas(LU),
            VmWorkload::Nas(LU),
        ],
        other => panic!("unknown combination {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinations_match_paper() {
        assert_eq!(paper_combination(1).len(), 4);
        assert_eq!(paper_combination(2).len(), 4);
        assert_eq!(paper_combination(3).len(), 6);
        assert_eq!(paper_combination(4).len(), 6);
        assert!(paper_combination(2).iter().all(|w| w.concurrent()));
        assert_eq!(
            paper_combination(1)
                .iter()
                .filter(|w| w.concurrent())
                .count(),
            2
        );
    }

    #[test]
    fn small_combination_completes_rounds() {
        use NasBenchmark::CG;
        let sc = MultiVmScenario {
            rounds: 2,
            horizon_secs: 600,
            ..MultiVmScenario::new(
                Sched::Credit,
                vec![VmWorkload::Nas(CG), VmWorkload::Spec(SpecCpuKind::Gcc)],
                ProblemClass::S,
                11,
            )
        };
        let rows = sc.run();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.rounds_completed, 2, "{} rounds", r.workload);
            assert!(r.mean_round_secs > 0.0);
            assert!(r.online_rate > 0.0);
        }
    }
}
